//! Epoch-stamped mark table shared by the candidate generators.
//!
//! A hash-set replacement for dedup/membership over dense position ranges:
//! instead of clearing a table per query, each query takes a fresh epoch and
//! a position counts as "present" only when its mark equals the current
//! epoch.  Used by both [`crate::CandidateScratch`] (MultiBlock) and
//! [`crate::BlockingScratch`] (legacy token index).
#[derive(Debug, Clone, Default)]
pub(crate) struct EpochMarks {
    epoch: u32,
    marks: Vec<u32>,
}

impl EpochMarks {
    /// Grows the table to cover `len` positions (never shrinks).
    pub(crate) fn ensure_capacity(&mut self, len: usize) {
        if self.marks.len() < len {
            self.marks.resize(len, 0);
        }
    }

    /// A fresh epoch no mark currently carries.  On (unlikely) wrap-around
    /// the table is reset so stale epochs cannot collide.
    pub(crate) fn next_epoch(&mut self) -> u32 {
        if self.epoch == u32::MAX {
            self.marks.fill(0);
            self.epoch = 0;
        }
        self.epoch += 1;
        self.epoch
    }

    /// Stamps a position with an epoch.
    pub(crate) fn mark(&mut self, position: usize, epoch: u32) {
        self.marks[position] = epoch;
    }

    /// `true` if the position carries the given epoch.
    pub(crate) fn is_marked(&self, position: usize, epoch: u32) -> bool {
        self.marks[position] == epoch
    }

    /// Stamps a position and reports whether this was its first visit in the
    /// given epoch.
    pub(crate) fn mark_first(&mut self, position: usize, epoch: u32) -> bool {
        if self.marks[position] != epoch {
            self.marks[position] = epoch;
            true
        } else {
            false
        }
    }
}
