//! The Carvalho et al. genetic-programming baseline.
//!
//! As summarised in Section 4 of the GenLink paper, the approach of de
//! Carvalho et al. (TKDE 2012) evolves mathematical expression trees
//! (`+ − * / exp`, constants) over pre-supplied `<attribute, similarity>`
//! pairs; an entity pair is classified as a match when the expression value
//! exceeds a fixed decision boundary.  It cannot learn data transformations,
//! which is the gap GenLink exploits on noisy data sets such as Cora.

use rand::rngs::StdRng;
use rand::SeedableRng;

use linkdisc_entity::{DataSource, EntityPair, ReferenceLinks, ResolvedReferenceLinks};
use linkdisc_evaluation::ConfusionMatrix;
use linkdisc_gp::{Evaluated, Evolution, GpConfig, IterationStats, Problem};

use crate::expression::{AttributePair, Expression};

/// Configuration of the Carvalho-style learner.
#[derive(Debug, Clone)]
pub struct CarvalhoConfig {
    /// The generic GP parameters (kept identical to GenLink's Table 4 values
    /// so the comparison is apples-to-apples).
    pub gp: GpConfig,
    /// Maximum depth of randomly generated expression trees.
    pub max_depth: usize,
    /// Decision boundary: an entity pair is a match if the expression value is
    /// at least this large.
    pub decision_boundary: f64,
    /// Parsimony pressure per expression node (keeps trees readable; the
    /// original work limits depth instead).
    pub node_penalty: f64,
}

impl Default for CarvalhoConfig {
    fn default() -> Self {
        CarvalhoConfig {
            gp: GpConfig::default(),
            max_depth: 5,
            decision_boundary: 1.0,
            node_penalty: 0.002,
        }
    }
}

impl CarvalhoConfig {
    /// A small configuration for tests and quick experiments.
    pub fn fast() -> Self {
        CarvalhoConfig {
            gp: GpConfig {
                population_size: 80,
                max_iterations: 20,
                ..GpConfig::default()
            },
            ..CarvalhoConfig::default()
        }
    }
}

/// The outcome of a Carvalho-style learning run.
#[derive(Debug, Clone)]
pub struct CarvalhoOutcome {
    /// The best expression of the final population.
    pub expression: Expression,
    /// The evidence list the expression refers to.
    pub evidence: Vec<AttributePair>,
    /// The decision boundary used for classification.
    pub decision_boundary: f64,
    /// Per-iteration statistics.
    pub history: Vec<IterationStats>,
    /// Confusion matrix of the returned expression on the training links.
    pub training: ConfusionMatrix,
}

impl CarvalhoOutcome {
    /// Classifies an entity pair.
    pub fn is_link(&self, pair: &EntityPair<'_>) -> bool {
        self.expression.evaluate(pair, &self.evidence) >= self.decision_boundary
    }

    /// Evaluates the learned expression against reference links.
    pub fn evaluate_on_links(
        &self,
        links: &ReferenceLinks,
        source: &DataSource,
        target: &DataSource,
    ) -> ConfusionMatrix {
        let resolved = ResolvedReferenceLinks::resolve(links, source, target);
        let mut matrix = ConfusionMatrix::default();
        for pair in resolved.positive() {
            matrix.record_positive(self.is_link(pair));
        }
        for pair in resolved.negative() {
            matrix.record_negative(self.is_link(pair));
        }
        matrix
    }

    /// Renders the learned expression.
    pub fn render(&self) -> String {
        self.expression.render(&self.evidence)
    }
}

/// The Carvalho-style learner.
#[derive(Debug, Clone, Default)]
pub struct CarvalhoLearner {
    config: CarvalhoConfig,
}

struct CarvalhoProblem<'a> {
    links: &'a ResolvedReferenceLinks<'a>,
    evidence: &'a [AttributePair],
    config: &'a CarvalhoConfig,
}

impl CarvalhoProblem<'_> {
    fn confusion(&self, expression: &Expression) -> ConfusionMatrix {
        let mut matrix = ConfusionMatrix::default();
        for pair in self.links.positive() {
            matrix.record_positive(
                expression.evaluate(pair, self.evidence) >= self.config.decision_boundary,
            );
        }
        for pair in self.links.negative() {
            matrix.record_negative(
                expression.evaluate(pair, self.evidence) >= self.config.decision_boundary,
            );
        }
        matrix
    }
}

impl Problem for CarvalhoProblem<'_> {
    type Genome = Expression;

    fn random_genome(&self, rng: &mut StdRng) -> Expression {
        Expression::random(self.evidence.len(), self.config.max_depth, rng)
    }

    fn crossover(&self, first: &Expression, second: &Expression, rng: &mut StdRng) -> Expression {
        first.crossover(second, rng)
    }

    fn evaluate(&self, genome: &Expression) -> Evaluated {
        let matrix = self.confusion(genome);
        // the original work optimises the F-measure directly
        Evaluated {
            fitness: matrix.f_measure() - self.config.node_penalty * genome.node_count() as f64,
            f_measure: matrix.f_measure(),
        }
    }
}

impl CarvalhoLearner {
    /// Creates a learner with the given configuration.
    pub fn new(config: CarvalhoConfig) -> Self {
        config.gp.validate();
        CarvalhoLearner { config }
    }

    /// Learns an expression from the training reference links.
    pub fn learn(
        &self,
        source: &DataSource,
        target: &DataSource,
        training: &ReferenceLinks,
        seed: u64,
    ) -> CarvalhoOutcome {
        let evidence = Expression::default_evidence(
            source.schema().properties(),
            target.schema().properties(),
        );
        let resolved = ResolvedReferenceLinks::resolve(training, source, target);
        let problem = CarvalhoProblem {
            links: &resolved,
            evidence: &evidence,
            config: &self.config,
        };
        let evolution = Evolution::new(&problem, self.config.gp);
        let mut rng = StdRng::seed_from_u64(seed);
        let result = evolution.run(&mut rng);
        let expression = result.best.genome.clone();
        CarvalhoOutcome {
            training: problem.confusion(&expression),
            expression,
            evidence,
            decision_boundary: self.config.decision_boundary,
            history: result.history,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use linkdisc_entity::{DataSourceBuilder, Link};
    use rand::Rng;

    fn sources(n: usize) -> (DataSource, DataSource, ReferenceLinks) {
        let mut rng = StdRng::seed_from_u64(4);
        let mut a = DataSourceBuilder::new("A", ["label", "year"]);
        let mut b = DataSourceBuilder::new("B", ["name", "released"]);
        let mut positives = Vec::new();
        for i in 0..n {
            let label = format!("record {i} alpha");
            let year = format!("{}", 1990 + (i % 20));
            a = a
                .entity(
                    format!("a{i}"),
                    [("label", label.as_str()), ("year", year.as_str())],
                )
                .unwrap();
            let noisy = if rng.gen_bool(0.3) {
                label.to_uppercase()
            } else {
                label.clone()
            };
            b = b
                .entity(
                    format!("b{i}"),
                    [("name", noisy.as_str()), ("released", year.as_str())],
                )
                .unwrap();
            positives.push(Link::new(format!("a{i}"), format!("b{i}")));
        }
        let links = ReferenceLinks::with_generated_negatives(positives, &mut rng);
        (a.build(), b.build(), links)
    }

    fn fast_config() -> CarvalhoConfig {
        let mut config = CarvalhoConfig::fast();
        config.gp.threads = 1;
        config.gp.population_size = 60;
        config.gp.max_iterations = 12;
        config
    }

    #[test]
    fn baseline_learns_a_reasonable_expression() {
        let (source, target, links) = sources(25);
        let outcome = CarvalhoLearner::new(fast_config()).learn(&source, &target, &links, 3);
        assert!(
            outcome.training.f_measure() > 0.8,
            "training F1 was {}",
            outcome.training.f_measure()
        );
        assert!(!outcome.render().is_empty());
        assert!(!outcome.history.is_empty());
    }

    #[test]
    fn baseline_is_reproducible() {
        let (source, target, links) = sources(15);
        let learner = CarvalhoLearner::new(fast_config());
        let first = learner.learn(&source, &target, &links, 9);
        let second = learner.learn(&source, &target, &links, 9);
        assert_eq!(first.expression, second.expression);
    }

    #[test]
    fn evaluate_on_links_matches_training_matrix() {
        let (source, target, links) = sources(20);
        let outcome = CarvalhoLearner::new(fast_config()).learn(&source, &target, &links, 5);
        let matrix = outcome.evaluate_on_links(&links, &source, &target);
        assert_eq!(matrix, outcome.training);
    }
}
