//! Trivial hand-written rules used as sanity baselines.

use linkdisc_similarity::DistanceFunction;
use linkdisc_transform::TransformFunction;

/// A rule that links two entities when the lower-cased values of the given
/// properties match exactly.  Used by the examples as the "naive" baseline a
/// learned rule has to beat.
pub fn exact_match_rule(
    source_property: &str,
    target_property: &str,
) -> linkdisc_rule::LinkageRule {
    linkdisc_rule::compare(
        linkdisc_rule::transform(
            TransformFunction::LowerCase,
            vec![linkdisc_rule::property(source_property)],
        ),
        linkdisc_rule::transform(
            TransformFunction::LowerCase,
            vec![linkdisc_rule::property(target_property)],
        ),
        DistanceFunction::Equality,
        0.5,
    )
    .into()
}

#[cfg(test)]
mod tests {
    use super::*;
    use linkdisc_entity::{EntityBuilder, EntityPair};

    #[test]
    fn exact_match_rule_links_case_variants() {
        let rule = exact_match_rule("label", "name");
        let a = EntityBuilder::new("a")
            .value("label", "Berlin")
            .build_with_own_schema();
        let b = EntityBuilder::new("b")
            .value("name", "BERLIN")
            .build_with_own_schema();
        let c = EntityBuilder::new("c")
            .value("name", "Paris")
            .build_with_own_schema();
        assert!(rule.is_link(&EntityPair::new(&a, &b)));
        assert!(!rule.is_link(&EntityPair::new(&a, &c)));
    }

    #[test]
    fn exact_match_rule_has_expected_structure() {
        let rule = exact_match_rule("label", "name");
        let stats = rule.stats();
        assert_eq!(stats.comparisons, 1);
        assert_eq!(stats.transformations, 2);
    }
}
