//! Mathematical expression trees over `<attribute, similarity>` pairs —
//! the genome of the Carvalho et al. baseline.

use linkdisc_entity::EntityPair;
use linkdisc_similarity::DistanceFunction;
use rand::rngs::StdRng;
use rand::Rng;

/// A pre-supplied `<attribute, similarity function>` pair (the "evidence" the
/// Carvalho approach combines).  The similarity of a pair of entities under
/// this evidence is `1 − d/θ_max` clipped to `[0, 1]`, i.e. a normalised
/// similarity without a learnable threshold.
#[derive(Debug, Clone, PartialEq)]
pub struct AttributePair {
    /// Property of the source entity.
    pub source_property: String,
    /// Property of the target entity.
    pub target_property: String,
    /// The similarity function applied to the values.
    pub function: DistanceFunction,
}

impl AttributePair {
    /// The normalised similarity of an entity pair under this evidence.
    ///
    /// The values are compared *as they are*: the Carvalho et al. approach
    /// combines pre-supplied similarity functions but — unlike GenLink —
    /// cannot express data transformations such as lower-casing, which is the
    /// expressivity gap the paper's Cora experiment exposes.
    pub fn similarity(&self, pair: &EntityPair<'_>) -> f64 {
        let source_values = pair.source.values(&self.source_property);
        let target_values = pair.target.values(&self.target_property);
        self.function.similarity(
            source_values,
            target_values,
            self.function.default_threshold(),
        )
    }
}

/// A mathematical expression tree.
#[derive(Debug, Clone, PartialEq)]
pub enum Expression {
    /// A numeric constant.
    Constant(f64),
    /// The similarity of one evidence pair (index into the evidence list).
    Evidence(usize),
    /// Sum of two sub-expressions.
    Add(Box<Expression>, Box<Expression>),
    /// Difference of two sub-expressions.
    Subtract(Box<Expression>, Box<Expression>),
    /// Product of two sub-expressions.
    Multiply(Box<Expression>, Box<Expression>),
    /// Protected division (yields 1 when the divisor is close to zero, the
    /// usual GP convention).
    Divide(Box<Expression>, Box<Expression>),
    /// `e^x` of a sub-expression, clamped to avoid overflow.
    Exp(Box<Expression>),
}

impl Expression {
    /// Evaluates the expression for one entity pair given the evidence list.
    pub fn evaluate(&self, pair: &EntityPair<'_>, evidence: &[AttributePair]) -> f64 {
        match self {
            Expression::Constant(value) => *value,
            Expression::Evidence(index) => evidence
                .get(*index)
                .map(|e| e.similarity(pair))
                .unwrap_or(0.0),
            Expression::Add(a, b) => a.evaluate(pair, evidence) + b.evaluate(pair, evidence),
            Expression::Subtract(a, b) => a.evaluate(pair, evidence) - b.evaluate(pair, evidence),
            Expression::Multiply(a, b) => a.evaluate(pair, evidence) * b.evaluate(pair, evidence),
            Expression::Divide(a, b) => {
                let divisor = b.evaluate(pair, evidence);
                if divisor.abs() < 1e-9 {
                    1.0
                } else {
                    a.evaluate(pair, evidence) / divisor
                }
            }
            Expression::Exp(inner) => inner.evaluate(pair, evidence).clamp(-20.0, 20.0).exp(),
        }
    }

    /// Number of nodes in the expression tree.
    pub fn node_count(&self) -> usize {
        match self {
            Expression::Constant(_) | Expression::Evidence(_) => 1,
            Expression::Add(a, b)
            | Expression::Subtract(a, b)
            | Expression::Multiply(a, b)
            | Expression::Divide(a, b) => 1 + a.node_count() + b.node_count(),
            Expression::Exp(inner) => 1 + inner.node_count(),
        }
    }

    /// Depth of the expression tree.
    pub fn depth(&self) -> usize {
        match self {
            Expression::Constant(_) | Expression::Evidence(_) => 1,
            Expression::Add(a, b)
            | Expression::Subtract(a, b)
            | Expression::Multiply(a, b)
            | Expression::Divide(a, b) => 1 + a.depth().max(b.depth()),
            Expression::Exp(inner) => 1 + inner.depth(),
        }
    }

    /// Generates a random expression of at most `max_depth` levels over
    /// `evidence_count` evidence pairs.
    pub fn random(evidence_count: usize, max_depth: usize, rng: &mut StdRng) -> Expression {
        if max_depth <= 1 || rng.gen_bool(0.3) {
            // leaf: evidence with 80% probability, constant otherwise
            if evidence_count > 0 && rng.gen_bool(0.8) {
                Expression::Evidence(rng.gen_range(0..evidence_count))
            } else {
                Expression::Constant((rng.gen_range(0..20) as f64) / 10.0)
            }
        } else {
            let left = Box::new(Expression::random(evidence_count, max_depth - 1, rng));
            let right = Box::new(Expression::random(evidence_count, max_depth - 1, rng));
            match rng.gen_range(0..5) {
                0 => Expression::Add(left, right),
                1 => Expression::Subtract(left, right),
                2 => Expression::Multiply(left, right),
                3 => Expression::Divide(left, right),
                _ => Expression::Exp(left),
            }
        }
    }

    /// Returns the `index`-th node (pre-order).
    pub fn node(&self, index: usize) -> Option<&Expression> {
        fn walk<'a>(node: &'a Expression, remaining: &mut usize) -> Option<&'a Expression> {
            if *remaining == 0 {
                return Some(node);
            }
            *remaining -= 1;
            match node {
                Expression::Constant(_) | Expression::Evidence(_) => None,
                Expression::Add(a, b)
                | Expression::Subtract(a, b)
                | Expression::Multiply(a, b)
                | Expression::Divide(a, b) => walk(a, remaining).or_else(|| walk(b, remaining)),
                Expression::Exp(inner) => walk(inner, remaining),
            }
        }
        let mut remaining = index;
        walk(self, &mut remaining)
    }

    /// Replaces the `index`-th node (pre-order) with `replacement`.
    pub fn replace_node(&mut self, index: usize, replacement: Expression) -> bool {
        fn walk(
            node: &mut Expression,
            remaining: &mut usize,
            replacement: Expression,
        ) -> Option<Expression> {
            if *remaining == 0 {
                *node = replacement;
                return None;
            }
            *remaining -= 1;
            match node {
                Expression::Constant(_) | Expression::Evidence(_) => Some(replacement),
                Expression::Add(a, b)
                | Expression::Subtract(a, b)
                | Expression::Multiply(a, b)
                | Expression::Divide(a, b) => match walk(a, remaining, replacement) {
                    Some(r) => walk(b, remaining, r),
                    None => None,
                },
                Expression::Exp(inner) => walk(inner, remaining, replacement),
            }
        }
        let mut remaining = index;
        walk(self, &mut remaining, replacement).is_none()
    }

    /// Subtree crossover: replaces a random node of `self` with a random
    /// subtree of `other`.
    pub fn crossover(&self, other: &Expression, rng: &mut StdRng) -> Expression {
        let mut child = self.clone();
        let donor_index = rng.gen_range(0..other.node_count());
        let donor = other.node(donor_index).expect("index within count").clone();
        let target_index = rng.gen_range(0..child.node_count());
        child.replace_node(target_index, donor);
        child
    }

    /// Renders the expression as an infix string (for logs and experiments).
    pub fn render(&self, evidence: &[AttributePair]) -> String {
        match self {
            Expression::Constant(value) => format!("{value}"),
            Expression::Evidence(index) => evidence
                .get(*index)
                .map(|e| {
                    format!(
                        "{}({},{})",
                        e.function.name(),
                        e.source_property,
                        e.target_property
                    )
                })
                .unwrap_or_else(|| format!("evidence#{index}")),
            Expression::Add(a, b) => format!("({} + {})", a.render(evidence), b.render(evidence)),
            Expression::Subtract(a, b) => {
                format!("({} - {})", a.render(evidence), b.render(evidence))
            }
            Expression::Multiply(a, b) => {
                format!("({} * {})", a.render(evidence), b.render(evidence))
            }
            Expression::Divide(a, b) => {
                format!("({} / {})", a.render(evidence), b.render(evidence))
            }
            Expression::Exp(inner) => format!("exp({})", inner.render(evidence)),
        }
    }

    /// Builds the default evidence list for two schemas: every compatible
    /// property pair found by GenLink-style seeding would be better, but the
    /// Carvalho approach pre-supplies pairs manually; we approximate that by
    /// pairing every source property with every target property under the
    /// string measures.
    pub fn default_evidence(
        source_properties: &[String],
        target_properties: &[String],
    ) -> Vec<AttributePair> {
        let mut evidence = Vec::new();
        for source in source_properties {
            for target in target_properties {
                for function in [
                    DistanceFunction::Levenshtein,
                    DistanceFunction::Jaro,
                    DistanceFunction::Jaccard,
                ] {
                    evidence.push(AttributePair {
                        source_property: source.clone(),
                        target_property: target.clone(),
                        function,
                    });
                }
            }
        }
        evidence
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use linkdisc_entity::EntityBuilder;
    use rand::SeedableRng;

    fn evidence() -> Vec<AttributePair> {
        vec![
            AttributePair {
                source_property: "label".into(),
                target_property: "name".into(),
                function: DistanceFunction::Levenshtein,
            },
            AttributePair {
                source_property: "year".into(),
                target_property: "released".into(),
                function: DistanceFunction::Jaro,
            },
        ]
    }

    fn pair<'a>(a: &'a linkdisc_entity::Entity, b: &'a linkdisc_entity::Entity) -> EntityPair<'a> {
        EntityPair::new(a, b)
    }

    #[test]
    fn evidence_similarity_is_high_for_matching_values() {
        let a = EntityBuilder::new("a")
            .value("label", "Berlin")
            .build_with_own_schema();
        let exact = EntityBuilder::new("b")
            .value("name", "Berlin")
            .build_with_own_schema();
        assert_eq!(evidence()[0].similarity(&pair(&a, &exact)), 1.0);
        let c = EntityBuilder::new("c")
            .value("name", "a completely different value")
            .build_with_own_schema();
        assert!(evidence()[0].similarity(&pair(&a, &c)) < 0.5);
        // unlike GenLink the baseline cannot normalise letter case, so a case
        // difference already costs similarity
        let cased = EntityBuilder::new("d")
            .value("name", "berlin")
            .build_with_own_schema();
        assert!(evidence()[0].similarity(&pair(&a, &cased)) < 1.0);
    }

    #[test]
    fn arithmetic_evaluation() {
        let a = EntityBuilder::new("a")
            .value("label", "x")
            .build_with_own_schema();
        let b = EntityBuilder::new("b")
            .value("name", "x")
            .build_with_own_schema();
        let p = pair(&a, &b);
        let e = evidence();
        let expression = Expression::Add(
            Box::new(Expression::Evidence(0)),
            Box::new(Expression::Constant(0.5)),
        );
        assert!((expression.evaluate(&p, &e) - 1.5).abs() < 1e-9);
        let product = Expression::Multiply(
            Box::new(Expression::Constant(2.0)),
            Box::new(Expression::Constant(3.0)),
        );
        assert_eq!(product.evaluate(&p, &e), 6.0);
        let division_by_zero = Expression::Divide(
            Box::new(Expression::Constant(5.0)),
            Box::new(Expression::Constant(0.0)),
        );
        assert_eq!(division_by_zero.evaluate(&p, &e), 1.0);
        let exp = Expression::Exp(Box::new(Expression::Constant(0.0)));
        assert_eq!(exp.evaluate(&p, &e), 1.0);
    }

    #[test]
    fn exp_is_clamped() {
        let a = EntityBuilder::new("a").build_with_own_schema();
        let b = EntityBuilder::new("b").build_with_own_schema();
        let huge = Expression::Exp(Box::new(Expression::Constant(1e9)));
        assert!(huge.evaluate(&pair(&a, &b), &[]).is_finite());
    }

    #[test]
    fn random_expressions_respect_depth_and_node_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..100 {
            let expression = Expression::random(4, 4, &mut rng);
            assert!(expression.depth() <= 4);
            assert!(expression.node_count() >= 1);
        }
    }

    #[test]
    fn node_access_and_replacement() {
        let expression = Expression::Add(
            Box::new(Expression::Evidence(0)),
            Box::new(Expression::Constant(1.0)),
        );
        assert_eq!(expression.node_count(), 3);
        assert!(matches!(expression.node(0), Some(Expression::Add(_, _))));
        assert!(matches!(expression.node(1), Some(Expression::Evidence(0))));
        assert!(matches!(expression.node(2), Some(Expression::Constant(_))));
        assert!(expression.node(3).is_none());
        let mut copy = expression.clone();
        assert!(copy.replace_node(2, Expression::Evidence(1)));
        assert!(matches!(copy.node(2), Some(Expression::Evidence(1))));
        assert!(!copy.replace_node(9, Expression::Constant(0.0)));
    }

    #[test]
    fn crossover_produces_valid_trees() {
        let mut rng = StdRng::seed_from_u64(2);
        let a = Expression::random(3, 4, &mut rng);
        let b = Expression::random(3, 4, &mut rng);
        for _ in 0..50 {
            let child = a.crossover(&b, &mut rng);
            assert!(child.node_count() >= 1);
        }
    }

    #[test]
    fn render_is_readable() {
        let expression = Expression::Multiply(
            Box::new(Expression::Evidence(0)),
            Box::new(Expression::Constant(2.0)),
        );
        let text = expression.render(&evidence());
        assert_eq!(text, "(levenshtein(label,name) * 2)");
    }

    #[test]
    fn default_evidence_covers_the_cross_product() {
        let evidence =
            Expression::default_evidence(&["a".to_string(), "b".to_string()], &["x".to_string()]);
        assert_eq!(evidence.len(), 2 * 3);
    }
}
