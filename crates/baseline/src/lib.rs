//! Baseline learners the paper compares GenLink against.
//!
//! * [`expression`] / [`carvalho`] — a re-implementation of the genetic
//!   programming approach of de Carvalho et al. (TKDE 2012) as described in
//!   Section 4 of the GenLink paper: candidate solutions are mathematical
//!   expression trees over pre-supplied `<attribute, similarity function>`
//!   pairs combined with `+`, `−`, `*`, `/`, `exp` and constants.  The
//!   approach cannot express data transformations, which is exactly the gap
//!   the Cora experiment of the paper exposes.
//! * [`static_rules`] — simple hand-written rules (exact match on a key
//!   property) used as sanity baselines in the examples and experiments.

pub mod carvalho;
pub mod expression;
pub mod static_rules;

pub use carvalho::{CarvalhoConfig, CarvalhoLearner, CarvalhoOutcome};
pub use expression::{AttributePair, Expression};
pub use static_rules::exact_match_rule;
