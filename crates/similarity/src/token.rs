//! Token/set-based distances: Jaccard and Dice.
//!
//! These measures operate on the *value sets* directly.  In the linkage rules
//! of the paper they are typically combined with a preceding `tokenize`
//! transformation, so each value is a single token.

use std::collections::HashSet;

fn to_set(values: &[String]) -> HashSet<&str> {
    values.iter().map(|s| s.as_str()).collect()
}

/// Jaccard distance between two value sets: `1 − |A ∩ B| / |A ∪ B|`.
pub fn jaccard_distance(a: &[String], b: &[String]) -> f64 {
    if a.is_empty() && b.is_empty() {
        return 0.0;
    }
    if a.is_empty() || b.is_empty() {
        return 1.0;
    }
    let sa = to_set(a);
    let sb = to_set(b);
    let intersection = sa.intersection(&sb).count() as f64;
    let union = sa.union(&sb).count() as f64;
    1.0 - intersection / union
}

/// Dice distance between two value sets: `1 − 2|A ∩ B| / (|A| + |B|)`.
pub fn dice_distance(a: &[String], b: &[String]) -> f64 {
    if a.is_empty() && b.is_empty() {
        return 0.0;
    }
    if a.is_empty() || b.is_empty() {
        return 1.0;
    }
    let sa = to_set(a);
    let sb = to_set(b);
    let intersection = sa.intersection(&sb).count() as f64;
    1.0 - 2.0 * intersection / (sa.len() + sb.len()) as f64
}

/// Jaccard distance between two pre-built value sets.
///
/// The compiled evaluator caches the `HashSet` per `(entity, value operator)`
/// so repeated pair evaluations skip the set construction; the counts (and
/// therefore the result) are exactly those of [`jaccard_distance`] on the
/// underlying value slices.
pub fn jaccard_distance_sets(a: &HashSet<String>, b: &HashSet<String>) -> f64 {
    if a.is_empty() && b.is_empty() {
        return 0.0;
    }
    if a.is_empty() || b.is_empty() {
        return 1.0;
    }
    let intersection = a.iter().filter(|v| b.contains(*v)).count() as f64;
    let union = (a.len() + b.len()) as f64 - intersection;
    1.0 - intersection / union
}

/// Dice distance between two pre-built value sets (see
/// [`jaccard_distance_sets`] for the caching rationale).
pub fn dice_distance_sets(a: &HashSet<String>, b: &HashSet<String>) -> f64 {
    if a.is_empty() && b.is_empty() {
        return 0.0;
    }
    if a.is_empty() || b.is_empty() {
        return 1.0;
    }
    let intersection = a.iter().filter(|v| b.contains(*v)).count() as f64;
    1.0 - 2.0 * intersection / (a.len() + b.len()) as f64
}

/// Jaccard distance between two *single* values interpreted as whitespace
/// separated token bags (used when the measure is applied without a previous
/// `tokenize` transformation).
pub fn jaccard_distance_values(a: &str, b: &str) -> f64 {
    let ta: Vec<String> = a.split_whitespace().map(|s| s.to_string()).collect();
    let tb: Vec<String> = b.split_whitespace().map(|s| s.to_string()).collect();
    jaccard_distance(&ta, &tb)
}

/// Dice distance between two single values interpreted as token bags.
pub fn dice_distance_values(a: &str, b: &str) -> f64 {
    let ta: Vec<String> = a.split_whitespace().map(|s| s.to_string()).collect();
    let tb: Vec<String> = b.split_whitespace().map(|s| s.to_string()).collect();
    dice_distance(&ta, &tb)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn vs(values: &[&str]) -> Vec<String> {
        values.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn jaccard_known_values() {
        assert_eq!(jaccard_distance(&vs(&["a", "b"]), &vs(&["a", "b"])), 0.0);
        assert_eq!(jaccard_distance(&vs(&["a"]), &vs(&["b"])), 1.0);
        // {a,b,c} vs {b,c,d}: intersection 2, union 4
        assert!(
            (jaccard_distance(&vs(&["a", "b", "c"]), &vs(&["b", "c", "d"])) - 0.5).abs() < 1e-12
        );
    }

    #[test]
    fn jaccard_ignores_duplicates() {
        assert_eq!(
            jaccard_distance(&vs(&["a", "a", "b"]), &vs(&["b", "a"])),
            0.0
        );
    }

    #[test]
    fn jaccard_empty_sets() {
        assert_eq!(jaccard_distance(&[], &[]), 0.0);
        assert_eq!(jaccard_distance(&vs(&["a"]), &[]), 1.0);
        assert_eq!(jaccard_distance(&[], &vs(&["a"])), 1.0);
    }

    #[test]
    fn dice_known_values() {
        assert_eq!(dice_distance(&vs(&["a", "b"]), &vs(&["a", "b"])), 0.0);
        assert_eq!(dice_distance(&vs(&["a"]), &vs(&["b"])), 1.0);
        // {a,b,c} vs {b,c,d}: 2*2/(3+3) = 2/3 -> distance 1/3
        assert!(
            (dice_distance(&vs(&["a", "b", "c"]), &vs(&["b", "c", "d"])) - 1.0 / 3.0).abs() < 1e-12
        );
    }

    #[test]
    fn value_level_variants_tokenize_on_whitespace() {
        assert_eq!(
            jaccard_distance_values("new york times", "times new york"),
            0.0
        );
        assert!(jaccard_distance_values("new york", "los angeles") > 0.99);
        assert_eq!(dice_distance_values("a b", "b a"), 0.0);
    }

    proptest! {
        #[test]
        fn jaccard_in_unit_interval_and_symmetric(
            a in proptest::collection::vec("[a-c]{1,2}", 0..6),
            b in proptest::collection::vec("[a-c]{1,2}", 0..6),
        ) {
            let d = jaccard_distance(&a, &b);
            prop_assert!((0.0..=1.0).contains(&d));
            prop_assert!((d - jaccard_distance(&b, &a)).abs() < 1e-12);
        }

        #[test]
        fn dice_never_exceeds_jaccard(
            a in proptest::collection::vec("[a-c]{1,2}", 1..6),
            b in proptest::collection::vec("[a-c]{1,2}", 1..6),
        ) {
            // Dice similarity >= Jaccard similarity, hence Dice distance <= Jaccard distance.
            prop_assert!(dice_distance(&a, &b) <= jaccard_distance(&a, &b) + 1e-12);
        }

        #[test]
        fn identical_sets_have_zero_distance(a in proptest::collection::vec("[a-z]{1,3}", 0..6)) {
            prop_assert_eq!(jaccard_distance(&a, &a), 0.0);
            prop_assert_eq!(dice_distance(&a, &a), 0.0);
        }
    }
}
