//! Token/set-based distances: Jaccard and Dice.
//!
//! These measures operate on the *value sets* directly.  In the linkage rules
//! of the paper they are typically combined with a preceding `tokenize`
//! transformation, so each value is a single token.
//!
//! All variants bottom out in one core: the intersection/union counts of two
//! **sorted, deduplicated slices**, computed by a linear merge
//! ([`sorted_overlap`]).  The compiled evaluator lowers each entity's token
//! set once to sorted interned `u32` ids and calls [`jaccard_ids`] /
//! [`dice_ids`] — a branch-light merge with zero per-pair allocation.  The
//! string-slice entry points (`jaccard_distance`, `dice_distance`, the
//! `_values` tokenising variants) are thin wrappers that sort-dedup their
//! inputs and reuse the same core, and the `HashSet` variants are retained
//! for pre-built sets; every variant computes identical counts and evaluates
//! the same final expression, so they agree bit-for-bit.

use std::collections::HashSet;

use crate::stats;

/// Intersection and union sizes of two sorted, deduplicated slices, by
/// linear merge.
///
/// Returns `(intersection, union)`.  With both inputs strictly increasing
/// the counts equal the set-theoretic sizes, so every distance built on top
/// matches its hash-set counterpart exactly.
pub fn sorted_overlap<T: Ord>(a: &[T], b: &[T]) -> (usize, usize) {
    let mut intersection = 0usize;
    let mut i = 0usize;
    let mut j = 0usize;
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                intersection += 1;
                i += 1;
                j += 1;
            }
        }
    }
    (intersection, a.len() + b.len() - intersection)
}

/// Jaccard distance `1 − |A ∩ B| / |A ∪ B|` over sorted, deduplicated token
/// ids — the compiled evaluator's kernel.
///
/// Both slices must be strictly increasing (the interned token-id slices
/// cached per entity are).  Empty-set conventions match the string variants:
/// both empty → 0, exactly one empty → 1.
pub fn jaccard_ids(a: &[u32], b: &[u32]) -> f64 {
    if a.is_empty() && b.is_empty() {
        return 0.0;
    }
    if a.is_empty() || b.is_empty() {
        return 1.0;
    }
    stats::count_token_id_merge();
    let (intersection, union) = sorted_overlap(a, b);
    1.0 - intersection as f64 / union as f64
}

/// Dice distance `1 − 2|A ∩ B| / (|A| + |B|)` over sorted, deduplicated
/// token ids (see [`jaccard_ids`]).
pub fn dice_ids(a: &[u32], b: &[u32]) -> f64 {
    if a.is_empty() && b.is_empty() {
        return 0.0;
    }
    if a.is_empty() || b.is_empty() {
        return 1.0;
    }
    stats::count_token_id_merge();
    let (intersection, _) = sorted_overlap(a, b);
    1.0 - 2.0 * intersection as f64 / (a.len() + b.len()) as f64
}

/// Sort-dedup a borrowed token list so the merge core applies.
fn sorted_tokens<'a>(values: impl Iterator<Item = &'a str>) -> Vec<&'a str> {
    let mut tokens: Vec<&str> = values.collect();
    tokens.sort_unstable();
    tokens.dedup();
    tokens
}

/// Jaccard distance between two value sets: `1 − |A ∩ B| / |A ∪ B|`.
pub fn jaccard_distance(a: &[String], b: &[String]) -> f64 {
    if a.is_empty() && b.is_empty() {
        return 0.0;
    }
    if a.is_empty() || b.is_empty() {
        return 1.0;
    }
    stats::count_token_fallback();
    let ta = sorted_tokens(a.iter().map(|s| s.as_str()));
    let tb = sorted_tokens(b.iter().map(|s| s.as_str()));
    let (intersection, union) = sorted_overlap(&ta, &tb);
    1.0 - intersection as f64 / union as f64
}

/// Dice distance between two value sets: `1 − 2|A ∩ B| / (|A| + |B|)`.
pub fn dice_distance(a: &[String], b: &[String]) -> f64 {
    if a.is_empty() && b.is_empty() {
        return 0.0;
    }
    if a.is_empty() || b.is_empty() {
        return 1.0;
    }
    stats::count_token_fallback();
    let ta = sorted_tokens(a.iter().map(|s| s.as_str()));
    let tb = sorted_tokens(b.iter().map(|s| s.as_str()));
    let (intersection, _) = sorted_overlap(&ta, &tb);
    1.0 - 2.0 * intersection as f64 / (ta.len() + tb.len()) as f64
}

/// Jaccard distance between two pre-built value sets.
///
/// Retained for callers that already hold `HashSet`s; the counts (and
/// therefore the result) are exactly those of [`jaccard_distance`] on the
/// underlying value slices and of [`jaccard_ids`] on the interned ids.
pub fn jaccard_distance_sets(a: &HashSet<String>, b: &HashSet<String>) -> f64 {
    if a.is_empty() && b.is_empty() {
        return 0.0;
    }
    if a.is_empty() || b.is_empty() {
        return 1.0;
    }
    stats::count_token_fallback();
    let intersection = a.iter().filter(|v| b.contains(*v)).count();
    let union = a.len() + b.len() - intersection;
    1.0 - intersection as f64 / union as f64
}

/// Dice distance between two pre-built value sets (see
/// [`jaccard_distance_sets`]).
pub fn dice_distance_sets(a: &HashSet<String>, b: &HashSet<String>) -> f64 {
    if a.is_empty() && b.is_empty() {
        return 0.0;
    }
    if a.is_empty() || b.is_empty() {
        return 1.0;
    }
    stats::count_token_fallback();
    let intersection = a.iter().filter(|v| b.contains(*v)).count();
    1.0 - 2.0 * intersection as f64 / (a.len() + b.len()) as f64
}

/// Jaccard distance between two *single* values interpreted as whitespace
/// separated token bags (used when the measure is applied without a previous
/// `tokenize` transformation).
pub fn jaccard_distance_values(a: &str, b: &str) -> f64 {
    let ta = sorted_tokens(a.split_whitespace());
    let tb = sorted_tokens(b.split_whitespace());
    if ta.is_empty() && tb.is_empty() {
        return 0.0;
    }
    if ta.is_empty() || tb.is_empty() {
        return 1.0;
    }
    stats::count_token_fallback();
    let (intersection, union) = sorted_overlap(&ta, &tb);
    1.0 - intersection as f64 / union as f64
}

/// Dice distance between two single values interpreted as token bags.
pub fn dice_distance_values(a: &str, b: &str) -> f64 {
    let ta = sorted_tokens(a.split_whitespace());
    let tb = sorted_tokens(b.split_whitespace());
    if ta.is_empty() && tb.is_empty() {
        return 0.0;
    }
    if ta.is_empty() || tb.is_empty() {
        return 1.0;
    }
    stats::count_token_fallback();
    let (intersection, _) = sorted_overlap(&ta, &tb);
    1.0 - 2.0 * intersection as f64 / (ta.len() + tb.len()) as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn vs(values: &[&str]) -> Vec<String> {
        values.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn jaccard_known_values() {
        assert_eq!(jaccard_distance(&vs(&["a", "b"]), &vs(&["a", "b"])), 0.0);
        assert_eq!(jaccard_distance(&vs(&["a"]), &vs(&["b"])), 1.0);
        // {a,b,c} vs {b,c,d}: intersection 2, union 4
        assert!(
            (jaccard_distance(&vs(&["a", "b", "c"]), &vs(&["b", "c", "d"])) - 0.5).abs() < 1e-12
        );
    }

    #[test]
    fn jaccard_ignores_duplicates() {
        assert_eq!(
            jaccard_distance(&vs(&["a", "a", "b"]), &vs(&["b", "a"])),
            0.0
        );
    }

    #[test]
    fn jaccard_empty_sets() {
        assert_eq!(jaccard_distance(&[], &[]), 0.0);
        assert_eq!(jaccard_distance(&vs(&["a"]), &[]), 1.0);
        assert_eq!(jaccard_distance(&[], &vs(&["a"])), 1.0);
    }

    #[test]
    fn dice_known_values() {
        assert_eq!(dice_distance(&vs(&["a", "b"]), &vs(&["a", "b"])), 0.0);
        assert_eq!(dice_distance(&vs(&["a"]), &vs(&["b"])), 1.0);
        // {a,b,c} vs {b,c,d}: 2*2/(3+3) = 2/3 -> distance 1/3
        assert!(
            (dice_distance(&vs(&["a", "b", "c"]), &vs(&["b", "c", "d"])) - 1.0 / 3.0).abs() < 1e-12
        );
    }

    #[test]
    fn id_kernels_known_values() {
        assert_eq!(jaccard_ids(&[1, 2], &[1, 2]), 0.0);
        assert_eq!(jaccard_ids(&[1], &[2]), 1.0);
        assert!((jaccard_ids(&[1, 2, 3], &[2, 3, 4]) - 0.5).abs() < 1e-12);
        assert_eq!(jaccard_ids(&[], &[]), 0.0);
        assert_eq!(jaccard_ids(&[7], &[]), 1.0);
        assert_eq!(dice_ids(&[], &[]), 0.0);
        assert_eq!(dice_ids(&[], &[7]), 1.0);
        assert!((dice_ids(&[1, 2, 3], &[2, 3, 4]) - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn value_level_variants_tokenize_on_whitespace() {
        assert_eq!(
            jaccard_distance_values("new york times", "times new york"),
            0.0
        );
        assert!(jaccard_distance_values("new york", "los angeles") > 0.99);
        assert_eq!(dice_distance_values("a b", "b a"), 0.0);
    }

    /// Maps distinct tokens to distinct ids with order preserved, mirroring
    /// what an interner produces for these inputs.
    fn as_sorted_ids(tokens: &[String]) -> Vec<u32> {
        let mut seen: Vec<&str> = tokens.iter().map(|s| s.as_str()).collect();
        seen.sort_unstable();
        seen.dedup();
        (0..seen.len() as u32).collect()
    }

    /// Shared ids across two token lists: intern over the union so equal
    /// tokens on both sides get equal ids.
    fn intern_pair(a: &[String], b: &[String]) -> (Vec<u32>, Vec<u32>) {
        let mut vocab: Vec<&str> = a.iter().chain(b.iter()).map(|s| s.as_str()).collect();
        vocab.sort_unstable();
        vocab.dedup();
        let lookup = |tokens: &[String]| {
            let mut ids: Vec<u32> = tokens
                .iter()
                .map(|t| vocab.binary_search(&t.as_str()).unwrap() as u32)
                .collect();
            ids.sort_unstable();
            ids.dedup();
            ids
        };
        (lookup(a), lookup(b))
    }

    proptest! {
        #[test]
        fn jaccard_in_unit_interval_and_symmetric(
            a in proptest::collection::vec("[a-c]{1,2}", 0..6),
            b in proptest::collection::vec("[a-c]{1,2}", 0..6),
        ) {
            let d = jaccard_distance(&a, &b);
            prop_assert!((0.0..=1.0).contains(&d));
            prop_assert!((d - jaccard_distance(&b, &a)).abs() < 1e-12);
        }

        #[test]
        fn dice_never_exceeds_jaccard(
            a in proptest::collection::vec("[a-c]{1,2}", 1..6),
            b in proptest::collection::vec("[a-c]{1,2}", 1..6),
        ) {
            // Dice similarity >= Jaccard similarity, hence Dice distance <= Jaccard distance.
            prop_assert!(dice_distance(&a, &b) <= jaccard_distance(&a, &b) + 1e-12);
        }

        #[test]
        fn identical_sets_have_zero_distance(a in proptest::collection::vec("[a-z]{1,3}", 0..6)) {
            prop_assert_eq!(jaccard_distance(&a, &a), 0.0);
            prop_assert_eq!(dice_distance(&a, &a), 0.0);
            let ids = as_sorted_ids(&a);
            prop_assert_eq!(jaccard_ids(&ids, &ids), 0.0);
            prop_assert_eq!(dice_ids(&ids, &ids), 0.0);
        }

        /// The sorted-id kernels agree bit-for-bit with the HashSet and
        /// string-slice variants over random multisets.
        #[test]
        fn id_kernels_match_hashset_variants(
            a in proptest::collection::vec("[a-e]{1,2}", 0..8),
            b in proptest::collection::vec("[a-e]{1,2}", 0..8),
        ) {
            let (ia, ib) = intern_pair(&a, &b);
            let sa: HashSet<String> = a.iter().cloned().collect();
            let sb: HashSet<String> = b.iter().cloned().collect();
            prop_assert_eq!(
                jaccard_ids(&ia, &ib).to_bits(),
                jaccard_distance_sets(&sa, &sb).to_bits()
            );
            prop_assert_eq!(
                dice_ids(&ia, &ib).to_bits(),
                dice_distance_sets(&sa, &sb).to_bits()
            );
            prop_assert_eq!(
                jaccard_ids(&ia, &ib).to_bits(),
                jaccard_distance(&a, &b).to_bits()
            );
            prop_assert_eq!(
                dice_ids(&ia, &ib).to_bits(),
                dice_distance(&a, &b).to_bits()
            );
        }
    }
}
