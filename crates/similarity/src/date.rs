//! Date distance: the difference between two dates in days (Table 2).
//!
//! Dates are parsed from ISO-8601 (`2012-08-01`, optionally with a trailing
//! time component), from `YYYY/MM/DD`, and from bare years (`1998`), which is
//! how publication dates appear in the Cora data set.  The conversion to a day
//! number uses the proleptic Gregorian civil-date algorithm of Howard Hinnant,
//! so no external date crate is needed.

/// A parsed calendar date.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Date {
    /// Year (proleptic Gregorian).
    pub year: i32,
    /// Month 1-12.
    pub month: u32,
    /// Day of month 1-31.
    pub day: u32,
}

impl Date {
    /// Days since the civil epoch 1970-01-01 (may be negative).
    pub fn days_from_epoch(&self) -> i64 {
        days_from_civil(self.year, self.month, self.day)
    }
}

/// Converts a civil date to days since 1970-01-01 (Howard Hinnant's algorithm).
fn days_from_civil(y: i32, m: u32, d: u32) -> i64 {
    let y = y as i64 - i64::from(m <= 2);
    let era = if y >= 0 { y } else { y - 399 } / 400;
    let yoe = y - era * 400; // [0, 399]
    let mp = (m as i64 + 9) % 12; // March = 0
    let doy = (153 * mp + 2) / 5 + d as i64 - 1; // [0, 365]
    let doe = yoe * 365 + yoe / 4 - yoe / 100 + doy; // [0, 146096]
    era * 146097 + doe - 719468
}

fn days_in_month(year: i32, month: u32) -> u32 {
    match month {
        1 | 3 | 5 | 7 | 8 | 10 | 12 => 31,
        4 | 6 | 9 | 11 => 30,
        2 => {
            if (year % 4 == 0 && year % 100 != 0) || year % 400 == 0 {
                29
            } else {
                28
            }
        }
        _ => 0,
    }
}

/// Parses a date from ISO-8601, `YYYY/MM/DD`, `YYYY-MM`, or a bare year.
/// A bare year or year-month is completed to January respectively day 1.
pub fn parse_date(value: &str) -> Option<Date> {
    let trimmed = value.trim();
    // strip a time component, if any
    let date_part = trimmed.split(['T', ' ']).next().unwrap_or(trimmed);
    let parts: Vec<&str> = date_part
        .split(['-', '/'])
        .filter(|s| !s.is_empty())
        .collect();
    let (year, month, day) = match parts.len() {
        1 => {
            let y = parts[0].parse::<i32>().ok()?;
            if !(0..=9999).contains(&y) || parts[0].len() != 4 {
                return None;
            }
            (y, 1, 1)
        }
        2 => {
            let y = parts[0].parse::<i32>().ok()?;
            let m = parts[1].parse::<u32>().ok()?;
            (y, m, 1)
        }
        3 => {
            let y = parts[0].parse::<i32>().ok()?;
            let m = parts[1].parse::<u32>().ok()?;
            let d = parts[2].parse::<u32>().ok()?;
            (y, m, d)
        }
        _ => return None,
    };
    if !(1..=12).contains(&month) || day < 1 || day > days_in_month(year, month) {
        return None;
    }
    Some(Date { year, month, day })
}

/// The distance between two dates in days (Table 2).  Unparseable values yield
/// an infinite distance.
pub fn date_distance(a: &str, b: &str) -> f64 {
    match (parse_date(a), parse_date(b)) {
        (Some(da), Some(db)) => (da.days_from_epoch() - db.days_from_epoch()).abs() as f64,
        _ => f64::INFINITY,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn parses_iso_dates() {
        assert_eq!(
            parse_date("2012-08-01"),
            Some(Date {
                year: 2012,
                month: 8,
                day: 1
            })
        );
        assert_eq!(
            parse_date("2012-08-01T12:30:00"),
            Some(Date {
                year: 2012,
                month: 8,
                day: 1
            })
        );
        assert_eq!(
            parse_date("1998/05/20"),
            Some(Date {
                year: 1998,
                month: 5,
                day: 20
            })
        );
    }

    #[test]
    fn parses_partial_dates() {
        assert_eq!(
            parse_date("1998"),
            Some(Date {
                year: 1998,
                month: 1,
                day: 1
            })
        );
        assert_eq!(
            parse_date("1998-07"),
            Some(Date {
                year: 1998,
                month: 7,
                day: 1
            })
        );
    }

    #[test]
    fn rejects_invalid_dates() {
        assert_eq!(parse_date("not a date"), None);
        assert_eq!(parse_date("2001-13-01"), None);
        assert_eq!(parse_date("2001-02-30"), None);
        assert_eq!(parse_date("20010101"), None);
        assert_eq!(parse_date(""), None);
        assert_eq!(parse_date("42"), None);
    }

    #[test]
    fn epoch_reference_points() {
        assert_eq!(days_from_civil(1970, 1, 1), 0);
        assert_eq!(days_from_civil(1970, 1, 2), 1);
        assert_eq!(days_from_civil(1969, 12, 31), -1);
        assert_eq!(days_from_civil(2000, 3, 1), 11017);
    }

    #[test]
    fn leap_years_are_respected() {
        assert_eq!(parse_date("2000-02-29").map(|d| d.day), Some(29));
        assert_eq!(parse_date("1900-02-29"), None);
        assert_eq!(parse_date("2004-02-29").map(|d| d.day), Some(29));
    }

    #[test]
    fn distance_in_days() {
        assert_eq!(date_distance("2012-08-01", "2012-08-01"), 0.0);
        assert_eq!(date_distance("2012-08-01", "2012-08-11"), 10.0);
        assert_eq!(date_distance("2012-08-11", "2012-08-01"), 10.0);
        assert_eq!(date_distance("2000-01-01", "2001-01-01"), 366.0);
        assert!(date_distance("soon", "2012-08-01").is_infinite());
    }

    #[test]
    fn year_distance_for_movie_disambiguation() {
        // movies sharing a title but produced in different years: the
        // LinkedMDB corner case of Section 6.2
        assert!(date_distance("1960", "2004") > 15000.0);
    }

    proptest! {
        #[test]
        fn distance_is_symmetric(
            y1 in 1900i32..2100, m1 in 1u32..13, d1 in 1u32..29,
            y2 in 1900i32..2100, m2 in 1u32..13, d2 in 1u32..29,
        ) {
            let a = format!("{y1:04}-{m1:02}-{d1:02}");
            let b = format!("{y2:04}-{m2:02}-{d2:02}");
            prop_assert_eq!(date_distance(&a, &b), date_distance(&b, &a));
            prop_assert!(date_distance(&a, &b) >= 0.0);
        }

        #[test]
        fn consecutive_days_differ_by_one(y in 1900i32..2100, m in 1u32..13, d in 1u32..28) {
            let a = format!("{y:04}-{m:02}-{d:02}");
            let b = format!("{y:04}-{m:02}-{:02}", d + 1);
            prop_assert_eq!(date_distance(&a, &b), 1.0);
        }
    }
}
