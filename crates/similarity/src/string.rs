//! Character-based string distances: Levenshtein, Jaro and Jaro-Winkler.

/// Levenshtein edit distance between two strings, computed over Unicode
/// scalar values with the classic two-row dynamic program.
pub fn levenshtein(a: &str, b: &str) -> usize {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    if a.is_empty() {
        return b.len();
    }
    if b.is_empty() {
        return a.len();
    }
    let mut prev: Vec<usize> = (0..=b.len()).collect();
    let mut current = vec![0usize; b.len() + 1];
    for (i, ca) in a.iter().enumerate() {
        current[0] = i + 1;
        for (j, cb) in b.iter().enumerate() {
            let substitution = prev[j] + usize::from(ca != cb);
            let insertion = current[j] + 1;
            let deletion = prev[j + 1] + 1;
            current[j + 1] = substitution.min(insertion).min(deletion);
        }
        std::mem::swap(&mut prev, &mut current);
    }
    prev[b.len()]
}

/// Banded Levenshtein distance with early exit: returns `Some(d)` iff the
/// edit distance is at most `bound`, and `None` as soon as it can prove the
/// distance exceeds the bound.
///
/// Comparison operators discard any distance above their threshold `θ`
/// (Definition 7 turns it into similarity `0`), so the evaluator only ever
/// needs distances within the band `⌊θ⌋`.  The dynamic program therefore
/// fills only the diagonal band of width `2·bound + 1` and abandons a row
/// once every cell in it exceeds the bound — `O(bound · max(|a|, |b|))`
/// instead of `O(|a| · |b|)`.  Within the band the values are exactly those
/// of the full matrix, so `Some(d)` is always the true [`levenshtein`]
/// distance.
pub fn levenshtein_bounded(a: &str, b: &str, bound: usize) -> Option<usize> {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    if a.len().abs_diff(b.len()) > bound {
        return None;
    }
    if a.is_empty() {
        return Some(b.len());
    }
    if b.is_empty() {
        return Some(a.len());
    }
    // cells outside the band act as "already above the bound"
    const OUTSIDE: usize = usize::MAX / 2;
    let mut prev = vec![OUTSIDE; b.len() + 1];
    let mut current = vec![OUTSIDE; b.len() + 1];
    for (j, cell) in prev.iter_mut().enumerate().take(b.len().min(bound) + 1) {
        *cell = j;
    }
    for i in 1..=a.len() {
        let low = i.saturating_sub(bound);
        let high = (i + bound).min(b.len());
        let mut row_min = OUTSIDE;
        for j in low..=high {
            let value = if j == 0 {
                i
            } else {
                let substitution = prev[j - 1].saturating_add(usize::from(a[i - 1] != b[j - 1]));
                let insertion = current[j - 1].saturating_add(1);
                let deletion = prev[j].saturating_add(1);
                substitution.min(insertion).min(deletion)
            };
            current[j] = value;
            row_min = row_min.min(value);
        }
        if row_min > bound {
            return None;
        }
        std::mem::swap(&mut prev, &mut current);
        current.fill(OUTSIDE);
    }
    let distance = prev[b.len()];
    (distance <= bound).then_some(distance)
}

/// Levenshtein distance normalised to `[0, 1]` by the longer string length.
pub fn normalized_levenshtein(a: &str, b: &str) -> f64 {
    let max_len = a.chars().count().max(b.chars().count());
    if max_len == 0 {
        return 0.0;
    }
    levenshtein(a, b) as f64 / max_len as f64
}

/// Jaro similarity in `[0, 1]` (1 = identical).
pub fn jaro_similarity(a: &str, b: &str) -> f64 {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    if a.is_empty() && b.is_empty() {
        return 1.0;
    }
    if a.is_empty() || b.is_empty() {
        return 0.0;
    }
    let match_window = (a.len().max(b.len()) / 2).saturating_sub(1);
    let mut b_matched = vec![false; b.len()];
    let mut matches = 0usize;
    let mut a_match_flags = vec![false; a.len()];
    for (i, ca) in a.iter().enumerate() {
        let start = i.saturating_sub(match_window);
        let end = (i + match_window + 1).min(b.len());
        for j in start..end {
            if !b_matched[j] && b[j] == *ca {
                b_matched[j] = true;
                a_match_flags[i] = true;
                matches += 1;
                break;
            }
        }
    }
    if matches == 0 {
        return 0.0;
    }
    // count transpositions
    let matched_a: Vec<char> = a
        .iter()
        .enumerate()
        .filter(|(i, _)| a_match_flags[*i])
        .map(|(_, c)| *c)
        .collect();
    let matched_b: Vec<char> = b
        .iter()
        .enumerate()
        .filter(|(j, _)| b_matched[*j])
        .map(|(_, c)| *c)
        .collect();
    let transpositions = matched_a
        .iter()
        .zip(matched_b.iter())
        .filter(|(x, y)| x != y)
        .count()
        / 2;
    let m = matches as f64;
    (m / a.len() as f64 + m / b.len() as f64 + (m - transpositions as f64) / m) / 3.0
}

/// Jaro-Winkler similarity with the standard prefix scale of 0.1 and a maximum
/// prefix length of 4.
pub fn jaro_winkler_similarity(a: &str, b: &str) -> f64 {
    let jaro = jaro_similarity(a, b);
    let prefix = a
        .chars()
        .zip(b.chars())
        .take(4)
        .take_while(|(x, y)| x == y)
        .count() as f64;
    (jaro + prefix * 0.1 * (1.0 - jaro)).min(1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn levenshtein_known_values() {
        assert_eq!(levenshtein("kitten", "sitting"), 3);
        assert_eq!(levenshtein("flaw", "lawn"), 2);
        assert_eq!(levenshtein("", "abc"), 3);
        assert_eq!(levenshtein("abc", ""), 3);
        assert_eq!(levenshtein("same", "same"), 0);
        assert_eq!(levenshtein("iPod", "IPOD"), 3);
        assert_eq!(levenshtein("Berlin", "berlin"), 1);
    }

    #[test]
    fn levenshtein_handles_unicode() {
        assert_eq!(levenshtein("café", "cafe"), 1);
        assert_eq!(levenshtein("Universität", "Universitat"), 1);
    }

    #[test]
    fn normalized_levenshtein_bounds() {
        assert_eq!(normalized_levenshtein("", ""), 0.0);
        assert_eq!(normalized_levenshtein("abc", "abc"), 0.0);
        assert_eq!(normalized_levenshtein("abc", "xyz"), 1.0);
        assert!((normalized_levenshtein("abcd", "abce") - 0.25).abs() < 1e-12);
    }

    #[test]
    fn jaro_known_values() {
        assert!((jaro_similarity("MARTHA", "MARHTA") - 0.944444).abs() < 1e-4);
        assert!((jaro_similarity("DIXON", "DICKSONX") - 0.766667).abs() < 1e-4);
        assert_eq!(jaro_similarity("", ""), 1.0);
        assert_eq!(jaro_similarity("a", ""), 0.0);
        assert_eq!(jaro_similarity("abc", "abc"), 1.0);
        assert_eq!(jaro_similarity("abc", "xyz"), 0.0);
    }

    #[test]
    fn jaro_winkler_known_values() {
        assert!((jaro_winkler_similarity("MARTHA", "MARHTA") - 0.961111).abs() < 1e-4);
        assert!((jaro_winkler_similarity("DWAYNE", "DUANE") - 0.84).abs() < 1e-2);
        assert_eq!(jaro_winkler_similarity("same", "same"), 1.0);
    }

    #[test]
    fn bounded_levenshtein_known_values() {
        assert_eq!(levenshtein_bounded("kitten", "sitting", 3), Some(3));
        assert_eq!(levenshtein_bounded("kitten", "sitting", 2), None);
        assert_eq!(levenshtein_bounded("same", "same", 0), Some(0));
        assert_eq!(levenshtein_bounded("", "abc", 3), Some(3));
        assert_eq!(levenshtein_bounded("", "abc", 2), None);
        assert_eq!(levenshtein_bounded("abc", "", 5), Some(3));
        assert_eq!(levenshtein_bounded("Berlin", "berlin", 1), Some(1));
        assert_eq!(levenshtein_bounded("a", "b", 0), None);
    }

    #[test]
    fn bounded_levenshtein_length_difference_short_circuits() {
        // strings whose lengths differ by more than the bound cannot match
        assert_eq!(levenshtein_bounded("ab", "abcdefgh", 3), None);
        assert_eq!(levenshtein_bounded("ab", "abcdefgh", 6), Some(6));
    }

    proptest! {
        #[test]
        fn levenshtein_is_symmetric(a in ".{0,20}", b in ".{0,20}") {
            prop_assert_eq!(levenshtein(&a, &b), levenshtein(&b, &a));
        }

        /// Parity with the naive implementation: for every bound, the banded
        /// version returns exactly the naive distance when it is within the
        /// bound and `None` otherwise.
        #[test]
        fn bounded_levenshtein_matches_naive(a in ".{0,16}", b in ".{0,16}", bound in 0usize..20) {
            let naive = levenshtein(&a, &b);
            let banded = levenshtein_bounded(&a, &b, bound);
            if naive <= bound {
                prop_assert_eq!(banded, Some(naive), "a={:?} b={:?} bound={}", a, b, bound);
            } else {
                prop_assert_eq!(banded, None, "a={:?} b={:?} bound={} naive={}", a, b, bound, naive);
            }
        }

        #[test]
        fn levenshtein_identity(a in ".{0,20}") {
            prop_assert_eq!(levenshtein(&a, &a), 0);
        }

        #[test]
        fn levenshtein_bounded_by_longer_string(a in ".{0,20}", b in ".{0,20}") {
            let d = levenshtein(&a, &b);
            prop_assert!(d <= a.chars().count().max(b.chars().count()));
            let diff = (a.chars().count() as i64 - b.chars().count() as i64).unsigned_abs() as usize;
            prop_assert!(d >= diff);
        }

        #[test]
        fn levenshtein_triangle_inequality(a in ".{0,12}", b in ".{0,12}", c in ".{0,12}") {
            prop_assert!(levenshtein(&a, &c) <= levenshtein(&a, &b) + levenshtein(&b, &c));
        }

        #[test]
        fn jaro_in_unit_interval_and_symmetric(a in ".{0,20}", b in ".{0,20}") {
            let s = jaro_similarity(&a, &b);
            prop_assert!((0.0..=1.0).contains(&s));
            prop_assert!((s - jaro_similarity(&b, &a)).abs() < 1e-12);
        }

        #[test]
        fn jaro_winkler_at_least_jaro(a in ".{0,20}", b in ".{0,20}") {
            let jw = jaro_winkler_similarity(&a, &b);
            prop_assert!((0.0..=1.0).contains(&jw));
            prop_assert!(jw + 1e-12 >= jaro_similarity(&a, &b));
        }
    }
}
