//! Character-based string distances: Levenshtein, Jaro and Jaro-Winkler.
//!
//! The public entry points dispatch between two implementations:
//!
//! * an **ASCII fast path** working directly on `&[u8]` — Levenshtein runs
//!   the Myers bit-parallel algorithm (one `u64` word for patterns up to 64
//!   characters, Hyyrö's blocked extension above that), Jaro reuses
//!   per-thread match-flag buffers — with all working memory drawn from the
//!   thread-local [`SimScratch`](crate::scratch::SimScratch) pool, so a
//!   warmed-up worker allocates nothing per call;
//! * the original character-level dynamic programs, retained verbatim as
//!   `*_reference` — they remain the correctness oracle for the property
//!   tests and the fallback for non-ASCII inputs.
//!
//! Both paths return **identical values** (identical distances for
//! Levenshtein, bit-identical `f64` for Jaro: the fast path reproduces the
//! reference's match/transposition counts and evaluates the same final
//! expression), so callers may mix them freely without breaking the
//! compiled-vs-tree-walk parity guarantees.

use crate::scratch::{with_scratch, SimScratch};
use crate::stats;

/// Levenshtein edit distance between two strings, computed over Unicode
/// scalar values.  ASCII inputs run the Myers bit-parallel kernel; anything
/// else falls back to [`levenshtein_reference`].
pub fn levenshtein(a: &str, b: &str) -> usize {
    if a.is_ascii() && b.is_ascii() {
        levenshtein_bytes(a.as_bytes(), b.as_bytes())
    } else {
        stats::count_levenshtein_fallback();
        levenshtein_reference(a, b)
    }
}

/// Bounded Levenshtein distance with early exit: returns `Some(d)` iff the
/// edit distance is at most `bound`, and `None` otherwise.
///
/// Comparison operators discard any distance above their threshold `θ`
/// (Definition 7 turns it into similarity `0`), so the evaluator only ever
/// needs distances within `⌊θ⌋`.  ASCII inputs short-circuit on the length
/// difference and otherwise run the bit-parallel kernel (which beats the
/// banded DP at every realistic bound: it processes 64 pattern rows per
/// instruction); non-ASCII inputs use the banded reference DP.
pub fn levenshtein_bounded(a: &str, b: &str, bound: usize) -> Option<usize> {
    if a.is_ascii() && b.is_ascii() {
        let x = a.as_bytes();
        let y = b.as_bytes();
        if x.len().abs_diff(y.len()) > bound {
            return None;
        }
        let distance = levenshtein_bytes(x, y);
        (distance <= bound).then_some(distance)
    } else {
        stats::count_levenshtein_fallback();
        levenshtein_bounded_reference(a, b, bound)
    }
}

/// Levenshtein distance normalised to `[0, 1]` by the longer string length.
pub fn normalized_levenshtein(a: &str, b: &str) -> f64 {
    let max_len = a.chars().count().max(b.chars().count());
    if max_len == 0 {
        return 0.0;
    }
    levenshtein(a, b) as f64 / max_len as f64
}

/// ASCII dispatch: pick the shorter side as the Myers pattern (fewer words)
/// and run the single-word or blocked kernel.
fn levenshtein_bytes(a: &[u8], b: &[u8]) -> usize {
    let (pattern, text) = if a.len() <= b.len() { (a, b) } else { (b, a) };
    if pattern.is_empty() {
        return text.len();
    }
    stats::count_levenshtein_bit_parallel();
    with_scratch(|scratch| {
        if pattern.len() <= 64 {
            myers_64(pattern, text, &mut scratch.peq)
        } else {
            myers_blocked(pattern, text, scratch)
        }
    })
}

/// Myers (1999) bit-parallel edit distance for patterns of 1..=64 bytes, in
/// Hyyrö's formulation.  `Pv`/`Mv` hold the vertical deltas of one DP
/// column packed into single words; each text byte advances the whole
/// column in O(1) word operations.  The `| 1` on the `Ph` shift feeds the
/// `D[0][j] = j` boundary (the top row grows by one every column).
///
/// `peq` must be all-zero on entry; the touched bytes are cleared before
/// returning so the table can live in the shared scratch.
fn myers_64(pattern: &[u8], text: &[u8], peq: &mut [u64; 256]) -> usize {
    debug_assert!((1..=64).contains(&pattern.len()));
    for (i, &c) in pattern.iter().enumerate() {
        peq[c as usize] |= 1u64 << i;
    }
    let mut pv = !0u64;
    let mut mv = 0u64;
    let mut score = pattern.len();
    let high = 1u64 << (pattern.len() - 1);
    for &c in text {
        let eq = peq[c as usize];
        let xv = eq | mv;
        let xh = (((eq & pv).wrapping_add(pv)) ^ pv) | eq;
        let ph = mv | !(xh | pv);
        let mh = pv & xh;
        if ph & high != 0 {
            score += 1;
        }
        if mh & high != 0 {
            score -= 1;
        }
        let ph = (ph << 1) | 1;
        pv = (mh << 1) | !(xv | ph);
        mv = ph & xv;
    }
    for &c in pattern {
        peq[c as usize] = 0;
    }
    score
}

/// One column step of one 64-row block (Hyyrö 2003).  `hin` is the
/// horizontal delta entering the block's top row (`-1`, `0` or `+1`); the
/// return value is the horizontal delta leaving at `high` (the block's last
/// meaningful row).  Carries propagate strictly upward, so garbage bits
/// above a partial final block never contaminate the tracked rows.
#[inline]
fn advance_block(pv: &mut u64, mv: &mut u64, eq: u64, hin: i32, high: u64) -> i32 {
    let mut eq = eq;
    let xv = eq | *mv;
    if hin < 0 {
        eq |= 1;
    }
    let xh = (((eq & *pv).wrapping_add(*pv)) ^ *pv) | eq;
    let ph = *mv | !(xh | *pv);
    let mh = *pv & xh;
    let mut hout = 0;
    if ph & high != 0 {
        hout += 1;
    }
    if mh & high != 0 {
        hout -= 1;
    }
    let mut ph = ph << 1;
    let mut mh = mh << 1;
    if hin > 0 {
        ph |= 1;
    } else if hin < 0 {
        mh |= 1;
    }
    *pv = mh | !(xv | ph);
    *mv = ph & xv;
    hout
}

/// Blocked Myers for patterns above 64 bytes: the pattern is split into
/// ⌈m/64⌉ vertical blocks and each text byte advances them bottom-up,
/// chaining the horizontal delta from block to block.  The score is tracked
/// at the pattern's true last row (bit `(m-1) mod 64` of the final block).
fn myers_blocked(pattern: &[u8], text: &[u8], scratch: &mut SimScratch) -> usize {
    let m = pattern.len();
    let blocks = m.div_ceil(64);
    let peq = &mut scratch.peq_blocks;
    if peq.len() < 256 * blocks {
        peq.resize(256 * blocks, 0);
    }
    for (i, &c) in pattern.iter().enumerate() {
        peq[c as usize * blocks + (i >> 6)] |= 1u64 << (i & 63);
    }
    scratch.pv.clear();
    scratch.pv.resize(blocks, !0u64);
    scratch.mv.clear();
    scratch.mv.resize(blocks, 0u64);
    let last = blocks - 1;
    let rem = m - last * 64; // 1..=64
    let last_high = 1u64 << (rem - 1);
    let mut score = m as isize;
    for &c in text {
        let row = c as usize * blocks;
        // the matrix's top boundary D[0][j] = j enters block 0 as hin = +1
        let mut hin = 1i32;
        for j in 0..blocks {
            let high = if j == last { last_high } else { 1u64 << 63 };
            hin = advance_block(
                &mut scratch.pv[j],
                &mut scratch.mv[j],
                peq[row + j],
                hin,
                high,
            );
        }
        score += hin as isize;
    }
    for (i, &c) in pattern.iter().enumerate() {
        peq[c as usize * blocks + (i >> 6)] = 0;
    }
    score as usize
}

/// The classic two-row character dynamic program — the seed implementation,
/// kept as the correctness oracle for the bit-parallel kernels and the
/// fallback for non-ASCII inputs.
pub fn levenshtein_reference(a: &str, b: &str) -> usize {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    if a.is_empty() {
        return b.len();
    }
    if b.is_empty() {
        return a.len();
    }
    let mut prev: Vec<usize> = (0..=b.len()).collect();
    let mut current = vec![0usize; b.len() + 1];
    for (i, ca) in a.iter().enumerate() {
        current[0] = i + 1;
        for (j, cb) in b.iter().enumerate() {
            let substitution = prev[j] + usize::from(ca != cb);
            let insertion = current[j] + 1;
            let deletion = prev[j + 1] + 1;
            current[j + 1] = substitution.min(insertion).min(deletion);
        }
        std::mem::swap(&mut prev, &mut current);
    }
    prev[b.len()]
}

/// Banded character DP with early exit — the seed implementation of
/// [`levenshtein_bounded`], kept as the oracle and the non-ASCII fallback.
/// Fills only the diagonal band of width `2·bound + 1` and abandons a row
/// once every cell exceeds the bound; within the band the values are
/// exactly those of the full matrix.
pub fn levenshtein_bounded_reference(a: &str, b: &str, bound: usize) -> Option<usize> {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    if a.len().abs_diff(b.len()) > bound {
        return None;
    }
    if a.is_empty() {
        return Some(b.len());
    }
    if b.is_empty() {
        return Some(a.len());
    }
    // cells outside the band act as "already above the bound"
    const OUTSIDE: usize = usize::MAX / 2;
    let mut prev = vec![OUTSIDE; b.len() + 1];
    let mut current = vec![OUTSIDE; b.len() + 1];
    for (j, cell) in prev.iter_mut().enumerate().take(b.len().min(bound) + 1) {
        *cell = j;
    }
    for i in 1..=a.len() {
        let low = i.saturating_sub(bound);
        let high = (i + bound).min(b.len());
        let mut row_min = OUTSIDE;
        for j in low..=high {
            let value = if j == 0 {
                i
            } else {
                let substitution = prev[j - 1].saturating_add(usize::from(a[i - 1] != b[j - 1]));
                let insertion = current[j - 1].saturating_add(1);
                let deletion = prev[j].saturating_add(1);
                substitution.min(insertion).min(deletion)
            };
            current[j] = value;
            row_min = row_min.min(value);
        }
        if row_min > bound {
            return None;
        }
        std::mem::swap(&mut prev, &mut current);
        current.fill(OUTSIDE);
    }
    let distance = prev[b.len()];
    (distance <= bound).then_some(distance)
}

/// Jaro similarity in `[0, 1]` (1 = identical).  Early-exits on empty and
/// identical inputs; ASCII inputs run on bytes with scratch match flags,
/// anything else falls back to [`jaro_similarity_reference`].  All paths
/// agree bit-for-bit.
pub fn jaro_similarity(a: &str, b: &str) -> f64 {
    if a.is_empty() && b.is_empty() {
        return 1.0;
    }
    if a.is_empty() || b.is_empty() {
        return 0.0;
    }
    // exact: identical strings score (1 + 1 + 1) / 3 = 1.0 on every path
    if a == b {
        return 1.0;
    }
    if a.is_ascii() && b.is_ascii() {
        stats::count_jaro_fast();
        with_scratch(|scratch| jaro_ascii(a.as_bytes(), b.as_bytes(), scratch))
    } else {
        stats::count_jaro_fallback();
        jaro_similarity_reference(a, b)
    }
}

/// Byte-level Jaro: same match-window scan as the reference, but the match
/// flags come from the scratch pool and transpositions are counted with a
/// two-pointer walk instead of materialising the matched subsequences.  The
/// match and transposition counts — and therefore the result — are exactly
/// the reference's.
fn jaro_ascii(a: &[u8], b: &[u8], scratch: &mut SimScratch) -> f64 {
    let match_window = (a.len().max(b.len()) / 2).saturating_sub(1);
    scratch.flags_a.clear();
    scratch.flags_a.resize(a.len(), false);
    scratch.flags_b.clear();
    scratch.flags_b.resize(b.len(), false);
    let mut matches = 0usize;
    for (i, &ca) in a.iter().enumerate() {
        let start = i.saturating_sub(match_window);
        let end = (i + match_window + 1).min(b.len());
        for (j, &cb) in b.iter().enumerate().take(end).skip(start) {
            if !scratch.flags_b[j] && cb == ca {
                scratch.flags_b[j] = true;
                scratch.flags_a[i] = true;
                matches += 1;
                break;
            }
        }
    }
    if matches == 0 {
        return 0.0;
    }
    let mut mismatched = 0usize;
    let mut k = 0usize;
    for (i, &ca) in a.iter().enumerate() {
        if !scratch.flags_a[i] {
            continue;
        }
        while !scratch.flags_b[k] {
            k += 1;
        }
        if b[k] != ca {
            mismatched += 1;
        }
        k += 1;
    }
    let transpositions = mismatched / 2;
    let m = matches as f64;
    (m / a.len() as f64 + m / b.len() as f64 + (m - transpositions as f64) / m) / 3.0
}

/// The seed character-level Jaro implementation, kept as the oracle and the
/// non-ASCII fallback.
pub fn jaro_similarity_reference(a: &str, b: &str) -> f64 {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    if a.is_empty() && b.is_empty() {
        return 1.0;
    }
    if a.is_empty() || b.is_empty() {
        return 0.0;
    }
    let match_window = (a.len().max(b.len()) / 2).saturating_sub(1);
    let mut b_matched = vec![false; b.len()];
    let mut matches = 0usize;
    let mut a_match_flags = vec![false; a.len()];
    for (i, ca) in a.iter().enumerate() {
        let start = i.saturating_sub(match_window);
        let end = (i + match_window + 1).min(b.len());
        for j in start..end {
            if !b_matched[j] && b[j] == *ca {
                b_matched[j] = true;
                a_match_flags[i] = true;
                matches += 1;
                break;
            }
        }
    }
    if matches == 0 {
        return 0.0;
    }
    // count transpositions
    let matched_a: Vec<char> = a
        .iter()
        .enumerate()
        .filter(|(i, _)| a_match_flags[*i])
        .map(|(_, c)| *c)
        .collect();
    let matched_b: Vec<char> = b
        .iter()
        .enumerate()
        .filter(|(j, _)| b_matched[*j])
        .map(|(_, c)| *c)
        .collect();
    let transpositions = matched_a
        .iter()
        .zip(matched_b.iter())
        .filter(|(x, y)| x != y)
        .count()
        / 2;
    let m = matches as f64;
    (m / a.len() as f64 + m / b.len() as f64 + (m - transpositions as f64) / m) / 3.0
}

/// Jaro-Winkler similarity with the standard prefix scale of 0.1 and a maximum
/// prefix length of 4.
pub fn jaro_winkler_similarity(a: &str, b: &str) -> f64 {
    let jaro = jaro_similarity(a, b);
    let prefix = a
        .chars()
        .zip(b.chars())
        .take(4)
        .take_while(|(x, y)| x == y)
        .count() as f64;
    (jaro + prefix * 0.1 * (1.0 - jaro)).min(1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn levenshtein_known_values() {
        assert_eq!(levenshtein("kitten", "sitting"), 3);
        assert_eq!(levenshtein("flaw", "lawn"), 2);
        assert_eq!(levenshtein("", "abc"), 3);
        assert_eq!(levenshtein("abc", ""), 3);
        assert_eq!(levenshtein("same", "same"), 0);
        assert_eq!(levenshtein("iPod", "IPOD"), 3);
        assert_eq!(levenshtein("Berlin", "berlin"), 1);
    }

    #[test]
    fn levenshtein_handles_unicode() {
        assert_eq!(levenshtein("café", "cafe"), 1);
        assert_eq!(levenshtein("Universität", "Universitat"), 1);
    }

    #[test]
    fn levenshtein_handles_long_ascii() {
        // patterns above 64 bytes exercise the blocked kernel
        let a = "a".repeat(100);
        let b = format!("{}b", "a".repeat(99));
        assert_eq!(levenshtein(&a, &b), 1);
        let c = "abcdefghij".repeat(13); // 130 chars
        let d = "abcdefghij".repeat(13).replace("ghij", "gxij");
        assert_eq!(levenshtein(&c, &d), levenshtein_reference(&c, &d));
    }

    #[test]
    fn normalized_levenshtein_bounds() {
        assert_eq!(normalized_levenshtein("", ""), 0.0);
        assert_eq!(normalized_levenshtein("abc", "abc"), 0.0);
        assert_eq!(normalized_levenshtein("abc", "xyz"), 1.0);
        assert!((normalized_levenshtein("abcd", "abce") - 0.25).abs() < 1e-12);
    }

    #[test]
    fn jaro_known_values() {
        assert!((jaro_similarity("MARTHA", "MARHTA") - 0.944444).abs() < 1e-4);
        assert!((jaro_similarity("DIXON", "DICKSONX") - 0.766667).abs() < 1e-4);
        assert_eq!(jaro_similarity("", ""), 1.0);
        assert_eq!(jaro_similarity("a", ""), 0.0);
        assert_eq!(jaro_similarity("abc", "abc"), 1.0);
        assert_eq!(jaro_similarity("abc", "xyz"), 0.0);
    }

    #[test]
    fn jaro_winkler_known_values() {
        assert!((jaro_winkler_similarity("MARTHA", "MARHTA") - 0.961111).abs() < 1e-4);
        assert!((jaro_winkler_similarity("DWAYNE", "DUANE") - 0.84).abs() < 1e-2);
        assert_eq!(jaro_winkler_similarity("same", "same"), 1.0);
    }

    #[test]
    fn bounded_levenshtein_known_values() {
        assert_eq!(levenshtein_bounded("kitten", "sitting", 3), Some(3));
        assert_eq!(levenshtein_bounded("kitten", "sitting", 2), None);
        assert_eq!(levenshtein_bounded("same", "same", 0), Some(0));
        assert_eq!(levenshtein_bounded("", "abc", 3), Some(3));
        assert_eq!(levenshtein_bounded("", "abc", 2), None);
        assert_eq!(levenshtein_bounded("abc", "", 5), Some(3));
        assert_eq!(levenshtein_bounded("Berlin", "berlin", 1), Some(1));
        assert_eq!(levenshtein_bounded("a", "b", 0), None);
    }

    #[test]
    fn bounded_levenshtein_length_difference_short_circuits() {
        // strings whose lengths differ by more than the bound cannot match
        assert_eq!(levenshtein_bounded("ab", "abcdefgh", 3), None);
        assert_eq!(levenshtein_bounded("ab", "abcdefgh", 6), Some(6));
    }

    proptest! {
        #[test]
        fn levenshtein_is_symmetric(a in ".{0,20}", b in ".{0,20}") {
            prop_assert_eq!(levenshtein(&a, &b), levenshtein(&b, &a));
        }

        /// The bit-parallel kernel agrees with the DP oracle on ASCII inputs
        /// (single-word regime).
        #[test]
        fn bit_parallel_matches_oracle_short(a in "[ -~]{0,40}", b in "[ -~]{0,40}") {
            prop_assert_eq!(levenshtein(&a, &b), levenshtein_reference(&a, &b));
        }

        /// The blocked kernel agrees with the DP oracle above 64 bytes.
        #[test]
        fn bit_parallel_matches_oracle_blocked(a in "[ -~]{60,180}", b in "[ -~]{60,180}") {
            prop_assert_eq!(levenshtein(&a, &b), levenshtein_reference(&a, &b));
        }

        /// Dispatch (incl. the unicode fallback and empty strings) always
        /// agrees with the oracle.
        #[test]
        fn levenshtein_matches_oracle_any_input(a in ".{0,60}", b in ".{0,60}") {
            prop_assert_eq!(levenshtein(&a, &b), levenshtein_reference(&a, &b));
        }

        /// Parity with the naive implementation: for every bound, the bounded
        /// version returns exactly the naive distance when it is within the
        /// bound and `None` otherwise.
        #[test]
        fn bounded_levenshtein_matches_naive(a in ".{0,16}", b in ".{0,16}", bound in 0usize..20) {
            let naive = levenshtein_reference(&a, &b);
            let banded = levenshtein_bounded(&a, &b, bound);
            if naive <= bound {
                prop_assert_eq!(banded, Some(naive), "a={:?} b={:?} bound={}", a, b, bound);
            } else {
                prop_assert_eq!(banded, None, "a={:?} b={:?} bound={} naive={}", a, b, bound, naive);
            }
        }

        /// Same parity for the banded reference itself (the seed property).
        #[test]
        fn bounded_reference_matches_naive(a in ".{0,16}", b in ".{0,16}", bound in 0usize..20) {
            let naive = levenshtein_reference(&a, &b);
            let banded = levenshtein_bounded_reference(&a, &b, bound);
            if naive <= bound {
                prop_assert_eq!(banded, Some(naive));
            } else {
                prop_assert_eq!(banded, None);
            }
        }

        #[test]
        fn levenshtein_identity(a in ".{0,20}") {
            prop_assert_eq!(levenshtein(&a, &a), 0);
        }

        #[test]
        fn levenshtein_bounded_by_longer_string(a in ".{0,20}", b in ".{0,20}") {
            let d = levenshtein(&a, &b);
            prop_assert!(d <= a.chars().count().max(b.chars().count()));
            let diff = (a.chars().count() as i64 - b.chars().count() as i64).unsigned_abs() as usize;
            prop_assert!(d >= diff);
        }

        #[test]
        fn levenshtein_triangle_inequality(a in ".{0,12}", b in ".{0,12}", c in ".{0,12}") {
            prop_assert!(levenshtein(&a, &c) <= levenshtein(&a, &b) + levenshtein(&b, &c));
        }

        #[test]
        fn jaro_in_unit_interval_and_symmetric(a in ".{0,20}", b in ".{0,20}") {
            let s = jaro_similarity(&a, &b);
            prop_assert!((0.0..=1.0).contains(&s));
            prop_assert!((s - jaro_similarity(&b, &a)).abs() < 1e-12);
        }

        /// The byte fast path is bit-identical to the character reference.
        #[test]
        fn jaro_fast_path_matches_reference(a in "[ -~]{0,30}", b in "[ -~]{0,30}") {
            prop_assert_eq!(
                jaro_similarity(&a, &b).to_bits(),
                jaro_similarity_reference(&a, &b).to_bits()
            );
        }

        /// Dispatch (incl. the unicode fallback) is bit-identical to the
        /// reference on arbitrary inputs.
        #[test]
        fn jaro_matches_reference_any_input(a in ".{0,24}", b in ".{0,24}") {
            prop_assert_eq!(
                jaro_similarity(&a, &b).to_bits(),
                jaro_similarity_reference(&a, &b).to_bits()
            );
        }

        #[test]
        fn jaro_winkler_at_least_jaro(a in ".{0,20}", b in ".{0,20}") {
            let jw = jaro_winkler_similarity(&a, &b);
            prop_assert!((0.0..=1.0).contains(&jw));
            prop_assert!(jw + 1e-12 >= jaro_similarity(&a, &b));
        }
    }
}
