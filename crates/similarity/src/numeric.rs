//! Numeric distance: the absolute difference of two parsed numbers.

/// Extracts the first parseable floating point number from a string.
///
/// Values in messy data sets often embed units ("42 km") or labels
/// ("pop: 3,500,000"); this parser strips everything except digits, sign,
/// decimal point and exponent characters from the first numeric run.
pub fn parse_number(value: &str) -> Option<f64> {
    let trimmed = value.trim();
    if let Ok(v) = trimmed.parse::<f64>() {
        return Some(v);
    }
    // fall back to scanning for the first number-looking run, walking the
    // char iterator directly (no per-call buffer)
    let start = trimmed
        .char_indices()
        .find(|(_, c)| c.is_ascii_digit() || *c == '-' || *c == '+')
        .map(|(i, _)| i)?;
    let mut end = start;
    let mut seen_dot = false;
    let mut first = true;
    for (offset, c) in trimmed[start..].char_indices() {
        let at = start + offset;
        if c.is_ascii_digit() || (first && (c == '-' || c == '+')) {
            end = at + c.len_utf8();
        } else if c == '.' && !seen_dot {
            seen_dot = true;
            end = at + c.len_utf8();
        } else if c == ',' {
            // thousands separator: skip it but keep scanning
        } else {
            break;
        }
        first = false;
    }
    let run = &trimmed[start..end];
    if !run.contains(',') {
        return run.parse::<f64>().ok();
    }
    // strip interior thousands separators into a stack buffer; numbers with
    // more than 64 significant bytes don't occur in practice, but fall back
    // to an owned string rather than truncating if they do
    let mut buf = [0u8; 64];
    let mut len = 0usize;
    for &byte in run.as_bytes() {
        if byte == b',' {
            continue;
        }
        if len == buf.len() {
            let candidate: String = run.chars().filter(|c| *c != ',').collect();
            return candidate.parse::<f64>().ok();
        }
        buf[len] = byte;
        len += 1;
    }
    std::str::from_utf8(&buf[..len]).ok()?.parse::<f64>().ok()
}

/// The numeric difference `|a − b|` of Table 2.  Unparseable values yield an
/// infinite distance (treated by the comparison operator as "no similarity").
pub fn numeric_distance(a: &str, b: &str) -> f64 {
    match (parse_number(a), parse_number(b)) {
        (Some(x), Some(y)) => (x - y).abs(),
        _ => f64::INFINITY,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn parses_plain_numbers() {
        assert_eq!(parse_number("42"), Some(42.0));
        assert_eq!(parse_number("-3.5"), Some(-3.5));
        assert_eq!(parse_number(" 7.25 "), Some(7.25));
        assert_eq!(parse_number("1e3"), Some(1000.0));
    }

    #[test]
    fn parses_embedded_numbers() {
        assert_eq!(parse_number("1998."), Some(1998.0));
        assert_eq!(parse_number("pop: 3,500,000 people"), Some(3_500_000.0));
        assert_eq!(parse_number("42 km"), Some(42.0));
    }

    #[test]
    fn rejects_non_numbers() {
        assert_eq!(parse_number("hello"), None);
        assert_eq!(parse_number(""), None);
        assert_eq!(parse_number("---"), None);
    }

    #[test]
    fn distance_is_absolute_difference() {
        assert_eq!(numeric_distance("10", "4"), 6.0);
        assert_eq!(numeric_distance("4", "10"), 6.0);
        assert_eq!(numeric_distance("3.5", "3.5"), 0.0);
        assert!(numeric_distance("ten", "4").is_infinite());
    }

    proptest! {
        #[test]
        fn distance_is_symmetric_and_nonnegative(a in -1e6f64..1e6, b in -1e6f64..1e6) {
            let d1 = numeric_distance(&a.to_string(), &b.to_string());
            let d2 = numeric_distance(&b.to_string(), &a.to_string());
            prop_assert!((d1 - d2).abs() < 1e-9);
            prop_assert!(d1 >= 0.0);
        }

        #[test]
        fn identical_numbers_have_zero_distance(a in -1e6f64..1e6) {
            prop_assert_eq!(numeric_distance(&a.to_string(), &a.to_string()), 0.0);
        }
    }
}
