//! Numeric distance: the absolute difference of two parsed numbers.

/// Extracts the first parseable floating point number from a string.
///
/// Values in messy data sets often embed units ("42 km") or labels
/// ("pop: 3,500,000"); this parser strips everything except digits, sign,
/// decimal point and exponent characters from the first numeric run.
pub fn parse_number(value: &str) -> Option<f64> {
    let trimmed = value.trim();
    if let Ok(v) = trimmed.parse::<f64>() {
        return Some(v);
    }
    // fall back to scanning for the first number-looking run
    let mut start = None;
    let bytes: Vec<char> = trimmed.chars().collect();
    for (i, c) in bytes.iter().enumerate() {
        if c.is_ascii_digit() || *c == '-' || *c == '+' {
            start = Some(i);
            break;
        }
    }
    let start = start?;
    let mut end = start;
    let mut seen_dot = false;
    for (i, c) in bytes.iter().enumerate().skip(start) {
        if c.is_ascii_digit() || (i == start && (*c == '-' || *c == '+')) {
            end = i + 1;
        } else if *c == '.' && !seen_dot {
            seen_dot = true;
            end = i + 1;
        } else if *c == ',' {
            // thousands separator: skip it but keep scanning
            continue;
        } else {
            break;
        }
    }
    let candidate: String = bytes[start..end].iter().filter(|c| **c != ',').collect();
    candidate.parse::<f64>().ok()
}

/// The numeric difference `|a − b|` of Table 2.  Unparseable values yield an
/// infinite distance (treated by the comparison operator as "no similarity").
pub fn numeric_distance(a: &str, b: &str) -> f64 {
    match (parse_number(a), parse_number(b)) {
        (Some(x), Some(y)) => (x - y).abs(),
        _ => f64::INFINITY,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn parses_plain_numbers() {
        assert_eq!(parse_number("42"), Some(42.0));
        assert_eq!(parse_number("-3.5"), Some(-3.5));
        assert_eq!(parse_number(" 7.25 "), Some(7.25));
        assert_eq!(parse_number("1e3"), Some(1000.0));
    }

    #[test]
    fn parses_embedded_numbers() {
        assert_eq!(parse_number("1998."), Some(1998.0));
        assert_eq!(parse_number("pop: 3,500,000 people"), Some(3_500_000.0));
        assert_eq!(parse_number("42 km"), Some(42.0));
    }

    #[test]
    fn rejects_non_numbers() {
        assert_eq!(parse_number("hello"), None);
        assert_eq!(parse_number(""), None);
        assert_eq!(parse_number("---"), None);
    }

    #[test]
    fn distance_is_absolute_difference() {
        assert_eq!(numeric_distance("10", "4"), 6.0);
        assert_eq!(numeric_distance("4", "10"), 6.0);
        assert_eq!(numeric_distance("3.5", "3.5"), 0.0);
        assert!(numeric_distance("ten", "4").is_infinite());
    }

    proptest! {
        #[test]
        fn distance_is_symmetric_and_nonnegative(a in -1e6f64..1e6, b in -1e6f64..1e6) {
            let d1 = numeric_distance(&a.to_string(), &b.to_string());
            let d2 = numeric_distance(&b.to_string(), &a.to_string());
            prop_assert!((d1 - d2).abs() < 1e-9);
            prop_assert!(d1 >= 0.0);
        }

        #[test]
        fn identical_numbers_have_zero_distance(a in -1e6f64..1e6) {
            prop_assert_eq!(numeric_distance(&a.to_string(), &a.to_string()), 0.0);
        }
    }
}
