//! Per-worker scratch buffers for the similarity kernels.
//!
//! Every hot kernel (bit-parallel Levenshtein, Jaro match flags, the blocked
//! Myers vectors) needs a handful of working buffers.  Allocating them per
//! call dominated the kernel cost in the seed implementation; instead each
//! worker thread owns one [`SimScratch`] that the kernels borrow for the
//! duration of a single call.  Buffers only ever grow, so a warmed-up worker
//! performs zero heap allocations per pair evaluation (gated by the
//! counting-allocator check in `bench_eval`).
//!
//! The `peq` table is the only buffer with a non-trivial reset discipline:
//! clearing all 256 entries per call would cost more than a short kernel
//! run, so kernels set only the bytes of their pattern and clear exactly
//! those bytes before returning.

use std::cell::RefCell;

/// Reusable working memory for the string kernels.  One per worker thread,
/// accessed through [`with_scratch`].
#[derive(Debug)]
pub struct SimScratch {
    /// Myers pattern-match bitvectors, single-word kernel: `peq[c]` has bit
    /// `i` set iff `pattern[i] == c`.  Must be all-zero between calls (the
    /// kernels clear the bytes they touched).
    pub(crate) peq: Box<[u64; 256]>,
    /// Myers pattern-match bitvectors, blocked kernel: `peq_blocks[c * blocks
    /// + j]` is the `Eq` word of block `j`.  Same all-zero-between-calls
    /// discipline as `peq`.
    pub(crate) peq_blocks: Vec<u64>,
    /// Blocked Myers vertical positive/negative delta vectors.
    pub(crate) pv: Vec<u64>,
    pub(crate) mv: Vec<u64>,
    /// Jaro match flags for both sides.
    pub(crate) flags_a: Vec<bool>,
    pub(crate) flags_b: Vec<bool>,
}

impl SimScratch {
    fn new() -> Self {
        SimScratch {
            peq: Box::new([0u64; 256]),
            peq_blocks: Vec::new(),
            pv: Vec::new(),
            mv: Vec::new(),
            flags_a: Vec::new(),
            flags_b: Vec::new(),
        }
    }
}

thread_local! {
    static SCRATCH: RefCell<SimScratch> = RefCell::new(SimScratch::new());
}

/// Runs `f` with this thread's kernel scratch.  Kernels never nest (no
/// kernel calls another kernel while holding the scratch), so the borrow is
/// always available.
pub(crate) fn with_scratch<R>(f: impl FnOnce(&mut SimScratch) -> R) -> R {
    SCRATCH.with(|cell| f(&mut cell.borrow_mut()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scratch_is_reusable() {
        with_scratch(|s| {
            s.pv.resize(4, !0);
            s.flags_a.resize(8, false);
        });
        with_scratch(|s| {
            assert_eq!(s.pv.len(), 4);
            assert_eq!(s.flags_a.len(), 8);
        });
    }
}
