//! Geographic distance between two coordinate values.
//!
//! Values are parsed from the formats commonly found in Linked Data:
//! `"52.52 13.40"`, `"52.52,13.40"` and WKT points `"POINT(13.40 52.52)"`
//! (note that WKT uses longitude-first order).  The distance is the haversine
//! great-circle distance in kilometres.

/// Mean earth radius in kilometres.
const EARTH_RADIUS_KM: f64 = 6371.0;

/// Parses a coordinate value into `(latitude, longitude)` degrees.
pub fn parse_point(value: &str) -> Option<(f64, f64)> {
    let trimmed = value.trim();
    let upper = trimmed.to_uppercase();
    if let Some(rest) = upper.strip_prefix("POINT") {
        let inner = rest.trim().trim_start_matches('(').trim_end_matches(')');
        let original_inner = &trimmed[trimmed.find('(')? + 1..trimmed.rfind(')')?];
        let _ = inner;
        let parts: Vec<&str> = original_inner.split_whitespace().collect();
        if parts.len() == 2 {
            let lon = parts[0].parse::<f64>().ok()?;
            let lat = parts[1].parse::<f64>().ok()?;
            return validate(lat, lon);
        }
        return None;
    }
    let parts: Vec<&str> = trimmed
        .split(|c: char| c == ',' || c.is_whitespace())
        .filter(|s| !s.is_empty())
        .collect();
    if parts.len() == 2 {
        let lat = parts[0].parse::<f64>().ok()?;
        let lon = parts[1].parse::<f64>().ok()?;
        return validate(lat, lon);
    }
    None
}

fn validate(lat: f64, lon: f64) -> Option<(f64, f64)> {
    if (-90.0..=90.0).contains(&lat) && (-180.0..=180.0).contains(&lon) {
        Some((lat, lon))
    } else {
        None
    }
}

/// Haversine great-circle distance in kilometres between two coordinate pairs.
pub fn haversine_km(a: (f64, f64), b: (f64, f64)) -> f64 {
    let (lat1, lon1) = (a.0.to_radians(), a.1.to_radians());
    let (lat2, lon2) = (b.0.to_radians(), b.1.to_radians());
    let dlat = lat2 - lat1;
    let dlon = lon2 - lon1;
    let h = (dlat / 2.0).sin().powi(2) + lat1.cos() * lat2.cos() * (dlon / 2.0).sin().powi(2);
    2.0 * EARTH_RADIUS_KM * h.sqrt().min(1.0).asin()
}

/// Geographic distance in kilometres between two coordinate strings.
/// Unparseable values yield an infinite distance.
pub fn geographic_distance(a: &str, b: &str) -> f64 {
    match (parse_point(a), parse_point(b)) {
        (Some(pa), Some(pb)) => haversine_km(pa, pb),
        _ => f64::INFINITY,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn parses_space_and_comma_separated() {
        assert_eq!(parse_point("52.52 13.40"), Some((52.52, 13.40)));
        assert_eq!(parse_point("52.52,13.40"), Some((52.52, 13.40)));
        assert_eq!(parse_point(" 52.52 , 13.40 "), Some((52.52, 13.40)));
    }

    #[test]
    fn parses_wkt_points_lon_first() {
        assert_eq!(parse_point("POINT(13.40 52.52)"), Some((52.52, 13.40)));
        assert_eq!(parse_point("Point (13.40 52.52)"), Some((52.52, 13.40)));
    }

    #[test]
    fn rejects_invalid_coordinates() {
        assert_eq!(parse_point("abc"), None);
        assert_eq!(parse_point("120.0 200.0"), None);
        assert_eq!(parse_point("1 2 3"), None);
        assert_eq!(parse_point(""), None);
    }

    #[test]
    fn berlin_to_paris_is_about_878_km() {
        let d = geographic_distance("52.5200 13.4050", "48.8566 2.3522");
        assert!((d - 878.0).abs() < 10.0, "got {d}");
    }

    #[test]
    fn identical_points_have_zero_distance() {
        assert_eq!(geographic_distance("52.5 13.4", "52.5 13.4"), 0.0);
    }

    #[test]
    fn unparseable_points_are_infinite() {
        assert!(geographic_distance("nowhere", "52.5 13.4").is_infinite());
    }

    #[test]
    fn antipodal_distance_is_half_circumference() {
        let d = haversine_km((0.0, 0.0), (0.0, 180.0));
        assert!((d - std::f64::consts::PI * 6371.0).abs() < 1.0);
    }

    proptest! {
        #[test]
        fn haversine_is_symmetric_and_nonnegative(
            lat1 in -90.0f64..90.0, lon1 in -180.0f64..180.0,
            lat2 in -90.0f64..90.0, lon2 in -180.0f64..180.0,
        ) {
            let d1 = haversine_km((lat1, lon1), (lat2, lon2));
            let d2 = haversine_km((lat2, lon2), (lat1, lon1));
            prop_assert!(d1 >= 0.0);
            prop_assert!((d1 - d2).abs() < 1e-6);
            // no two points on earth are farther apart than half the circumference
            prop_assert!(d1 <= std::f64::consts::PI * 6371.0 + 1e-6);
        }

        #[test]
        fn parse_round_trip(lat in -89.0f64..89.0, lon in -179.0f64..179.0) {
            let text = format!("{lat} {lon}");
            let parsed = parse_point(&text).unwrap();
            prop_assert!((parsed.0 - lat).abs() < 1e-9);
            prop_assert!((parsed.1 - lon).abs() < 1e-9);
        }
    }
}
