//! MultiBlock key functions: overlap-guaranteed blocking per distance measure.
//!
//! Token blocking misses every pair whose values share no exact token —
//! Levenshtein pairs with a typo in a single-token value, numeric, date and
//! geographic comparisons, anything behind a transformation.  MultiBlock
//! (Isele, Jentzsch & Bizer, OM 2011) instead derives the index from the
//! *measure*: every [`DistanceFunction`] maps a value set to a set of
//! [`BlockKey`]s at a given distance bound with the contract
//!
//! > **Overlap guarantee.** If `distance(A, B) ≤ bound` (finite), then
//! > `block_keys(A, bound) ∩ block_keys(B, bound) ≠ ∅`.
//!
//! Candidate generation that only considers pairs sharing a key is therefore
//! *lossless by construction*: it can only add false candidates (which the
//! rule evaluation then rejects), never lose a true link.  Keys are 64-bit
//! hashes, so a hash collision merges two blocks — more candidates, never
//! fewer, which preserves the guarantee.
//!
//! Per-measure schemes (the lossless-by-construction arguments are spelled
//! out in DESIGN.md, "Candidate generation"):
//!
//! * **Levenshtein** — an exact whole-value key when the edit budget
//!   `d = ⌊bound⌋` is 0 (integer distances below 1 require equality);
//!   otherwise positional padded q-grams (q shrinks as the budget grows)
//!   with position buckets of width `d + 1` emitted with ±1 neighbour
//!   overlap, plus a shared short-string key for values short enough that
//!   `d` edits could destroy every gram (pigeonhole: `d` edits destroy at
//!   most `q·d` of the `|s| + q − 1` padded grams).
//! * **Jaro / Jaro-Winkler** — a match-window-aware scheme for tight bounds
//!   (see [`jaro_keys`]): a Jaro distance `d` forces the matched fraction of
//!   *each* string to be at least `f = 1 − 3d` (each of the three Jaro terms
//!   is at most 1), which in turn bounds the length ratio (`min ≥ f·max`,
//!   keyed as log-scale length bands), confines the first matched character
//!   to a prefix of each string, and confines its partner to a window-shifted
//!   prefix of the other (keyed as bounded-position prefix characters).
//!   Looser bounds fall back to plain per-character keys (a similarity above
//!   zero requires at least one common character); `bound ≥ 1` admits every
//!   pair (not prunable).
//! * **Jaccard / Dice / Equality** — one key per distinct value (set
//!   element); a distance below 1 requires a shared element.
//! * **Numeric / Date** — interval buckets of width `bound` with ±1
//!   neighbour overlap (two values within `bound` sit at most one bucket
//!   apart; the extra neighbour absorbs floating-point rounding).
//! * **Geographic** — the point is embedded on the sphere in 3-D (chord
//!   length ≤ arc length, so a haversine bound is also a chord bound) and
//!   bucketed per axis with width `bound`, emitting the 3³ neighbour cells.

use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};

use crate::date::parse_date;
use crate::geo::parse_point;
use crate::numeric::parse_number;
use crate::DistanceFunction;

/// An opaque block key.  Keys only support equality: two value sets may end
/// up in a common block, and pairs sharing no block are pruned.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BlockKey(u64);

impl BlockKey {
    /// The raw 64-bit key (stable within a process run).
    pub fn raw(&self) -> u64 {
        self.0
    }

    /// Rebuilds a key from its raw 64-bit form — the snapshot-restore path.
    /// Only meaningful for values produced by [`BlockKey::raw`] under the
    /// same key-derivation code (snapshots carry a format version for this).
    pub fn from_raw(raw: u64) -> Self {
        BlockKey(raw)
    }
}

/// Builds a key from hashable parts, namespaced by a per-scheme tag so e.g.
/// a Levenshtein bigram never collides with an equality value key by
/// construction (only by 64-bit hash collision, which merely merges blocks).
fn key<H: Hash>(tag: u8, parts: H) -> BlockKey {
    let mut hasher = DefaultHasher::new();
    tag.hash(&mut hasher);
    parts.hash(&mut hasher);
    BlockKey(hasher.finish())
}

const TAG_LEVENSHTEIN: u8 = 1;
const TAG_LEVENSHTEIN_SHORT: u8 = 2;
const TAG_LEVENSHTEIN_EXACT: u8 = 12;
const TAG_CHARACTER: u8 = 3;
const TAG_ELEMENT: u8 = 4;
const TAG_EQUALITY: u8 = 5;
const TAG_NUMERIC: u8 = 6;
const TAG_NUMERIC_EXACT: u8 = 7;
const TAG_DATE: u8 = 8;
const TAG_DATE_EXACT: u8 = 9;
const TAG_GEO: u8 = 10;
const TAG_GEO_EXACT: u8 = 11;
const TAG_JARO_WINDOW: u8 = 13;
const TAG_JARO_EXACT: u8 = 14;

/// Start/end sentinels used to pad values before q-gram extraction; chosen
/// from a Unicode noncharacter range so they cannot appear in real data (and
/// if they did, blocks would only merge).
const PAD_START: char = '\u{FDD0}';
const PAD_END: char = '\u{FDD1}';

/// Mean earth radius in kilometres (must match [`crate::geo`]).
const EARTH_RADIUS_KM: f64 = 6371.0;

impl DistanceFunction {
    /// Returns `true` if this measure can prune candidate pairs at the given
    /// distance bound.  Measures whose distance is capped at 1 (Jaccard,
    /// Dice, Equality, Jaro, Jaro-Winkler) admit *every* pair once the bound
    /// reaches 1, and no finite key set can rule anything out; callers must
    /// treat such comparisons as matching all pairs.
    pub fn can_prune(&self, bound: f64) -> bool {
        if !bound.is_finite() {
            return false;
        }
        match self {
            DistanceFunction::Jaccard
            | DistanceFunction::Dice
            | DistanceFunction::Equality
            | DistanceFunction::Jaro
            | DistanceFunction::JaroWinkler => bound < 1.0,
            DistanceFunction::Levenshtein
            | DistanceFunction::Numeric
            | DistanceFunction::Geographic
            | DistanceFunction::Date => true,
        }
    }

    /// Computes the block keys of a value set at a distance bound, appending
    /// them (sorted, deduplicated) to `keys`.
    ///
    /// Must only be called when [`DistanceFunction::can_prune`] holds for the
    /// bound.  An empty result means no value of the set can be within the
    /// bound of anything (empty value set, or nothing parseable for the
    /// numeric/date/geographic measures) — such entities are never candidates
    /// through this comparison, which is exactly the evaluation semantics
    /// (an empty value set yields similarity 0).
    pub fn block_keys_into(&self, values: &[String], bound: f64, keys: &mut Vec<BlockKey>) {
        keys.clear();
        // Distances at exactly the bound must share a key; inflate the bound
        // by one part in 10⁹ so bucket arithmetic on the boundary cannot be
        // tipped over by floating-point rounding.
        let bound = inflate(bound.max(0.0));
        match self {
            DistanceFunction::Levenshtein => levenshtein_keys(values, bound, keys),
            DistanceFunction::Jaro => jaro_keys(values, bound, 1.0 - 3.0 * bound, keys),
            // Winkler only boosts: sim_w ≤ sim_j + 0.4·(1 − sim_j), so a
            // required sim_w ≥ s implies sim_j ≥ (s − 0.4)/0.6 and the Jaro
            // matched fraction becomes f = 3·sim_j − 2 = 5s − 4 = 1 − 5·bound
            DistanceFunction::JaroWinkler => jaro_keys(values, bound, 1.0 - 5.0 * bound, keys),
            DistanceFunction::Jaccard | DistanceFunction::Dice => {
                element_keys(TAG_ELEMENT, values, keys)
            }
            DistanceFunction::Equality => element_keys(TAG_EQUALITY, values, keys),
            DistanceFunction::Numeric => numeric_keys(values, bound, keys),
            DistanceFunction::Date => date_keys(values, bound, keys),
            DistanceFunction::Geographic => geographic_keys(values, bound, keys),
        }
        keys.sort_unstable();
        keys.dedup();
    }

    /// Allocating convenience wrapper around
    /// [`DistanceFunction::block_keys_into`].
    pub fn block_keys(&self, values: &[String], bound: f64) -> Vec<BlockKey> {
        let mut keys = Vec::new();
        self.block_keys_into(values, bound, &mut keys);
        keys
    }

    /// The canonical *bound bucket* of this measure at a distance bound: two
    /// bounds in the same bucket are **guaranteed** to produce identical
    /// [`DistanceFunction::block_keys_into`] output for every value set, so a
    /// leaf index built at one bound can be shared by any comparison whose
    /// bound falls into the same bucket (the key of
    /// `SharedLeafIndexes` in `linkdisc-matching`).
    ///
    /// The bucket is as coarse as each key scheme allows:
    ///
    /// * **Levenshtein** keys depend only on the integer edit budget
    ///   `⌊bound⌋` (it selects the q-gram length, the short-value cutoff and
    ///   the position-bucket width), so the budget *is* the bucket — bounds
    ///   1.2 and 1.8 share one leaf index.
    /// * **Jaccard / Dice / Equality** keys ignore the bound entirely (one
    ///   key per set element); every prunable bound shares one bucket.
    /// * **Jaro / Jaro-Winkler** collapse to one bucket across the whole
    ///   loose-bound regime (the per-character fallback ignores the bound);
    ///   tight bounds key continuously through the matched fraction.
    /// * **Numeric / Date / Geographic** buckets are continuous in the bound
    ///   (it is the interval/cell width), so only bit-equal bounds share.
    ///
    /// Callers must only consult the bucket for bounds where
    /// [`DistanceFunction::can_prune`] holds.
    pub fn key_bound_bucket(&self, bound: f64) -> u64 {
        // mirror the bound normalisation of `block_keys_into` exactly
        let bound = inflate(bound.max(0.0));
        match self {
            DistanceFunction::Levenshtein => bound.min(1e9).floor() as u64,
            DistanceFunction::Jaccard | DistanceFunction::Dice | DistanceFunction::Equality => {
                BUCKET_UNIFORM
            }
            DistanceFunction::Jaro => jaro_bucket(bound, 1.0 - 3.0 * bound),
            DistanceFunction::JaroWinkler => jaro_bucket(bound, 1.0 - 5.0 * bound),
            DistanceFunction::Numeric | DistanceFunction::Date | DistanceFunction::Geographic => {
                if bound == 0.0 {
                    BUCKET_EXACT
                } else {
                    bound.to_bits()
                }
            }
        }
    }
}

/// Bound bucket of the exact-match schemes (`bound == 0`).  Cannot collide
/// with `f64::to_bits` of a finite bound (the all-ones pattern is a NaN).
const BUCKET_EXACT: u64 = u64::MAX;
/// Bound bucket of bound-independent key schemes (also a NaN bit pattern).
const BUCKET_UNIFORM: u64 = u64::MAX - 1;

/// Bound bucket of the Jaro family: exact keys at bound 0, the
/// bound-independent character fallback once the matched fraction is vacuous,
/// and the continuous window regime in between (keys depend on the fraction,
/// which is linear in the bound — bucket by its bits).
fn jaro_bucket(bound: f64, fraction: f64) -> u64 {
    if bound == 0.0 {
        BUCKET_EXACT
    } else if fraction <= 0.0 {
        BUCKET_UNIFORM
    } else {
        // `jaro_keys` caps the fraction at 0.98, so everything above the cap
        // keys identically
        fraction.min(0.98).to_bits()
    }
}

/// Inflates a bound by a relative epsilon (and keeps 0 exact: non-negative
/// distances at bound 0 mean "exactly equal", where bucket arithmetic is
/// already exact).
fn inflate(bound: f64) -> f64 {
    bound * (1.0 + 1e-9)
}

/// Levenshtein: positional padded q-grams + short-value fallback key, with
/// the q-gram length adapted to the edit budget `d = ⌊bound⌋`.
///
/// * `d = 0` — the distance is an integer, so a bound below 1 admits only
///   *identical* strings: one exact whole-value key (maximally selective).
/// * `d ≥ 1` — values are padded with `q − 1` sentinels on each side, giving
///   `|s| + q − 1` positional q-grams.  Each of the `e ≤ d` edits destroys
///   at most `q` grams and shifts survivors by at most `e ≤ d` positions, so
///   whenever `|s| + q − 1 > q·d` for either value, a shared gram survives
///   within one bucket (width `d + 1`) of its original position and the ±1
///   neighbour emission yields a common `(gram, bucket)` key.  Values short
///   enough that every gram could be destroyed (`|s| ≤ q·(d − 1) + 1`)
///   additionally emit a shared short-value key.
///
/// Small budgets use longer grams (q = 6 at d = 1, q = 3 at d = 2, q = 2
/// beyond): the guarantee only needs `|s| > q·(d − 1) + 1`, and longer grams
/// are exponentially more selective against unrelated values.
fn levenshtein_keys(values: &[String], bound: f64, keys: &mut Vec<BlockKey>) {
    let budget = bound.min(1e9).floor() as usize;
    if budget == 0 {
        for value in values {
            keys.push(key(TAG_LEVENSHTEIN_EXACT, value.as_str()));
        }
        return;
    }
    let q = match budget {
        1 => 6,
        2 => 3,
        _ => 2,
    };
    let short_cutoff = q * (budget - 1) + 1;
    let bucket_width = (budget + 1) as i64;
    let mut padded: Vec<char> = Vec::new();
    for value in values {
        padded.clear();
        padded.extend(std::iter::repeat_n(PAD_START, q - 1));
        padded.extend(value.chars());
        if padded.len() - (q - 1) <= short_cutoff {
            keys.push(key(TAG_LEVENSHTEIN_SHORT, budget));
        }
        padded.extend(std::iter::repeat_n(PAD_END, q - 1));
        for (position, gram) in padded.windows(q).enumerate() {
            let bucket = position as i64 / bucket_width;
            for neighbour in bucket - 1..=bucket + 1 {
                keys.push(key(TAG_LEVENSHTEIN, (gram, neighbour)));
            }
        }
    }
}

/// Jaro / Jaro-Winkler: match-window-aware keys for tight bounds, falling
/// back to per-character keys when the bound is too loose to exploit the
/// window structure.
///
/// `fraction` is the minimum matched fraction `f` each admissible pair must
/// reach on *both* strings: a Jaro similarity `s = 1 − d` satisfies
/// `3s = m/|a| + m/|b| + (m − t/2)/m`, and since the latter two terms are at
/// most 1 each, `m/|a| ≥ 3s − 2` (symmetrically for `|b|`).  The caller
/// derives `f` from the bound per measure (Jaro: `1 − 3·bound`; Jaro-Winkler
/// through the prefix-boost inversion).  For `f ≤ 0` the matched-fraction
/// argument is vacuous and the old any-shared-character scheme applies.
///
/// For `f > 0` every admissible pair obeys three window facts, each keyed:
///
/// 1. **Length bands** — `m ≤ min(|a|, |b|)` with `m ≥ f·|a|` and
///    `m ≥ f·|b|` forces `min ≥ f·max`, i.e. the log-scale length classes
///    `⌊ln|s| / ln(1/f)⌋` differ by at most 1; every key embeds the class
///    (emitted for own class `ℓ` and `ℓ + 1`, so adjacent classes always
///    share one and classes ≥ 2 apart never do).
/// 2. **Prefix** — at most `(1 − f)·|a|` characters of `a` are unmatched, so
///    the *first* matched character of `a` sits at index `i ≤ (1 − f)·|a|`.
/// 3. **Bounded position** — its partner in `b` is the *same character* at
///    index `j ≤ i + w` with the Jaro window `w = ⌊max/2⌋ − 1`, and
///    `max ≤ |b|/f`, giving `j ≤ |b|·(1.5 − f)/f`.  Both `i` and `j` fall
///    below the shared cutoff `K(|s|) = ⌊(1.5 − f)/f · |s|⌋ + 1`
///    (`(1 − f) ≤ (1.5 − f)/f` for every `f < 1`), so emitting one key per
///    distinct character in the first `K` characters guarantees the shared
///    `(char, class)` key.  For `f ≤ 0.75` the cutoff covers the whole
///    string and only the length bands prune.
///
/// A `bound` of 0 admits only identical strings (Jaro similarity 1 forces
/// all characters matched in order), keyed exactly.  Two empty values have
/// distance 0 and share the empty-value key; an empty value is never within
/// a bound `< 1` of a non-empty one.
fn jaro_keys(values: &[String], bound: f64, fraction: f64, keys: &mut Vec<BlockKey>) {
    if bound == 0.0 {
        for value in values {
            keys.push(key(TAG_JARO_EXACT, value.as_str()));
        }
        return;
    }
    if fraction <= 0.0 {
        character_keys(values, keys);
        return;
    }
    // cap so the class base stays away from 1 (bound → 0 drives f → 1); a
    // smaller f only widens bands and cutoffs, which is always sound
    let fraction = fraction.min(0.98);
    // widen the class base by 1e-9 so a pair sitting exactly on the
    // `min = f·max` boundary cannot be split across 2 classes by rounding
    let class_base = (1.0 / fraction).ln() * (1.0 + 1e-9);
    let cutoff_ratio = (1.5 - fraction) / fraction;
    for value in values {
        let length = value.chars().count();
        if length == 0 {
            keys.push(key(TAG_CHARACTER, u32::MAX));
            continue;
        }
        let class = ((length as f64).ln() / class_base).floor() as i64;
        let cutoff = (((cutoff_ratio * length as f64) + 1e-6).floor() as usize + 1).min(length);
        for c in value.chars().take(cutoff) {
            keys.push(key(TAG_JARO_WINDOW, (c as u32, class)));
            keys.push(key(TAG_JARO_WINDOW, (c as u32, class + 1)));
        }
    }
}

/// Jaro / Jaro-Winkler fallback for loose bounds: one key per distinct
/// character.
///
/// Guarantee (`bound < 1`, checked by `can_prune`): a Jaro distance below 1
/// means the similarity is positive, which requires at least one matched —
/// hence common — character.  Jaro-Winkler similarity is zero whenever Jaro
/// similarity is zero (a common prefix character would have been a Jaro
/// match), so the same argument applies.  Two empty values have distance 0
/// and share the empty-value key.
fn character_keys(values: &[String], keys: &mut Vec<BlockKey>) {
    for value in values {
        if value.is_empty() {
            keys.push(key(TAG_CHARACTER, u32::MAX));
            continue;
        }
        for c in value.chars() {
            keys.push(key(TAG_CHARACTER, c as u32));
        }
    }
}

/// Jaccard / Dice / Equality: one key per distinct value-set element.
///
/// Guarantee (`bound < 1`): a Jaccard or Dice distance below 1 requires a
/// non-empty intersection of the two value sets; an equality distance of 0
/// requires a shared value outright.
fn element_keys(tag: u8, values: &[String], keys: &mut Vec<BlockKey>) {
    for value in values {
        keys.push(key(tag, value.as_str()));
    }
}

/// Shared interval-bucket scheme for one-dimensional measures: buckets of
/// width `bound` emitted with ±1 neighbour overlap.
///
/// Guarantee: `|x − y| ≤ bound` puts the two values at most one bucket
/// apart, so the ±1 emission always leaves a shared `(tag, bucket)` key —
/// with one bucket of slack for floating-point rounding of `x / bound`.
fn bucket_keys(tag: u8, x: f64, width: f64, keys: &mut Vec<BlockKey>) {
    // clamp to the exactly-representable integer range; saturated cells at
    // the extremes merge blocks, which is harmless
    let bucket = (x / width).floor().clamp(-9.0e15, 9.0e15) as i64;
    for neighbour in bucket - 1..=bucket + 1 {
        keys.push(key(tag, neighbour));
    }
}

/// Numeric: interval buckets over the parsed value (exact-value keys when
/// the bound is 0, i.e. only `|x − y| = 0` passes).
fn numeric_keys(values: &[String], bound: f64, keys: &mut Vec<BlockKey>) {
    for value in values {
        let Some(x) = parse_number(value) else {
            continue;
        };
        if !x.is_finite() {
            continue;
        }
        if bound == 0.0 {
            let canonical = if x == 0.0 { 0.0 } else { x };
            keys.push(key(TAG_NUMERIC_EXACT, canonical.to_bits()));
        } else {
            bucket_keys(TAG_NUMERIC, x, bound, keys);
        }
    }
}

/// Date: interval buckets over the day number (the date distance is measured
/// in days).
fn date_keys(values: &[String], bound: f64, keys: &mut Vec<BlockKey>) {
    for value in values {
        let Some(date) = parse_date(value) else {
            continue;
        };
        let days = date.days_from_epoch();
        if bound == 0.0 {
            keys.push(key(TAG_DATE_EXACT, days));
        } else {
            bucket_keys(TAG_DATE, days as f64, bound, keys);
        }
    }
}

/// Geographic: grid cells over the 3-D chord embedding of the point.
///
/// Guarantee: the straight-line (chord) distance between two points on the
/// sphere never exceeds their great-circle distance, so a haversine bound of
/// `b` km bounds every Cartesian coordinate difference by `b`.  Bucketing
/// each axis with width `b` puts the two points at most one cell apart per
/// axis, and emitting the 3³ neighbour cells guarantees a shared
/// `(cx, cy, cz)` cell.  The embedding also handles the antimeridian and the
/// poles natively (longitude ±180° maps to the same 3-D point).
fn geographic_keys(values: &[String], bound: f64, keys: &mut Vec<BlockKey>) {
    for value in values {
        let Some((lat, lon)) = parse_point(value) else {
            continue;
        };
        let (lat, lon) = (lat.to_radians(), lon.to_radians());
        let x = EARTH_RADIUS_KM * lat.cos() * lon.cos();
        let y = EARTH_RADIUS_KM * lat.cos() * lon.sin();
        let z = EARTH_RADIUS_KM * lat.sin();
        if bound == 0.0 {
            keys.push(key(TAG_GEO_EXACT, (x.to_bits(), y.to_bits(), z.to_bits())));
            continue;
        }
        let cell = |coordinate: f64| (coordinate / bound).floor().clamp(-9.0e15, 9.0e15) as i64;
        let (cx, cy, cz) = (cell(x), cell(y), cell(z));
        for nx in cx - 1..=cx + 1 {
            for ny in cy - 1..=cy + 1 {
                for nz in cz - 1..=cz + 1 {
                    keys.push(key(TAG_GEO, (nx, ny, nz)));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn vs(values: &[&str]) -> Vec<String> {
        values.iter().map(|s| s.to_string()).collect()
    }

    fn overlap(f: DistanceFunction, a: &[String], b: &[String], bound: f64) -> bool {
        let ka = f.block_keys(a, bound);
        let kb = f.block_keys(b, bound);
        ka.iter().any(|k| kb.binary_search(k).is_ok())
    }

    /// The shared contract: whenever the distance is within the bound, the
    /// key sets overlap.
    fn assert_guarantee(f: DistanceFunction, a: &[String], b: &[String], bound: f64) {
        let distance = f.evaluate(a, b);
        if distance.is_finite() && distance <= bound {
            assert!(
                overlap(f, a, b, bound),
                "{f} keys of {a:?} and {b:?} do not overlap at bound {bound} (distance {distance})"
            );
        }
    }

    #[test]
    fn bound_buckets_are_as_coarse_as_the_schemes_allow() {
        // Levenshtein: the integer edit budget is the bucket
        let lev = DistanceFunction::Levenshtein;
        assert_eq!(lev.key_bound_bucket(1.2), lev.key_bound_bucket(1.8));
        assert_ne!(lev.key_bound_bucket(1.8), lev.key_bound_bucket(2.2));
        assert_eq!(lev.key_bound_bucket(0.0), lev.key_bound_bucket(0.9));
        // set measures ignore the bound entirely
        let jac = DistanceFunction::Jaccard;
        assert_eq!(jac.key_bound_bucket(0.0), jac.key_bound_bucket(0.99));
        // Jaro: one bucket across the loose-bound character fallback,
        // distinct buckets in the tight window regime
        let jaro = DistanceFunction::Jaro;
        assert_eq!(jaro.key_bound_bucket(0.5), jaro.key_bound_bucket(0.9));
        assert_ne!(jaro.key_bound_bucket(0.1), jaro.key_bound_bucket(0.2));
        assert_ne!(jaro.key_bound_bucket(0.0), jaro.key_bound_bucket(0.1));
        // continuous width schemes share only on bit-equal bounds
        let num = DistanceFunction::Numeric;
        assert_eq!(num.key_bound_bucket(2.0), num.key_bound_bucket(2.0));
        assert_ne!(num.key_bound_bucket(2.0), num.key_bound_bucket(2.5));
        assert_ne!(num.key_bound_bucket(0.0), num.key_bound_bucket(2.0));
    }

    #[test]
    fn can_prune_reflects_measure_ranges() {
        for f in DistanceFunction::ALL {
            assert!(f.can_prune(0.0), "{f} must prune at bound 0");
            assert!(!f.can_prune(f64::INFINITY));
        }
        assert!(!DistanceFunction::Jaccard.can_prune(1.0));
        assert!(!DistanceFunction::Jaro.can_prune(1.5));
        assert!(DistanceFunction::Jaccard.can_prune(0.99));
        assert!(DistanceFunction::Levenshtein.can_prune(100.0));
        assert!(DistanceFunction::Geographic.can_prune(500.0));
    }

    #[test]
    fn empty_value_sets_produce_no_keys() {
        for f in DistanceFunction::ALL {
            assert!(f.block_keys(&[], 1.0).is_empty(), "{f}");
        }
    }

    #[test]
    fn unparseable_values_produce_no_keys() {
        for f in [
            DistanceFunction::Numeric,
            DistanceFunction::Date,
            DistanceFunction::Geographic,
        ] {
            assert!(f.block_keys(&vs(&["not parseable"]), 5.0).is_empty());
        }
    }

    #[test]
    fn levenshtein_single_token_typo_shares_a_key() {
        // the pair the token index provably misses: single-token values with
        // a typo share no exact token, but do share a bigram block
        assert!(overlap(
            DistanceFunction::Levenshtein,
            &vs(&["bistro"]),
            &vs(&["bstro"]),
            1.0
        ));
        assert!(overlap(
            DistanceFunction::Levenshtein,
            &vs(&["berlin"]),
            &vs(&["berlim"]),
            2.0
        ));
    }

    #[test]
    fn levenshtein_short_values_fall_back_to_the_short_key() {
        // "ab" vs "cd" are within edit distance 2 yet share no bigram
        assert_guarantee(
            DistanceFunction::Levenshtein,
            &vs(&["ab"]),
            &vs(&["cd"]),
            2.0,
        );
        assert_guarantee(DistanceFunction::Levenshtein, &vs(&[""]), &vs(&["x"]), 1.0);
    }

    #[test]
    fn numeric_boundary_distances_share_a_bucket() {
        assert_guarantee(DistanceFunction::Numeric, &vs(&["10"]), &vs(&["12"]), 2.0);
        assert_guarantee(DistanceFunction::Numeric, &vs(&["-1"]), &vs(&["1"]), 2.0);
        assert_guarantee(DistanceFunction::Numeric, &vs(&["5"]), &vs(&["5"]), 0.0);
        // beyond the bound pruning is *allowed* (not required) — far apart
        // values must not share a bucket
        assert!(!overlap(
            DistanceFunction::Numeric,
            &vs(&["0"]),
            &vs(&["100"]),
            2.0
        ));
    }

    #[test]
    fn date_buckets_respect_day_distance() {
        assert_guarantee(
            DistanceFunction::Date,
            &vs(&["2001-01-01"]),
            &vs(&["2001-02-01"]),
            40.0,
        );
        assert!(!overlap(
            DistanceFunction::Date,
            &vs(&["1960"]),
            &vs(&["2004"]),
            400.0
        ));
    }

    #[test]
    fn geographic_cells_cover_nearby_points() {
        // Berlin vs. Potsdam: ~27 km
        assert_guarantee(
            DistanceFunction::Geographic,
            &vs(&["52.5200 13.4050"]),
            &vs(&["52.3906 13.0645"]),
            50.0,
        );
        // antimeridian: same physical location, opposite longitude signs
        assert_guarantee(
            DistanceFunction::Geographic,
            &vs(&["10.0 180.0"]),
            &vs(&["10.0 -180.0"]),
            1.0,
        );
        assert!(!overlap(
            DistanceFunction::Geographic,
            &vs(&["52.52 13.40"]),
            &vs(&["48.85 2.35"]),
            50.0
        ));
    }

    #[test]
    fn equality_keys_are_exact_values() {
        assert!(overlap(
            DistanceFunction::Equality,
            &vs(&["x", "y"]),
            &vs(&["y"]),
            0.5
        ));
        assert!(!overlap(
            DistanceFunction::Equality,
            &vs(&["x"]),
            &vs(&["X"]),
            0.5
        ));
    }

    #[test]
    fn jaro_empty_values_share_the_empty_key() {
        assert_guarantee(DistanceFunction::Jaro, &vs(&[""]), &vs(&[""]), 0.5);
        // the window scheme keeps the empty-key behaviour at tight bounds
        assert_guarantee(DistanceFunction::Jaro, &vs(&[""]), &vs(&[""]), 0.1);
        assert_guarantee(DistanceFunction::JaroWinkler, &vs(&[""]), &vs(&[""]), 0.05);
    }

    #[test]
    fn jaro_window_scheme_keeps_close_pairs() {
        // transposition + substitution variants stay within tight bounds and
        // must share a window key
        for (a, b, bound) in [
            ("martha", "marhta", 0.1),
            ("dixon", "dicksonx", 0.25),
            ("restaurant", "restaurnat", 0.05),
            ("jellyfish", "smellyfish", 0.1),
        ] {
            assert_guarantee(DistanceFunction::Jaro, &vs(&[a]), &vs(&[b]), bound);
            assert_guarantee(DistanceFunction::JaroWinkler, &vs(&[a]), &vs(&[b]), bound);
        }
    }

    #[test]
    fn jaro_length_bands_prune_mismatched_lengths() {
        // "abcdefghij" and "ab" share characters, so the old per-character
        // scheme could never separate them; at bound 0.1 the matched
        // fraction must be 0.7, which their 5x length ratio cannot reach
        assert!(!overlap(
            DistanceFunction::Jaro,
            &vs(&["abcdefghij"]),
            &vs(&["ab"]),
            0.1
        ));
    }

    #[test]
    fn jaro_prefix_cutoff_prunes_late_only_overlap() {
        // equal length, but the only shared character sits at the last
        // position — far outside the admissible first-match prefix at a very
        // tight bound (distance here is 0.6)
        assert!(!overlap(
            DistanceFunction::Jaro,
            &vs(&["abcdefghij"]),
            &vs(&["zzzzzzzzzj"]),
            0.05
        ));
    }

    #[test]
    fn jaro_exact_bound_requires_identical_values() {
        assert_guarantee(
            DistanceFunction::Jaro,
            &vs(&["berlin"]),
            &vs(&["berlin"]),
            0.0,
        );
        assert!(!overlap(
            DistanceFunction::Jaro,
            &vs(&["berlin"]),
            &vs(&["berlim"]),
            0.0
        ));
    }

    #[test]
    fn multi_value_sets_take_the_union_of_keys() {
        // min-over-cross-product semantics: one close pair of values suffices
        assert_guarantee(
            DistanceFunction::Levenshtein,
            &vs(&["zzzzzz", "berlin"]),
            &vs(&["qqqqqq", "berlim"]),
            2.0,
        );
    }

    proptest! {
        /// Levenshtein guarantee over random pairs, including pairs generated
        /// by applying few edits (so close pairs are actually sampled).
        #[test]
        fn levenshtein_guarantee_holds(
            a in "[a-d]{0,14}",
            b in "[a-d]{0,14}",
            bound in 0.0f64..5.0,
        ) {
            assert_guarantee(DistanceFunction::Levenshtein, &[a], &[b], bound);
        }

        /// Close pairs specifically: mutate a base string with up to `d`
        /// character edits so the within-bound region is densely sampled
        /// across all q-gram regimes.
        #[test]
        fn levenshtein_guarantee_holds_for_edited_pairs(
            base in "[a-e]{1,14}",
            edits in proptest::collection::vec((0usize..14, "[a-e]"), 0..4),
            bound in 0.9f64..4.5,
        ) {
            let mut edited: Vec<char> = base.chars().collect();
            for (position, replacement) in &edits {
                let c = replacement.chars().next().expect("one char");
                match position {
                    p if p % 3 == 0 && !edited.is_empty() => {
                        let at = p % edited.len();
                        edited.remove(at);
                    }
                    p if p % 3 == 1 => {
                        let at = p % (edited.len() + 1);
                        edited.insert(at, c);
                    }
                    p => {
                        if !edited.is_empty() {
                            let at = p % edited.len();
                            edited[at] = c;
                        }
                    }
                }
            }
            let b: String = edited.into_iter().collect();
            assert_guarantee(DistanceFunction::Levenshtein, &[base], &[b], bound);
        }

        #[test]
        fn jaro_guarantee_holds(a in "[a-d]{0,8}", b in "[a-d]{0,8}", bound in 0.0f64..0.95) {
            assert_guarantee(
                DistanceFunction::Jaro,
                std::slice::from_ref(&a),
                std::slice::from_ref(&b),
                bound,
            );
            assert_guarantee(DistanceFunction::JaroWinkler, &[a], &[b], bound);
        }

        /// The window scheme specifically: close pairs produced by few edits
        /// on a shared base, probed across the tight-bound regime where the
        /// prefix/length-band keys are active (including the Jaro 1/3 and
        /// Jaro-Winkler 1/5 scheme switchovers).
        #[test]
        fn jaro_window_guarantee_holds_for_edited_pairs(
            base in "[a-e]{1,12}",
            edits in proptest::collection::vec((0usize..12, "[a-e]"), 0..3),
            bound in 0.0f64..0.4,
        ) {
            let mut edited: Vec<char> = base.chars().collect();
            for (position, replacement) in &edits {
                let c = replacement.chars().next().expect("one char");
                match position {
                    p if p % 3 == 0 && !edited.is_empty() => {
                        let at = p % edited.len();
                        edited.remove(at);
                    }
                    p if p % 3 == 1 => {
                        let at = p % (edited.len() + 1);
                        edited.insert(at, c);
                    }
                    p => {
                        if !edited.is_empty() {
                            let at = p % edited.len();
                            edited[at] = c;
                        }
                    }
                }
            }
            let b: String = edited.into_iter().collect();
            assert_guarantee(DistanceFunction::Jaro, std::slice::from_ref(&base), std::slice::from_ref(&b), bound);
            assert_guarantee(DistanceFunction::JaroWinkler, &[base], &[b], bound);
        }

        #[test]
        fn set_measure_guarantee_holds(
            a in proptest::collection::vec("[a-c]{1,2}", 0..5),
            b in proptest::collection::vec("[a-c]{1,2}", 0..5),
            bound in 0.0f64..0.95,
        ) {
            assert_guarantee(DistanceFunction::Jaccard, &a, &b, bound);
            assert_guarantee(DistanceFunction::Dice, &a, &b, bound);
            assert_guarantee(DistanceFunction::Equality, &a, &b, bound);
        }

        #[test]
        fn numeric_guarantee_holds(
            x in -1e4f64..1e4,
            delta in -10.0f64..10.0,
            bound in 0.0f64..10.0,
        ) {
            let a = vec![format!("{x}")];
            let b = vec![format!("{}", x + delta)];
            assert_guarantee(DistanceFunction::Numeric, &a, &b, bound);
        }

        #[test]
        fn date_guarantee_holds(
            y1 in 1950i32..2050, m1 in 1u32..13, d1 in 1u32..29,
            y2 in 1950i32..2050, m2 in 1u32..13, d2 in 1u32..29,
            bound in 0.0f64..5000.0,
        ) {
            let a = vec![format!("{y1:04}-{m1:02}-{d1:02}")];
            let b = vec![format!("{y2:04}-{m2:02}-{d2:02}")];
            assert_guarantee(DistanceFunction::Date, &a, &b, bound);
        }

        #[test]
        fn geographic_guarantee_holds(
            lat1 in -89.0f64..89.0, lon1 in -179.0f64..179.0,
            dlat in -0.5f64..0.5, dlon in -0.5f64..0.5,
            bound in 0.1f64..120.0,
        ) {
            let a = vec![format!("{lat1} {lon1}")];
            let b = vec![format!("{} {}", (lat1 + dlat).clamp(-90.0, 90.0),
                                          (lon1 + dlon).clamp(-180.0, 180.0))];
            assert_guarantee(DistanceFunction::Geographic, &a, &b, bound);
        }

        /// The bound-bucket contract: bounds in the same bucket produce
        /// identical key sets for every value set.
        #[test]
        fn same_bucket_bounds_produce_identical_keys(
            values in proptest::collection::vec("[a-e0-9 .]{0,10}", 0..4),
            a in 0.0f64..6.0,
            b in 0.0f64..6.0,
        ) {
            for f in DistanceFunction::ALL {
                if !f.can_prune(a) || !f.can_prune(b) {
                    continue;
                }
                if f.key_bound_bucket(a) == f.key_bound_bucket(b) {
                    prop_assert_eq!(
                        f.block_keys(&values, a),
                        f.block_keys(&values, b),
                        "{} buckets {} and {} collide but keys differ", f, a, b
                    );
                }
            }
        }

        /// Keys are deterministic and deduplicated.
        #[test]
        fn keys_are_sorted_and_stable(values in proptest::collection::vec(".{0,8}", 0..4)) {
            for f in DistanceFunction::ALL {
                let bound = f.default_threshold() / 2.0;
                if !f.can_prune(bound) {
                    continue;
                }
                let first = f.block_keys(&values, bound);
                let second = f.block_keys(&values, bound);
                prop_assert_eq!(&first, &second);
                let mut sorted = first.clone();
                sorted.sort_unstable();
                sorted.dedup();
                prop_assert_eq!(first, sorted);
            }
        }
    }
}
