//! Process-wide kernel dispatch counters.
//!
//! The string kernels dispatch between a bit-parallel/byte fast path (ASCII
//! inputs) and the character-level reference implementations (non-ASCII
//! inputs).  These counters record which path ran so benches and reports can
//! verify that real workloads actually hit the fast kernels — a dataset that
//! silently falls back to the DP oracle would otherwise look like a plain
//! regression.
//!
//! The counters are relaxed atomics: cheap enough for the hot path, and the
//! consumers (MatchingReport, IterationStats, bench gates) only need
//! monotone process-level deltas, not per-thread attribution.

use std::sync::atomic::{AtomicU64, Ordering};

static LEVENSHTEIN_BIT_PARALLEL: AtomicU64 = AtomicU64::new(0);
static LEVENSHTEIN_FALLBACK: AtomicU64 = AtomicU64::new(0);
static JARO_FAST: AtomicU64 = AtomicU64::new(0);
static JARO_FALLBACK: AtomicU64 = AtomicU64::new(0);
static TOKEN_ID_MERGE: AtomicU64 = AtomicU64::new(0);
static TOKEN_FALLBACK: AtomicU64 = AtomicU64::new(0);

#[inline]
pub(crate) fn count_levenshtein_bit_parallel() {
    LEVENSHTEIN_BIT_PARALLEL.fetch_add(1, Ordering::Relaxed);
}

#[inline]
pub(crate) fn count_levenshtein_fallback() {
    LEVENSHTEIN_FALLBACK.fetch_add(1, Ordering::Relaxed);
}

#[inline]
pub(crate) fn count_jaro_fast() {
    JARO_FAST.fetch_add(1, Ordering::Relaxed);
}

#[inline]
pub(crate) fn count_jaro_fallback() {
    JARO_FALLBACK.fetch_add(1, Ordering::Relaxed);
}

#[inline]
pub(crate) fn count_token_id_merge() {
    TOKEN_ID_MERGE.fetch_add(1, Ordering::Relaxed);
}

#[inline]
pub(crate) fn count_token_fallback() {
    TOKEN_FALLBACK.fetch_add(1, Ordering::Relaxed);
}

/// A snapshot of the cumulative kernel dispatch counters.  Monotone;
/// subtract two snapshots with [`KernelCounters::since`] to attribute counts
/// to a job or learning run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct KernelCounters {
    /// Levenshtein calls answered by the Myers bit-parallel kernel.
    pub levenshtein_bit_parallel: u64,
    /// Levenshtein calls that fell back to the character DP (non-ASCII).
    pub levenshtein_fallback: u64,
    /// Jaro/Jaro-Winkler calls answered by the byte fast path.
    pub jaro_fast: u64,
    /// Jaro/Jaro-Winkler calls that fell back to the character path.
    pub jaro_fallback: u64,
    /// Jaccard/Dice evaluations answered by the sorted-id merge kernel.
    pub token_id_merge: u64,
    /// Jaccard/Dice evaluations through the hash-set/string paths.
    pub token_fallback: u64,
}

impl KernelCounters {
    /// The current cumulative counters.
    pub fn snapshot() -> Self {
        KernelCounters {
            levenshtein_bit_parallel: LEVENSHTEIN_BIT_PARALLEL.load(Ordering::Relaxed),
            levenshtein_fallback: LEVENSHTEIN_FALLBACK.load(Ordering::Relaxed),
            jaro_fast: JARO_FAST.load(Ordering::Relaxed),
            jaro_fallback: JARO_FALLBACK.load(Ordering::Relaxed),
            token_id_merge: TOKEN_ID_MERGE.load(Ordering::Relaxed),
            token_fallback: TOKEN_FALLBACK.load(Ordering::Relaxed),
        }
    }

    /// The counts accumulated since an `earlier` snapshot.
    pub fn since(&self, earlier: &KernelCounters) -> KernelCounters {
        KernelCounters {
            levenshtein_bit_parallel: self
                .levenshtein_bit_parallel
                .saturating_sub(earlier.levenshtein_bit_parallel),
            levenshtein_fallback: self
                .levenshtein_fallback
                .saturating_sub(earlier.levenshtein_fallback),
            jaro_fast: self.jaro_fast.saturating_sub(earlier.jaro_fast),
            jaro_fallback: self.jaro_fallback.saturating_sub(earlier.jaro_fallback),
            token_id_merge: self.token_id_merge.saturating_sub(earlier.token_id_merge),
            token_fallback: self.token_fallback.saturating_sub(earlier.token_fallback),
        }
    }

    /// Total fast-path kernel invocations in this snapshot.
    pub fn fast_path_hits(&self) -> u64 {
        self.levenshtein_bit_parallel + self.jaro_fast + self.token_id_merge
    }

    /// Total fallback (reference-path) invocations in this snapshot.
    pub fn fallback_hits(&self) -> u64 {
        self.levenshtein_fallback + self.jaro_fallback + self.token_fallback
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn since_subtracts_fieldwise() {
        let earlier = KernelCounters {
            levenshtein_bit_parallel: 10,
            jaro_fast: 2,
            ..KernelCounters::default()
        };
        let later = KernelCounters {
            levenshtein_bit_parallel: 25,
            jaro_fast: 2,
            token_id_merge: 7,
            ..KernelCounters::default()
        };
        let delta = later.since(&earlier);
        assert_eq!(delta.levenshtein_bit_parallel, 15);
        assert_eq!(delta.jaro_fast, 0);
        assert_eq!(delta.token_id_merge, 7);
        assert_eq!(delta.fast_path_hits(), 22);
        assert_eq!(delta.fallback_hits(), 0);
    }

    #[test]
    fn counters_are_monotone() {
        let before = KernelCounters::snapshot();
        count_levenshtein_bit_parallel();
        count_token_id_merge();
        let after = KernelCounters::snapshot();
        let delta = after.since(&before);
        assert!(delta.levenshtein_bit_parallel >= 1);
        assert!(delta.token_id_merge >= 1);
    }
}
