//! Distance measures for linkage rules.
//!
//! A distance measure `f^d : Σ × Σ → R` (Definition 7 of the paper) compares
//! two *value sets*.  A comparison operator turns the distance into a
//! similarity via `1 − d/θ` if `d ≤ θ` and `0` otherwise.
//!
//! Table 2 of the paper lists the measures used in all experiments:
//! `levenshtein`, `jaccard`, `numeric`, `geographic` and `date`.  This crate
//! implements those five plus a handful of measures that the Carvalho-style
//! baseline and the examples use (`equality`, `jaro`, `jaroWinkler`, `dice`).
//!
//! Value-set semantics follow Silk: the distance of two value sets is the
//! *minimum* distance over the cross product of their values, and the distance
//! involving an empty value set is unmeasurable (`f64::INFINITY`), which makes
//! the comparison yield similarity `0`.

pub mod blocking;
pub mod date;
pub mod geo;
pub mod numeric;
pub mod scratch;
pub mod stats;
pub mod string;
pub mod token;

pub use blocking::BlockKey;
pub use date::date_distance;
pub use geo::{geographic_distance, parse_point};
pub use numeric::numeric_distance;
pub use stats::KernelCounters;
pub use string::{
    jaro_similarity, jaro_winkler_similarity, levenshtein, levenshtein_bounded,
    levenshtein_bounded_reference,
};
pub use token::{
    dice_distance, dice_distance_sets, dice_ids, jaccard_distance, jaccard_distance_sets,
    jaccard_ids,
};

/// The distance functions available to linkage rules.
///
/// The enum is the unit the genetic search recombines: *function crossover*
/// swaps one `DistanceFunction` for another, so keeping it a small `Copy`
/// value keeps crossover cheap.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum DistanceFunction {
    /// Character-level edit distance (Table 2: `levenshtein`).
    Levenshtein,
    /// Jaccard distance between the two value sets (Table 2: `jaccard`).
    Jaccard,
    /// Absolute numeric difference (Table 2: `numeric`).
    Numeric,
    /// Geographical distance in kilometres (Table 2: `geographic`; the paper
    /// reports metres — the unit change only rescales thresholds and is
    /// documented in DESIGN.md).
    Geographic,
    /// Distance between two dates in days (Table 2: `date`).
    Date,
    /// Exact equality: distance 0 if any value matches, 1 otherwise.
    Equality,
    /// Jaro distance (1 − Jaro similarity); used by the Carvalho baseline.
    Jaro,
    /// Jaro-Winkler distance (1 − Jaro-Winkler similarity).
    JaroWinkler,
    /// Dice coefficient distance over the value sets.
    Dice,
}

impl DistanceFunction {
    /// Every available distance function, in a stable order.
    pub const ALL: [DistanceFunction; 9] = [
        DistanceFunction::Levenshtein,
        DistanceFunction::Jaccard,
        DistanceFunction::Numeric,
        DistanceFunction::Geographic,
        DistanceFunction::Date,
        DistanceFunction::Equality,
        DistanceFunction::Jaro,
        DistanceFunction::JaroWinkler,
        DistanceFunction::Dice,
    ];

    /// The functions used in the paper's experiments (Table 2).
    pub const PAPER: [DistanceFunction; 5] = [
        DistanceFunction::Levenshtein,
        DistanceFunction::Jaccard,
        DistanceFunction::Numeric,
        DistanceFunction::Geographic,
        DistanceFunction::Date,
    ];

    /// The canonical name used by the rule DSL.
    pub fn name(&self) -> &'static str {
        match self {
            DistanceFunction::Levenshtein => "levenshtein",
            DistanceFunction::Jaccard => "jaccard",
            DistanceFunction::Numeric => "numeric",
            DistanceFunction::Geographic => "geographic",
            DistanceFunction::Date => "date",
            DistanceFunction::Equality => "equality",
            DistanceFunction::Jaro => "jaro",
            DistanceFunction::JaroWinkler => "jaroWinkler",
            DistanceFunction::Dice => "dice",
        }
    }

    /// Parses a DSL name back into a distance function.
    pub fn from_name(name: &str) -> Option<Self> {
        Self::ALL.iter().copied().find(|f| f.name() == name)
    }

    /// A sensible default threshold for this measure, used when random rules
    /// are generated (Section 5.1).  Thresholds are later refined by the
    /// threshold-crossover operator.
    pub fn default_threshold(&self) -> f64 {
        match self {
            DistanceFunction::Levenshtein => 2.0,
            DistanceFunction::Jaccard => 0.5,
            DistanceFunction::Numeric => 2.0,
            DistanceFunction::Geographic => 50.0,
            DistanceFunction::Date => 100.0,
            DistanceFunction::Equality => 0.5,
            DistanceFunction::Jaro => 0.4,
            DistanceFunction::JaroWinkler => 0.3,
            DistanceFunction::Dice => 0.5,
        }
    }

    /// The largest threshold the learner may assign to this measure; keeps
    /// threshold crossover within a meaningful range per measure.
    pub fn max_threshold(&self) -> f64 {
        match self {
            DistanceFunction::Levenshtein => 10.0,
            DistanceFunction::Jaccard => 1.0,
            DistanceFunction::Numeric => 1000.0,
            DistanceFunction::Geographic => 500.0,
            DistanceFunction::Date => 5000.0,
            DistanceFunction::Equality => 1.0,
            DistanceFunction::Jaro => 1.0,
            DistanceFunction::JaroWinkler => 1.0,
            DistanceFunction::Dice => 1.0,
        }
    }

    /// Computes the distance between two *single* values.
    pub fn distance_values(&self, a: &str, b: &str) -> f64 {
        match self {
            DistanceFunction::Levenshtein => string::levenshtein(a, b) as f64,
            DistanceFunction::Jaccard => token::jaccard_distance_values(a, b),
            DistanceFunction::Numeric => numeric::numeric_distance(a, b),
            DistanceFunction::Geographic => geo::geographic_distance(a, b),
            DistanceFunction::Date => date::date_distance(a, b),
            DistanceFunction::Equality => {
                if a == b {
                    0.0
                } else {
                    1.0
                }
            }
            DistanceFunction::Jaro => 1.0 - string::jaro_similarity(a, b),
            DistanceFunction::JaroWinkler => 1.0 - string::jaro_winkler_similarity(a, b),
            DistanceFunction::Dice => token::dice_distance_values(a, b),
        }
    }

    /// Computes the distance between two value sets.
    ///
    /// Set-level measures (`jaccard`, `dice`) operate on the whole value sets;
    /// all other measures return the minimum pairwise distance.  An empty
    /// value set on either side yields `f64::INFINITY`.
    pub fn evaluate(&self, a: &[String], b: &[String]) -> f64 {
        if a.is_empty() || b.is_empty() {
            return f64::INFINITY;
        }
        match self {
            DistanceFunction::Jaccard => token::jaccard_distance(a, b),
            DistanceFunction::Dice => token::dice_distance(a, b),
            _ => {
                let mut min = f64::INFINITY;
                for va in a {
                    for vb in b {
                        let d = self.distance_values(va, vb);
                        if d < min {
                            min = d;
                        }
                        if min == 0.0 {
                            return 0.0;
                        }
                    }
                }
                min
            }
        }
    }

    /// Converts a distance into the similarity used by comparison operators:
    /// `1 − d/θ` if `d ≤ θ`, `0` otherwise (Definition 7 of the paper).
    pub fn similarity(&self, a: &[String], b: &[String], threshold: f64) -> f64 {
        threshold_similarity(self.evaluate(a, b), threshold)
    }
}

impl std::fmt::Display for DistanceFunction {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// The `1 − d/θ` similarity of Definition 7, handling the degenerate
/// `θ = 0` case (exact match required).
pub fn threshold_similarity(distance: f64, threshold: f64) -> f64 {
    if !distance.is_finite() {
        return 0.0;
    }
    if threshold <= 0.0 {
        return if distance <= 0.0 { 1.0 } else { 0.0 };
    }
    if distance <= threshold {
        1.0 - distance / threshold
    } else {
        0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vs(values: &[&str]) -> Vec<String> {
        values.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn names_round_trip() {
        for f in DistanceFunction::ALL {
            assert_eq!(DistanceFunction::from_name(f.name()), Some(f));
        }
        assert_eq!(DistanceFunction::from_name("unknown"), None);
    }

    #[test]
    fn empty_value_sets_are_unmeasurable() {
        for f in DistanceFunction::ALL {
            assert!(f.evaluate(&[], &vs(&["x"])).is_infinite());
            assert!(f.evaluate(&vs(&["x"]), &[]).is_infinite());
            assert_eq!(f.similarity(&[], &vs(&["x"]), 1.0), 0.0);
        }
    }

    #[test]
    fn minimum_over_cross_product() {
        let a = vs(&["Berlin", "Munich"]);
        let b = vs(&["Muenchen", "munich"]);
        // closest pair is Munich/munich with edit distance 1
        assert_eq!(DistanceFunction::Levenshtein.evaluate(&a, &b), 1.0);
    }

    #[test]
    fn threshold_similarity_matches_definition() {
        assert_eq!(threshold_similarity(0.0, 2.0), 1.0);
        assert_eq!(threshold_similarity(1.0, 2.0), 0.5);
        assert_eq!(threshold_similarity(2.0, 2.0), 0.0);
        assert_eq!(threshold_similarity(3.0, 2.0), 0.0);
        assert_eq!(threshold_similarity(0.0, 0.0), 1.0);
        assert_eq!(threshold_similarity(0.5, 0.0), 0.0);
        assert_eq!(threshold_similarity(f64::INFINITY, 2.0), 0.0);
    }

    #[test]
    fn equality_distance() {
        assert_eq!(
            DistanceFunction::Equality.evaluate(&vs(&["a"]), &vs(&["a"])),
            0.0
        );
        assert_eq!(
            DistanceFunction::Equality.evaluate(&vs(&["a"]), &vs(&["b"])),
            1.0
        );
        assert_eq!(
            DistanceFunction::Equality.evaluate(&vs(&["a", "b"]), &vs(&["b"])),
            0.0
        );
    }

    #[test]
    fn similarity_is_always_in_unit_interval() {
        let pairs = [
            (vs(&["hello"]), vs(&["world"])),
            (vs(&["1.5"]), vs(&["42"])),
            (vs(&["2001-01-01"]), vs(&["2012-08-01"])),
            (vs(&["52.5 13.4"]), vs(&["48.9 2.35"])),
            (vs(&[]), vs(&["x"])),
        ];
        for f in DistanceFunction::ALL {
            for (a, b) in &pairs {
                for theta in [0.0, 0.5, 1.0, 10.0] {
                    let s = f.similarity(a, b, theta);
                    assert!((0.0..=1.0).contains(&s), "{f} yielded {s}");
                }
            }
        }
    }

    #[test]
    fn default_thresholds_are_within_max() {
        for f in DistanceFunction::ALL {
            assert!(f.default_threshold() <= f.max_threshold());
            assert!(f.default_threshold() > 0.0);
        }
    }
}
