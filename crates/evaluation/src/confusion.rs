//! Confusion matrices and the derived quality measures.

/// A binary confusion matrix over reference links.
///
/// Counts are computed against the provided reference links only, ignoring the
/// rest of the data set — exactly as the paper computes its fitness
/// (Section 5.2: "which are computed based on the provided reference links").
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ConfusionMatrix {
    /// Positive reference links classified as links.
    pub true_positives: usize,
    /// Negative reference links classified as non-links.
    pub true_negatives: usize,
    /// Negative reference links classified as links.
    pub false_positives: usize,
    /// Positive reference links classified as non-links.
    pub false_negatives: usize,
}

impl ConfusionMatrix {
    /// Creates a confusion matrix from raw counts.
    pub fn new(tp: usize, tn: usize, fp: usize, fn_: usize) -> Self {
        ConfusionMatrix {
            true_positives: tp,
            true_negatives: tn,
            false_positives: fp,
            false_negatives: fn_,
        }
    }

    /// Records the classification of one positive reference link.
    pub fn record_positive(&mut self, predicted_link: bool) {
        if predicted_link {
            self.true_positives += 1;
        } else {
            self.false_negatives += 1;
        }
    }

    /// Records the classification of one negative reference link.
    pub fn record_negative(&mut self, predicted_link: bool) {
        if predicted_link {
            self.false_positives += 1;
        } else {
            self.true_negatives += 1;
        }
    }

    /// Total number of classified pairs.
    pub fn total(&self) -> usize {
        self.true_positives + self.true_negatives + self.false_positives + self.false_negatives
    }

    /// Precision `tp / (tp + fp)`; `0` when nothing was predicted as a link.
    pub fn precision(&self) -> f64 {
        let denominator = self.true_positives + self.false_positives;
        if denominator == 0 {
            0.0
        } else {
            self.true_positives as f64 / denominator as f64
        }
    }

    /// Recall `tp / (tp + fn)`; `0` when there are no positive links.
    pub fn recall(&self) -> f64 {
        let denominator = self.true_positives + self.false_negatives;
        if denominator == 0 {
            0.0
        } else {
            self.true_positives as f64 / denominator as f64
        }
    }

    /// The F1 measure, the harmonic mean of precision and recall.
    pub fn f_measure(&self) -> f64 {
        let p = self.precision();
        let r = self.recall();
        if p + r == 0.0 {
            0.0
        } else {
            2.0 * p * r / (p + r)
        }
    }

    /// Accuracy `(tp + tn) / total`.
    pub fn accuracy(&self) -> f64 {
        let total = self.total();
        if total == 0 {
            0.0
        } else {
            (self.true_positives + self.true_negatives) as f64 / total as f64
        }
    }

    /// Matthews correlation coefficient (Section 5.2 of the paper):
    ///
    /// ```text
    ///            tp·tn − fp·fn
    /// MCC = ─────────────────────────────────────────────
    ///       √((tp+fp)(tp+fn)(tn+fp)(tn+fn))
    /// ```
    ///
    /// If any factor of the denominator is zero the MCC is defined as `0`
    /// (the conventional completion, also used by Silk).
    pub fn mcc(&self) -> f64 {
        let tp = self.true_positives as f64;
        let tn = self.true_negatives as f64;
        let fp = self.false_positives as f64;
        let fn_ = self.false_negatives as f64;
        let denominator = (tp + fp) * (tp + fn_) * (tn + fp) * (tn + fn_);
        if denominator == 0.0 {
            0.0
        } else {
            (tp * tn - fp * fn_) / denominator.sqrt()
        }
    }

    /// Merges two confusion matrices by summing their counts.
    pub fn merge(&self, other: &ConfusionMatrix) -> ConfusionMatrix {
        ConfusionMatrix {
            true_positives: self.true_positives + other.true_positives,
            true_negatives: self.true_negatives + other.true_negatives,
            false_positives: self.false_positives + other.false_positives,
            false_negatives: self.false_negatives + other.false_negatives,
        }
    }
}

impl std::fmt::Display for ConfusionMatrix {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "tp={} tn={} fp={} fn={} (F1={:.3}, MCC={:.3})",
            self.true_positives,
            self.true_negatives,
            self.false_positives,
            self.false_negatives,
            self.f_measure(),
            self.mcc()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn perfect_classifier() {
        let m = ConfusionMatrix::new(10, 10, 0, 0);
        assert_eq!(m.precision(), 1.0);
        assert_eq!(m.recall(), 1.0);
        assert_eq!(m.f_measure(), 1.0);
        assert_eq!(m.mcc(), 1.0);
        assert_eq!(m.accuracy(), 1.0);
    }

    #[test]
    fn inverted_classifier_has_negative_mcc() {
        let m = ConfusionMatrix::new(0, 0, 10, 10);
        assert_eq!(m.f_measure(), 0.0);
        assert_eq!(m.mcc(), -1.0);
    }

    #[test]
    fn random_classifier_has_zero_mcc() {
        let m = ConfusionMatrix::new(5, 5, 5, 5);
        assert!((m.mcc()).abs() < 1e-12);
        assert!((m.f_measure() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn known_values() {
        // tp=6, tn=3, fp=1, fn=2
        let m = ConfusionMatrix::new(6, 3, 1, 2);
        assert!((m.precision() - 6.0 / 7.0).abs() < 1e-12);
        assert!((m.recall() - 0.75).abs() < 1e-12);
        let expected_f1 = 2.0 * (6.0 / 7.0) * 0.75 / (6.0 / 7.0 + 0.75);
        assert!((m.f_measure() - expected_f1).abs() < 1e-12);
        let expected_mcc = (6.0 * 3.0 - 1.0 * 2.0) / ((7.0f64) * 8.0 * 4.0 * 5.0).sqrt();
        assert!((m.mcc() - expected_mcc).abs() < 1e-12);
    }

    #[test]
    fn degenerate_matrices_do_not_divide_by_zero() {
        assert_eq!(ConfusionMatrix::default().f_measure(), 0.0);
        assert_eq!(ConfusionMatrix::default().mcc(), 0.0);
        assert_eq!(ConfusionMatrix::default().accuracy(), 0.0);
        assert_eq!(ConfusionMatrix::new(0, 10, 0, 0).mcc(), 0.0);
        assert_eq!(ConfusionMatrix::new(10, 0, 0, 0).mcc(), 0.0);
    }

    #[test]
    fn record_and_merge() {
        let mut a = ConfusionMatrix::default();
        a.record_positive(true);
        a.record_positive(false);
        a.record_negative(true);
        a.record_negative(false);
        assert_eq!(a, ConfusionMatrix::new(1, 1, 1, 1));
        let merged = a.merge(&ConfusionMatrix::new(1, 0, 0, 0));
        assert_eq!(merged.true_positives, 2);
        assert_eq!(merged.total(), 5);
    }

    #[test]
    fn display_contains_counts() {
        let text = ConfusionMatrix::new(1, 2, 3, 4).to_string();
        assert!(text.contains("tp=1"));
        assert!(text.contains("fn=4"));
    }

    proptest! {
        #[test]
        fn mcc_is_bounded(tp in 0usize..200, tn in 0usize..200, fp in 0usize..200, fn_ in 0usize..200) {
            let m = ConfusionMatrix::new(tp, tn, fp, fn_);
            prop_assert!(m.mcc() >= -1.0 - 1e-12);
            prop_assert!(m.mcc() <= 1.0 + 1e-12);
            prop_assert!((0.0..=1.0).contains(&m.f_measure()));
            prop_assert!((0.0..=1.0).contains(&m.precision()));
            prop_assert!((0.0..=1.0).contains(&m.recall()));
            prop_assert!((0.0..=1.0).contains(&m.accuracy()));
        }

        #[test]
        fn merge_is_commutative(
            a in (0usize..50, 0usize..50, 0usize..50, 0usize..50),
            b in (0usize..50, 0usize..50, 0usize..50, 0usize..50),
        ) {
            let ma = ConfusionMatrix::new(a.0, a.1, a.2, a.3);
            let mb = ConfusionMatrix::new(b.0, b.1, b.2, b.3);
            prop_assert_eq!(ma.merge(&mb), mb.merge(&ma));
        }
    }
}
