//! Evaluation protocols: scoring rules against reference links and the
//! repeated 2-fold cross validation of Section 6.1.

use linkdisc_entity::{DataSource, ReferenceLinks, ResolvedReferenceLinks};
use linkdisc_rule::{CompiledRule, EvalStats, LinkageRule, ValueCache, LINK_THRESHOLD};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::confusion::ConfusionMatrix;
use crate::summary::Summary;

/// Scores a rule against already-resolved reference links by walking the
/// operator tree per pair.  This is the reference oracle; the learning loop
/// runs [`evaluate_compiled`] instead.
pub fn evaluate_rule(rule: &LinkageRule, links: &ResolvedReferenceLinks<'_>) -> ConfusionMatrix {
    let mut matrix = ConfusionMatrix::default();
    for pair in links.positive() {
        matrix.record_positive(rule.is_link(pair));
    }
    for pair in links.negative() {
        matrix.record_negative(rule.is_link(pair));
    }
    matrix
}

/// Scores a compiled evaluation plan against resolved reference links,
/// memoizing transformation outputs per entity in `cache`.  Produces exactly
/// the matrix of [`evaluate_rule`] on the original rule.
pub fn evaluate_compiled<'e>(
    compiled: &CompiledRule,
    links: &ResolvedReferenceLinks<'e>,
    cache: &ValueCache<'e>,
) -> ConfusionMatrix {
    let mut stats = EvalStats::default();
    evaluate_compiled_stats(compiled, links, cache, &mut stats)
}

/// [`evaluate_compiled`] accumulating short-circuit counters into `stats`.
///
/// Pairs run through the score-bounded evaluator against the link threshold:
/// only the classification is consumed here, and the bounded contract makes
/// `score ≥ threshold` agree bit-for-bit with exhaustive evaluation, so the
/// matrix is identical to [`evaluate_rule`]'s while most non-links stop at
/// their first decisive comparison.
pub fn evaluate_compiled_stats<'e>(
    compiled: &CompiledRule,
    links: &ResolvedReferenceLinks<'e>,
    cache: &ValueCache<'e>,
    stats: &mut EvalStats,
) -> ConfusionMatrix {
    let mut matrix = ConfusionMatrix::default();
    for pair in links.positive() {
        let score = compiled.evaluate_bounded_two_stats(
            pair.source,
            pair.target,
            cache,
            cache,
            LINK_THRESHOLD,
            stats,
        );
        matrix.record_positive(score >= LINK_THRESHOLD);
    }
    for pair in links.negative() {
        let score = compiled.evaluate_bounded_two_stats(
            pair.source,
            pair.target,
            cache,
            cache,
            LINK_THRESHOLD,
            stats,
        );
        matrix.record_negative(score >= LINK_THRESHOLD);
    }
    matrix
}

/// Scores a rule against reference links given as identifiers, resolving them
/// against the two data sources first.
pub fn evaluate_rule_on_links(
    rule: &LinkageRule,
    links: &ReferenceLinks,
    source: &DataSource,
    target: &DataSource,
) -> ConfusionMatrix {
    let resolved = ResolvedReferenceLinks::resolve(links, source, target);
    evaluate_rule(rule, &resolved)
}

/// The result of evaluating one learned rule on one fold.
#[derive(Debug, Clone)]
pub struct FoldResult {
    /// Quality on the training links.
    pub training: ConfusionMatrix,
    /// Quality on the held-out validation links.
    pub validation: ConfusionMatrix,
    /// Wall-clock seconds spent learning.
    pub seconds: f64,
    /// The rule that was learned on this fold.
    pub rule: LinkageRule,
}

/// Repeated k-fold cross validation (the paper uses 10 runs of 2 folds).
///
/// The learner is abstracted as a closure so the same protocol drives GenLink,
/// its ablated variants and the Carvalho-style baseline.
#[derive(Debug, Clone, Copy)]
pub struct CrossValidation {
    /// Number of folds (2 in the paper).
    pub folds: usize,
    /// Number of repetitions (10 in the paper).
    pub runs: usize,
    /// Base random seed; run `i` uses `seed + i`.
    pub seed: u64,
}

impl Default for CrossValidation {
    fn default() -> Self {
        CrossValidation {
            folds: 2,
            runs: 10,
            seed: 42,
        }
    }
}

impl CrossValidation {
    /// Runs the protocol.  For every run the reference links are shuffled and
    /// split into `folds` folds; each fold is held out once while the learner
    /// is trained on the remaining folds.
    ///
    /// `learn(train_links, run_seed)` must return the learned rule.
    pub fn run<F>(
        &self,
        source: &DataSource,
        target: &DataSource,
        links: &ReferenceLinks,
        mut learn: F,
    ) -> CrossValidationResult
    where
        F: FnMut(&ReferenceLinks, u64) -> LinkageRule,
    {
        let mut fold_results = Vec::new();
        for run in 0..self.runs {
            let run_seed = self.seed + run as u64;
            let mut rng = StdRng::seed_from_u64(run_seed);
            let folds = links.split_folds(self.folds, &mut rng);
            for held_out in 0..folds.len() {
                let train = ReferenceLinks::merge(
                    folds
                        .iter()
                        .enumerate()
                        .filter(|(i, _)| *i != held_out)
                        .map(|(_, f)| f),
                );
                let validation = &folds[held_out];
                let start = std::time::Instant::now();
                let rule = learn(&train, run_seed);
                let seconds = start.elapsed().as_secs_f64();
                fold_results.push(FoldResult {
                    training: evaluate_rule_on_links(&rule, &train, source, target),
                    validation: evaluate_rule_on_links(&rule, validation, source, target),
                    seconds,
                    rule,
                });
            }
        }
        CrossValidationResult {
            folds: fold_results,
        }
    }
}

/// All fold results of a cross-validation run plus aggregate summaries.
#[derive(Debug, Clone)]
pub struct CrossValidationResult {
    /// One entry per (run, fold) combination.
    pub folds: Vec<FoldResult>,
}

impl CrossValidationResult {
    /// Mean and standard deviation of the training F1.
    pub fn training_f1(&self) -> Summary {
        Summary::of(self.folds.iter().map(|f| f.training.f_measure()))
    }

    /// Mean and standard deviation of the validation F1.
    pub fn validation_f1(&self) -> Summary {
        Summary::of(self.folds.iter().map(|f| f.validation.f_measure()))
    }

    /// Mean and standard deviation of the validation MCC.
    pub fn validation_mcc(&self) -> Summary {
        Summary::of(self.folds.iter().map(|f| f.validation.mcc()))
    }

    /// Mean and standard deviation of the learning time in seconds.
    pub fn seconds(&self) -> Summary {
        Summary::of(self.folds.iter().map(|f| f.seconds))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use linkdisc_entity::{DataSourceBuilder, Link, ReferenceLinks};
    use linkdisc_rule::{compare, property, DistanceFunction, RuleBuilder};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn paired_sources(n: usize) -> (DataSource, DataSource, ReferenceLinks) {
        let mut a = DataSourceBuilder::new("A", ["label"]);
        let mut b = DataSourceBuilder::new("B", ["label"]);
        let mut positives = Vec::new();
        for i in 0..n {
            a = a
                .entity(format!("a{i}"), [("label", format!("item {i}").as_str())])
                .unwrap();
            b = b
                .entity(format!("b{i}"), [("label", format!("item {i}").as_str())])
                .unwrap();
            positives.push(Link::new(format!("a{i}"), format!("b{i}")));
        }
        let mut rng = StdRng::seed_from_u64(5);
        let links = ReferenceLinks::with_generated_negatives(positives, &mut rng);
        (a.build(), b.build(), links)
    }

    fn exact_label_rule() -> LinkageRule {
        RuleBuilder::new()
            .compare_property("label", DistanceFunction::Equality, 0.5)
            .build()
    }

    #[test]
    fn perfect_rule_scores_one() {
        let (a, b, links) = paired_sources(20);
        let matrix = evaluate_rule_on_links(&exact_label_rule(), &links, &a, &b);
        assert_eq!(matrix.f_measure(), 1.0);
        assert_eq!(matrix.mcc(), 1.0);
        assert_eq!(matrix.total(), links.len());
    }

    #[test]
    fn empty_rule_scores_zero_f1() {
        let (a, b, links) = paired_sources(10);
        let matrix = evaluate_rule_on_links(&LinkageRule::empty(), &links, &a, &b);
        assert_eq!(matrix.f_measure(), 0.0);
        assert_eq!(matrix.true_negatives, links.negative().len());
    }

    #[test]
    fn always_link_rule_has_zero_mcc() {
        // a rule with threshold so large everything matches
        let (a, b, links) = paired_sources(10);
        let rule: LinkageRule = compare(
            property("label"),
            property("label"),
            DistanceFunction::Levenshtein,
            1000.0,
        )
        .into();
        let matrix = evaluate_rule_on_links(&rule, &links, &a, &b);
        assert_eq!(matrix.recall(), 1.0);
        assert!(matrix.false_positives > 0);
        assert_eq!(matrix.mcc(), 0.0);
    }

    #[test]
    fn cross_validation_aggregates_runs_and_folds() {
        let (a, b, links) = paired_sources(16);
        let cv = CrossValidation {
            folds: 2,
            runs: 3,
            seed: 1,
        };
        let mut calls = 0;
        let result = cv.run(&a, &b, &links, |train, _seed| {
            calls += 1;
            // the training fold never holds all links
            assert!(train.len() < links.len());
            assert!(!train.positive().is_empty());
            exact_label_rule()
        });
        assert_eq!(calls, 6);
        assert_eq!(result.folds.len(), 6);
        assert_eq!(result.training_f1().mean, 1.0);
        assert_eq!(result.validation_f1().mean, 1.0);
        assert!(result.seconds().mean >= 0.0);
        assert!(result.validation_mcc().std_dev.abs() < 1e-12);
    }
}
