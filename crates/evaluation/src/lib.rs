//! Evaluation of linkage rules: confusion matrices, F-measure, Matthews
//! correlation coefficient, train/validation protocols and run summaries.
//!
//! The paper evaluates learned rules with the F-measure on the reference links
//! (training and validation folds of a 2-fold cross validation, averaged over
//! 10 runs) and uses the Matthews correlation coefficient (MCC) as the fitness
//! measure of the genetic search (Section 5.2).

pub mod confusion;
pub mod protocol;
pub mod summary;

pub use confusion::ConfusionMatrix;
pub use protocol::{
    evaluate_compiled, evaluate_compiled_stats, evaluate_rule, evaluate_rule_on_links,
    CrossValidation, FoldResult,
};
pub use summary::Summary;
