//! Mean / standard deviation summaries of repeated measurements.
//!
//! Every result table of the paper reports "mean (σ)" over 10 runs; this tiny
//! statistics helper produces those numbers.

/// Mean and standard deviation of a sample.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Summary {
    /// Arithmetic mean.
    pub mean: f64,
    /// Sample standard deviation (σ, using `n` in the denominator as the paper
    /// reports population-style deviations over its 10 runs).
    pub std_dev: f64,
    /// Number of observations.
    pub count: usize,
    /// Smallest observation.
    pub min: f64,
    /// Largest observation.
    pub max: f64,
}

impl Summary {
    /// Summarises an iterator of observations.
    pub fn of<I: IntoIterator<Item = f64>>(values: I) -> Summary {
        let values: Vec<f64> = values.into_iter().collect();
        if values.is_empty() {
            return Summary::default();
        }
        let count = values.len();
        let mean = values.iter().sum::<f64>() / count as f64;
        let variance = values.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / count as f64;
        Summary {
            mean,
            std_dev: variance.sqrt(),
            count,
            min: values.iter().copied().fold(f64::INFINITY, f64::min),
            max: values.iter().copied().fold(f64::NEG_INFINITY, f64::max),
        }
    }

    /// Formats the summary the way the paper's tables do: `0.969 (0.003)`.
    pub fn paper_format(&self) -> String {
        format!("{:.3} ({:.3})", self.mean, self.std_dev)
    }
}

impl std::fmt::Display for Summary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.paper_format())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn summary_of_constant_values() {
        let s = Summary::of([0.5, 0.5, 0.5]);
        assert_eq!(s.mean, 0.5);
        assert_eq!(s.std_dev, 0.0);
        assert_eq!(s.count, 3);
        assert_eq!(s.min, 0.5);
        assert_eq!(s.max, 0.5);
    }

    #[test]
    fn summary_of_known_sample() {
        let s = Summary::of([2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert!((s.mean - 5.0).abs() < 1e-12);
        assert!((s.std_dev - 2.0).abs() < 1e-12);
        assert_eq!(s.min, 2.0);
        assert_eq!(s.max, 9.0);
    }

    #[test]
    fn summary_of_empty_sample() {
        let s = Summary::of(std::iter::empty());
        assert_eq!(s, Summary::default());
    }

    #[test]
    fn paper_format_matches_table_style() {
        let s = Summary::of([0.966, 0.970, 0.962]);
        assert_eq!(s.paper_format(), "0.966 (0.003)");
    }

    proptest! {
        #[test]
        fn mean_is_within_min_max(values in proptest::collection::vec(-100.0f64..100.0, 1..20)) {
            let s = Summary::of(values.clone());
            prop_assert!(s.mean >= s.min - 1e-9);
            prop_assert!(s.mean <= s.max + 1e-9);
            prop_assert!(s.std_dev >= 0.0);
            prop_assert_eq!(s.count, values.len());
        }
    }
}
