//! GenLink: learning expressive linkage rules using genetic programming.
//!
//! This crate implements the learning algorithm of *Isele & Bizer, "Learning
//! Expressive Linkage Rules using Genetic Programming", VLDB 2012* on top of
//! the linkage-rule representation of the `linkdisc-rule` crate and the
//! generic GP engine of the `linkdisc-gp` crate.
//!
//! The algorithm (Section 5 of the paper):
//!
//! 1. **Seeding** ([`seeding`]) — pairs of properties holding similar values
//!    are pre-selected from the positive reference links (Algorithm 2) and the
//!    initial population is built from small random rules over those pairs.
//! 2. **Fitness** ([`fitness`]) — Matthews correlation coefficient on the
//!    training links with a parsimony penalty on the rule size.
//! 3. **Evolution** — tournament selection plus a set of *specialized
//!    crossover operators* ([`operators`]), each evolving one aspect of a
//!    linkage rule: its functions, its comparison set, its aggregation
//!    hierarchy, its transformation chains, its thresholds and its weights.
//!    Mutation is headless-chicken crossover with a random rule.
//! 4. The best rule of the final population is returned.
//!
//! The entry point is [`GenLink`]:
//!
//! ```
//! use genlink::{GenLink, GenLinkConfig};
//! use linkdisc_entity::{DataSourceBuilder, ReferenceLinksBuilder};
//!
//! let source = DataSourceBuilder::new("A", ["label"])
//!     .entity("a1", [("label", "Berlin")]).unwrap()
//!     .entity("a2", [("label", "Paris")]).unwrap()
//!     .build();
//! let target = DataSourceBuilder::new("B", ["name"])
//!     .entity("b1", [("name", "berlin")]).unwrap()
//!     .entity("b2", [("name", "paris")]).unwrap()
//!     .build();
//! let links = ReferenceLinksBuilder::new()
//!     .positive("a1", "b1").positive("a2", "b2")
//!     .negative("a1", "b2").negative("a2", "b1")
//!     .build();
//!
//! let mut config = GenLinkConfig::fast();
//! config.gp.threads = 1;
//! let outcome = GenLink::new(config).learn(&source, &target, &links, 7);
//! assert!(outcome.training.f_measure() > 0.9);
//! ```

pub mod active;
pub mod config;
pub mod fitness;
pub mod learner;
pub mod operators;
pub mod problem;
pub mod random;
pub mod representation;
pub mod seeding;
pub mod simplify;

pub use active::{candidate_pool, indexed_candidate_pool, select_queries, Query};
pub use config::{GenLinkConfig, LearningMode, SeedingStrategy, SteadyStateConfig};
pub use fitness::{FitnessFunction, ParsimonyModel, PreparedRule};
pub use learner::{GenLink, LearnOutcome};
pub use operators::CrossoverOperator;
pub use representation::RepresentationMode;
pub use seeding::{find_compatible_properties, CompatiblePair};
pub use simplify::simplify_rule;

// Re-export the building blocks users typically need alongside the learner.
pub use linkdisc_gp::{
    GpConfig, IterationStats, MigrationRecord, PhaseTimers, PipelineReport, Replacement,
};
pub use linkdisc_rule::{AggregationFunction, DistanceFunction, LinkageRule, TransformFunction};
