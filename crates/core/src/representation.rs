//! Linkage-rule representation restrictions (Section 6.3, Table 13).
//!
//! The paper measures the contribution of its expressive representation by
//! also learning rules under three restricted representations that correspond
//! to common approaches from the record-linkage literature:
//!
//! * **Boolean** — threshold-based boolean classifiers (Definition 10): a
//!   single `min`/`max` aggregation of comparisons, no transformations.
//! * **Linear** — linear classifiers (Definition 9): a single weighted-mean
//!   aggregation of comparisons, no transformations.
//! * **Non-linear** — nested aggregations allowed, but still no
//!   transformations.
//! * **Full** — the complete representation of Section 3.
//!
//! A restriction is *enforced* on every generated or recombined rule: the
//! random-rule generator only draws allowed shapes, and [`RepresentationMode::enforce`]
//! normalises crossover products back into the restricted space (stripping
//! transformations, flattening nested aggregations and rewriting disallowed
//! aggregation functions).

use linkdisc_rule::{
    Aggregation, AggregationFunction, LinkageRule, SimilarityOperator, ValueOperator,
};

/// The four representations compared in Table 13 of the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum RepresentationMode {
    /// Threshold-based boolean classifiers without transformations.
    Boolean,
    /// Linear classifiers without transformations.
    Linear,
    /// Non-linear classifiers without transformations.
    NonLinear,
    /// The full expressivity of Section 3 (default).
    #[default]
    Full,
}

impl RepresentationMode {
    /// All representations in the order of Table 13.
    pub const ALL: [RepresentationMode; 4] = [
        RepresentationMode::Boolean,
        RepresentationMode::Linear,
        RepresentationMode::NonLinear,
        RepresentationMode::Full,
    ];

    /// Display name as used in Table 13.
    pub fn name(&self) -> &'static str {
        match self {
            RepresentationMode::Boolean => "Boolean",
            RepresentationMode::Linear => "Linear",
            RepresentationMode::NonLinear => "Non-linear",
            RepresentationMode::Full => "Full",
        }
    }

    /// Whether transformation operators may appear in rules.
    pub fn allows_transformations(&self) -> bool {
        matches!(self, RepresentationMode::Full)
    }

    /// Whether aggregations may be nested.
    pub fn allows_nested_aggregations(&self) -> bool {
        matches!(
            self,
            RepresentationMode::NonLinear | RepresentationMode::Full
        )
    }

    /// The aggregation functions available under this representation.
    pub fn allowed_aggregations(&self) -> &'static [AggregationFunction] {
        match self {
            RepresentationMode::Boolean => &[AggregationFunction::Min, AggregationFunction::Max],
            RepresentationMode::Linear => &[AggregationFunction::WeightedMean],
            RepresentationMode::NonLinear | RepresentationMode::Full => &[
                AggregationFunction::Min,
                AggregationFunction::Max,
                AggregationFunction::WeightedMean,
            ],
        }
    }

    /// Returns `true` if the rule already satisfies this representation.
    pub fn permits(&self, rule: &LinkageRule) -> bool {
        let Some(root) = rule.root() else { return true };
        if !self.allows_transformations() && root.has_transformations() {
            return false;
        }
        if !self.allows_nested_aggregations() && root.has_nested_aggregation() {
            return false;
        }
        root.aggregations()
            .iter()
            .all(|a| self.allowed_aggregations().contains(&a.function))
    }

    /// Normalises a rule into this representation:
    ///
    /// * transformations are stripped (each transformation is replaced by its
    ///   first property descendant),
    /// * nested aggregations are flattened into their parent,
    /// * disallowed aggregation functions are replaced by the first allowed
    ///   one.
    pub fn enforce(&self, rule: &mut LinkageRule) {
        let Some(root) = rule.root_mut() else { return };
        if !self.allows_transformations() {
            root.for_each_value_root_mut(&mut |value| {
                if let Some(property) = first_property(value) {
                    *value = ValueOperator::property(property);
                }
            });
        }
        if !self.allows_nested_aggregations() {
            flatten(root);
        }
        rewrite_aggregation_functions(root, self.allowed_aggregations());
    }
}

impl std::fmt::Display for RepresentationMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// The name of the first property operator below a value operator.
fn first_property(value: &ValueOperator) -> Option<String> {
    match value {
        ValueOperator::Property(p) => Some(p.property.clone()),
        ValueOperator::Transformation(t) => t.inputs.iter().find_map(first_property),
    }
}

/// Splices the comparisons of nested aggregations into the root aggregation.
fn flatten(root: &mut SimilarityOperator) {
    if let SimilarityOperator::Aggregation(aggregation) = root {
        let mut flat = Vec::new();
        collect_comparisons(aggregation, &mut flat);
        aggregation.operators = flat;
    }
}

fn collect_comparisons(aggregation: &Aggregation, out: &mut Vec<SimilarityOperator>) {
    for operator in &aggregation.operators {
        match operator {
            SimilarityOperator::Comparison(_) => out.push(operator.clone()),
            SimilarityOperator::Aggregation(nested) => collect_comparisons(nested, out),
        }
    }
}

fn rewrite_aggregation_functions(node: &mut SimilarityOperator, allowed: &[AggregationFunction]) {
    if let SimilarityOperator::Aggregation(aggregation) = node {
        if !allowed.contains(&aggregation.function) {
            aggregation.function = allowed[0];
        }
        for child in &mut aggregation.operators {
            rewrite_aggregation_functions(child, allowed);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use linkdisc_rule::{
        aggregation, compare, property, transform, DistanceFunction, TransformFunction,
    };

    fn complex_rule() -> LinkageRule {
        aggregation(
            AggregationFunction::WeightedMean,
            vec![
                compare(
                    transform(TransformFunction::LowerCase, vec![property("label")]),
                    property("name"),
                    DistanceFunction::Levenshtein,
                    1.0,
                ),
                aggregation(
                    AggregationFunction::Max,
                    vec![
                        compare(
                            property("date"),
                            property("released"),
                            DistanceFunction::Date,
                            30.0,
                        ),
                        compare(
                            property("director"),
                            property("director"),
                            DistanceFunction::Jaccard,
                            0.5,
                        ),
                    ],
                ),
            ],
        )
        .into()
    }

    #[test]
    fn full_mode_permits_everything() {
        assert!(RepresentationMode::Full.permits(&complex_rule()));
        let mut rule = complex_rule();
        RepresentationMode::Full.enforce(&mut rule);
        assert_eq!(rule, complex_rule());
    }

    #[test]
    fn boolean_mode_strips_transformations_and_nesting() {
        let mut rule = complex_rule();
        assert!(!RepresentationMode::Boolean.permits(&rule));
        RepresentationMode::Boolean.enforce(&mut rule);
        assert!(RepresentationMode::Boolean.permits(&rule));
        let stats = rule.stats();
        assert_eq!(stats.transformations, 0);
        assert!(!stats.non_linear);
        assert_eq!(stats.comparisons, 3);
        // wmean is not a boolean aggregation; it must have been rewritten
        assert!(rule.root().unwrap().aggregations().iter().all(|a| matches!(
            a.function,
            AggregationFunction::Min | AggregationFunction::Max
        )));
    }

    #[test]
    fn linear_mode_forces_weighted_mean() {
        let mut rule = complex_rule();
        RepresentationMode::Linear.enforce(&mut rule);
        assert!(RepresentationMode::Linear.permits(&rule));
        assert!(rule
            .root()
            .unwrap()
            .aggregations()
            .iter()
            .all(|a| a.function == AggregationFunction::WeightedMean));
        assert!(!rule.stats().non_linear);
        assert_eq!(rule.stats().transformations, 0);
    }

    #[test]
    fn non_linear_mode_keeps_nesting_but_strips_transformations() {
        let mut rule = complex_rule();
        RepresentationMode::NonLinear.enforce(&mut rule);
        assert!(RepresentationMode::NonLinear.permits(&rule));
        assert!(rule.stats().non_linear);
        assert_eq!(rule.stats().transformations, 0);
    }

    #[test]
    fn enforcement_preserves_properties() {
        let mut rule = complex_rule();
        RepresentationMode::Boolean.enforce(&mut rule);
        let (source, _) = rule.root().unwrap().properties();
        assert!(source.contains(&"label"));
        assert!(source.contains(&"date"));
    }

    #[test]
    fn empty_rule_is_always_permitted() {
        let mut rule = LinkageRule::empty();
        for mode in RepresentationMode::ALL {
            assert!(mode.permits(&rule));
            mode.enforce(&mut rule);
        }
    }

    #[test]
    fn names_match_table_13() {
        let names: Vec<&str> = RepresentationMode::ALL.iter().map(|m| m.name()).collect();
        assert_eq!(names, vec!["Boolean", "Linear", "Non-linear", "Full"]);
    }
}
