//! Active learning: query selection by committee disagreement.
//!
//! The GenLink paper points to a companion method (Isele, Jentzsch & Bizer,
//! ICWE 2012 — reference [21]) that minimises the number of entity pairs a
//! domain expert has to confirm or reject: instead of labelling random pairs,
//! the learner asks about the pairs on which the current population of
//! candidate rules *disagrees* the most (query-by-committee).  This module
//! implements that selection strategy on top of the GenLink population so the
//! library can be used interactively:
//!
//! 1. learn an initial population from a few labelled links,
//! 2. call [`select_queries`] with a pool of unlabelled candidate pairs,
//! 3. have the expert label the returned pairs, add them to the reference
//!    links, and re-learn.

use std::collections::HashSet;
use std::sync::Arc;

use linkdisc_entity::{DataSource, EntityPair, Link};
use linkdisc_matching::{CandidateScratch, MultiBlockIndex, SharedLeafIndexes};
use linkdisc_rule::{IndexingPlan, LinkageRule, ValueCache, LINK_THRESHOLD};

/// An unlabelled candidate pair together with the committee's disagreement
/// about it.
#[derive(Debug, Clone, PartialEq)]
pub struct Query {
    /// The candidate link.
    pub link: Link,
    /// Fraction of committee rules that vote "link" (0.0–1.0).
    pub agreement: f64,
    /// Vote entropy in bits: 0 for unanimous committees, 1 for a 50/50 split.
    pub disagreement: f64,
}

/// Computes the vote entropy of a committee split where `p` is the fraction of
/// positive votes.
fn vote_entropy(p: f64) -> f64 {
    if p <= 0.0 || p >= 1.0 {
        return 0.0;
    }
    -(p * p.log2() + (1.0 - p) * (1.0 - p).log2())
}

/// Selects the `count` candidate pairs the committee disagrees about the most.
///
/// `committee` is any set of linkage rules — typically the fittest rules of
/// the current GenLink population.  Candidates whose endpoints cannot be
/// resolved are skipped.  The result is sorted by descending disagreement;
/// ties are broken deterministically by the link identifiers.
pub fn select_queries(
    committee: &[LinkageRule],
    candidates: &[Link],
    source: &DataSource,
    target: &DataSource,
    count: usize,
) -> Vec<Query> {
    if committee.is_empty() || count == 0 {
        return Vec::new();
    }
    let mut queries: Vec<Query> = candidates
        .iter()
        .filter_map(|link| {
            let pair = EntityPair::resolve(link, source, target)?;
            let votes = committee.iter().filter(|rule| rule.is_link(&pair)).count();
            let agreement = votes as f64 / committee.len() as f64;
            Some(Query {
                link: link.clone(),
                agreement,
                disagreement: vote_entropy(agreement),
            })
        })
        .collect();
    queries.sort_by(|a, b| {
        b.disagreement
            .total_cmp(&a.disagreement)
            .then_with(|| a.link.cmp(&b.link))
    });
    queries.truncate(count);
    queries
}

/// Builds a pool of unlabelled candidate pairs by pairing every source entity
/// with every target entity and dropping the pairs already covered by the
/// reference links.  Intended for small data sets; large sources should use
/// [`indexed_candidate_pool`], which prunes through the committee's own
/// MultiBlock indexes.
pub fn candidate_pool(
    source: &DataSource,
    target: &DataSource,
    labelled: &linkdisc_entity::ReferenceLinks,
) -> Vec<Link> {
    let known = known_pairs(labelled);
    let mut pool = Vec::new();
    for source_entity in source.entities() {
        for target_entity in target.entities() {
            let key = (
                source_entity.id().to_string(),
                target_entity.id().to_string(),
            );
            if !known.contains(&key) {
                pool.push(Link::new(key.0, key.1));
            }
        }
    }
    pool
}

/// Builds the unlabelled candidate pool **through the committee's candidate
/// indexes** instead of the full cross product: a pair enters the pool iff
/// at least one committee rule's (lossless) MultiBlock candidate set admits
/// it — any pair outside every rule's candidate set is linked by *no* rule,
/// so the committee votes on it unanimously "no" with zero disagreement and
/// it can never be worth a query.  Leaf indexes are drawn from `shared`, so
/// committees sharing comparisons (they evolved from one population) index
/// the target once per distinct `(chain, measure, bound bucket)` rather
/// than once per rule.
///
/// Rules whose plan cannot prune make the whole pool degrade to
/// [`candidate_pool`] — never worse, never lossy.  Memory is `O(|target|)`
/// and work is proportional to the candidates the indexes emit, never to
/// the cross product.  The result is deterministic: source entities in
/// data-source order, each row's targets in data-source order.
pub fn indexed_candidate_pool(
    committee: &[LinkageRule],
    source: &DataSource,
    target: &DataSource,
    labelled: &linkdisc_entity::ReferenceLinks,
    shared: &SharedLeafIndexes,
) -> Vec<Link> {
    // lower every rule before building anything: one unprunable rule
    // admits every pair, and no sibling index can shrink a union, so the
    // fallback must be decided before any index work is spent
    let mut plans: Vec<IndexingPlan> = Vec::new();
    for rule in committee {
        let plan = IndexingPlan::lower(rule, source.schema(), target.schema(), LINK_THRESHOLD)
            .canonicalized();
        if plan.is_empty_result() {
            continue;
        }
        if plan.is_exhaustive() {
            return candidate_pool(source, target, labelled);
        }
        plans.push(plan);
    }
    let targets: Vec<&linkdisc_entity::Entity> = target.entities().iter().collect();
    let cache = ValueCache::new();
    let indexes: Vec<MultiBlockIndex> = plans
        .into_iter()
        .map(|plan| MultiBlockIndex::build_shared(Arc::new(plan), &targets, &cache, shared))
        .collect();
    let known = known_pairs(labelled);
    let mut pool = Vec::new();
    let mut scratch = CandidateScratch::new();
    let mut admitted = vec![false; target.len()];
    let mut row_positions: Vec<u32> = Vec::new();
    for source_entity in source.entities() {
        for index in &indexes {
            let candidates = index.candidates(source_entity, &cache, &mut scratch, &mut []);
            for &position in &candidates {
                if !admitted[position as usize] {
                    admitted[position as usize] = true;
                    row_positions.push(position);
                }
            }
            scratch.recycle(candidates);
        }
        row_positions.sort_unstable();
        for &position in &row_positions {
            admitted[position as usize] = false;
            let key = (
                source_entity.id().to_string(),
                targets[position as usize].id().to_string(),
            );
            if !known.contains(&key) {
                pool.push(Link::new(key.0, key.1));
            }
        }
        row_positions.clear();
    }
    pool
}

/// The `(source, target)` identifier pairs already labelled.
fn known_pairs(labelled: &linkdisc_entity::ReferenceLinks) -> HashSet<(String, String)> {
    labelled
        .positive()
        .iter()
        .chain(labelled.negative())
        .map(|l| (l.source.clone(), l.target.clone()))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use linkdisc_entity::{DataSourceBuilder, ReferenceLinksBuilder};
    use linkdisc_rule::{compare, property, DistanceFunction};

    fn sources() -> (DataSource, DataSource) {
        let source = DataSourceBuilder::new("A", ["label"])
            .entity("a1", [("label", "alpha")])
            .unwrap()
            .entity("a2", [("label", "beta")])
            .unwrap()
            .build();
        let target = DataSourceBuilder::new("B", ["label"])
            .entity("b1", [("label", "alpha")])
            .unwrap()
            .entity("b2", [("label", "alphx")])
            .unwrap()
            .entity("b3", [("label", "gamma")])
            .unwrap()
            .build();
        (source, target)
    }

    fn committee() -> Vec<LinkageRule> {
        // a strict rule (exact match) and a lenient rule (edit distance 2):
        // they agree on exact matches and clear non-matches but disagree on
        // near matches such as alpha/alphx
        vec![
            compare(
                property("label"),
                property("label"),
                DistanceFunction::Levenshtein,
                0.5,
            )
            .into(),
            compare(
                property("label"),
                property("label"),
                DistanceFunction::Levenshtein,
                4.0,
            )
            .into(),
        ]
    }

    #[test]
    fn vote_entropy_is_maximal_at_even_splits() {
        assert_eq!(vote_entropy(0.0), 0.0);
        assert_eq!(vote_entropy(1.0), 0.0);
        assert!((vote_entropy(0.5) - 1.0).abs() < 1e-12);
        assert!(vote_entropy(0.25) < 1.0);
        assert!(vote_entropy(0.25) > 0.0);
    }

    #[test]
    fn queries_prefer_pairs_the_committee_disagrees_on() {
        let (source, target) = sources();
        let candidates = vec![
            Link::new("a1", "b1"), // both rules say link      -> no disagreement
            Link::new("a1", "b2"), // strict says no, lenient yes -> disagreement
            Link::new("a1", "b3"), // both say no               -> no disagreement
        ];
        let queries = select_queries(&committee(), &candidates, &source, &target, 2);
        assert_eq!(queries.len(), 2);
        assert_eq!(queries[0].link, Link::new("a1", "b2"));
        assert!(queries[0].disagreement > queries[1].disagreement);
        assert!((queries[0].agreement - 0.5).abs() < 1e-12);
    }

    #[test]
    fn unresolvable_candidates_are_skipped_and_count_is_respected() {
        let (source, target) = sources();
        let candidates = vec![Link::new("ghost", "b1"), Link::new("a1", "b2")];
        let queries = select_queries(&committee(), &candidates, &source, &target, 5);
        assert_eq!(queries.len(), 1);
        assert!(select_queries(&[], &candidates, &source, &target, 5).is_empty());
        assert!(select_queries(&committee(), &candidates, &source, &target, 0).is_empty());
    }

    #[test]
    fn indexed_pool_keeps_every_pair_any_rule_could_link() {
        let (source, target) = sources();
        let labelled = ReferenceLinksBuilder::new().positive("a1", "b1").build();
        // the strict + lenient pair, plus a third rule whose derived bound
        // falls into the lenient rule's Levenshtein budget bucket (θ 5.0 →
        // bound 2.5, same ⌊bound⌋ = 2 as θ 4.0 → bound 2.0) so its leaf
        // index is answered from the shared cache
        let mut rules = committee();
        rules.push(
            compare(
                property("label"),
                property("label"),
                DistanceFunction::Levenshtein,
                5.0,
            )
            .into(),
        );
        let shared = SharedLeafIndexes::new();
        let pool = indexed_candidate_pool(&rules, &source, &target, &labelled, &shared);
        let full = candidate_pool(&source, &target, &labelled);
        // the indexed pool is a subset of the cross product...
        assert!(pool.iter().all(|link| full.contains(link)));
        // ...that keeps every pair at least one committee rule links (the
        // pairs a query could ever disagree about)
        for link in &full {
            let pair = EntityPair::resolve(link, &source, &target).unwrap();
            if rules.iter().any(|rule| rule.is_link(&pair)) {
                assert!(pool.contains(link), "lossless pool must keep {link:?}");
            }
        }
        // the lenient rules (edit distance ≤ 4 / ≤ 5) admit alpha/alphx,
        // while beta shares no q-gram block (nor the short-value key) with
        // alphx under any committee rule
        assert!(pool.contains(&Link::new("a1", "b2")));
        assert!(
            !pool.contains(&Link::new("a2", "b2")),
            "beta vs alphx pruned"
        );
        // query selection over the indexed pool finds the same top query
        let queries = select_queries(&rules, &pool, &source, &target, 1);
        assert_eq!(queries[0].link, Link::new("a1", "b2"));
        assert!(shared.stats().hits > 0, "{:?}", shared.stats());
    }

    #[test]
    fn candidate_pool_excludes_labelled_pairs() {
        let (source, target) = sources();
        let labelled = ReferenceLinksBuilder::new()
            .positive("a1", "b1")
            .negative("a2", "b3")
            .build();
        let pool = candidate_pool(&source, &target, &labelled);
        assert_eq!(pool.len(), 2 * 3 - 2);
        assert!(!pool.contains(&Link::new("a1", "b1")));
        assert!(!pool.contains(&Link::new("a2", "b3")));
        assert!(pool.contains(&Link::new("a1", "b2")));
    }
}
