//! Structural simplification of learned linkage rules.
//!
//! The parsimony pressure of the fitness function keeps rules small, but the
//! best rule of the final population can still contain redundancies that make
//! it harder to read: duplicated comparisons inside an aggregation,
//! aggregations with a single child, nested aggregations using the same
//! function, or repeated transformations.  This module removes those
//! redundancies *without changing the rule's semantics* — every rewrite is
//! score-preserving for `min`/`max` and preserves the weighted mean exactly
//! when the duplicates carry equal weights (the only case the rewrite touches).
//!
//! Simplification supports the paper's goal that learned rules "can be
//! understood and further improved by humans".

use linkdisc_rule::{LinkageRule, SimilarityOperator};

/// Simplifies a rule in place and returns the number of operators removed.
pub fn simplify_rule(rule: &mut LinkageRule) -> usize {
    let before = rule.operator_count();
    if let Some(root) = rule.root_mut() {
        simplify_node(root);
        // collapsing may leave a single-child aggregation at the root as well
        if let SimilarityOperator::Aggregation(aggregation) = root {
            if aggregation.operators.len() == 1 {
                let child = aggregation.operators.remove(0);
                *root = child;
            }
        }
        root.for_each_value_root_mut(&mut |value| value.dedup_transformations());
    }
    before.saturating_sub(rule.operator_count())
}

fn simplify_node(node: &mut SimilarityOperator) {
    let SimilarityOperator::Aggregation(aggregation) = node else {
        return;
    };
    for child in &mut aggregation.operators {
        simplify_node(child);
    }
    // collapse single-child aggregations below this one and splice nested
    // aggregations that use the same function (min(min(a,b),c) = min(a,b,c))
    let mut flattened: Vec<SimilarityOperator> = Vec::with_capacity(aggregation.operators.len());
    for child in aggregation.operators.drain(..) {
        match child {
            SimilarityOperator::Aggregation(mut nested) if nested.operators.len() == 1 => {
                flattened.push(nested.operators.remove(0));
            }
            SimilarityOperator::Aggregation(nested)
                if nested.function == aggregation.function && nested.weight == 1 =>
            {
                flattened.extend(nested.operators);
            }
            other => flattened.push(other),
        }
    }
    // drop exact duplicates (same subtree and same weight)
    let mut deduped: Vec<SimilarityOperator> = Vec::with_capacity(flattened.len());
    for child in flattened {
        if !deduped.contains(&child) {
            deduped.push(child);
        }
    }
    aggregation.operators = deduped;
}

#[cfg(test)]
mod tests {
    use super::*;
    use linkdisc_entity::{EntityBuilder, EntityPair};
    use linkdisc_rule::{
        aggregation, compare, property, transform, AggregationFunction, DistanceFunction,
        TransformFunction,
    };

    fn redundant_rule() -> LinkageRule {
        let label = compare(
            transform(
                TransformFunction::LowerCase,
                vec![transform(
                    TransformFunction::LowerCase,
                    vec![property("label")],
                )],
            ),
            property("name"),
            DistanceFunction::Levenshtein,
            1.0,
        );
        aggregation(
            AggregationFunction::Min,
            vec![
                label.clone(),
                label.clone(),
                aggregation(
                    AggregationFunction::Min,
                    vec![compare(
                        property("date"),
                        property("released"),
                        DistanceFunction::Date,
                        30.0,
                    )],
                ),
            ],
        )
        .into()
    }

    #[test]
    fn simplification_removes_redundant_operators() {
        let mut rule = redundant_rule();
        let before = rule.operator_count();
        let removed = simplify_rule(&mut rule);
        assert!(removed > 0);
        assert_eq!(rule.operator_count(), before - removed);
        let stats = rule.stats();
        assert_eq!(stats.comparisons, 2, "{rule:?}");
        assert_eq!(stats.aggregations, 1);
        assert_eq!(stats.transformations, 1);
    }

    #[test]
    fn simplification_preserves_scores() {
        let mut rule = redundant_rule();
        let original = rule.clone();
        simplify_rule(&mut rule);
        let a = EntityBuilder::new("a")
            .value("label", "Berlin")
            .value("date", "2001-01-01")
            .build_with_own_schema();
        for (name, date) in [
            ("berlin", "2001-01-10"),
            ("Berlim", "2001-01-01"),
            ("paris", "1990-05-05"),
            ("berlin", "2005-01-01"),
        ] {
            let b = EntityBuilder::new("b")
                .value("name", name)
                .value("released", date)
                .build_with_own_schema();
            let pair = EntityPair::new(&a, &b);
            assert!(
                (original.evaluate(&pair) - rule.evaluate(&pair)).abs() < 1e-12,
                "simplification changed the score for {name}/{date}"
            );
        }
    }

    #[test]
    fn single_child_root_aggregation_is_collapsed() {
        let mut rule: LinkageRule = aggregation(
            AggregationFunction::WeightedMean,
            vec![compare(
                property("a"),
                property("b"),
                DistanceFunction::Equality,
                0.5,
            )],
        )
        .into();
        simplify_rule(&mut rule);
        assert_eq!(rule.stats().aggregations, 0);
        assert_eq!(rule.stats().comparisons, 1);
    }

    #[test]
    fn already_minimal_rules_are_untouched() {
        let mut rule: LinkageRule = aggregation(
            AggregationFunction::Max,
            vec![
                compare(
                    property("a"),
                    property("b"),
                    DistanceFunction::Equality,
                    0.5,
                ),
                compare(property("c"), property("d"), DistanceFunction::Numeric, 1.0),
            ],
        )
        .into();
        let original = rule.clone();
        assert_eq!(simplify_rule(&mut rule), 0);
        assert_eq!(rule, original);
    }

    #[test]
    fn empty_rule_is_a_no_op() {
        let mut rule = LinkageRule::empty();
        assert_eq!(simplify_rule(&mut rule), 0);
        assert!(rule.is_empty());
    }

    #[test]
    fn different_function_nesting_is_preserved() {
        // max(min(a,b), c) must NOT be flattened
        let mut rule: LinkageRule = aggregation(
            AggregationFunction::Max,
            vec![
                aggregation(
                    AggregationFunction::Min,
                    vec![
                        compare(
                            property("a"),
                            property("b"),
                            DistanceFunction::Equality,
                            0.5,
                        ),
                        compare(
                            property("c"),
                            property("d"),
                            DistanceFunction::Equality,
                            0.5,
                        ),
                    ],
                ),
                compare(
                    property("e"),
                    property("f"),
                    DistanceFunction::Equality,
                    0.5,
                ),
            ],
        )
        .into();
        simplify_rule(&mut rule);
        assert!(
            rule.stats().non_linear,
            "nesting with different functions must survive"
        );
    }
}
