//! Random linkage-rule generation (Section 5.1 of the paper).
//!
//! A random rule consists of a random aggregation and up to two comparisons.
//! Each comparison draws a property pair from the pre-generated compatible
//! list (or from all property pairs under the "random" seeding strategy); with
//! a probability of 50% a random transformation is appended to each property.
//! Random rules stay deliberately small — the genetic operators grow bigger
//! trees where the data requires it.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::Rng;

use linkdisc_rule::{
    AggregationFunction, DistanceFunction, LinkageRule, SimilarityOperator, TransformFunction,
    ValueOperator,
};

use crate::representation::RepresentationMode;
use crate::seeding::CompatiblePair;

/// Parameters of the random-rule generator.
#[derive(Debug, Clone)]
pub struct RandomRuleGenerator {
    /// The property pairs comparisons are drawn from.
    pub pairs: Vec<CompatiblePair>,
    /// The representation the generated rules must adhere to.
    pub representation: RepresentationMode,
    /// Probability of appending a random transformation to each property
    /// (paper: 50%).
    pub transformation_probability: f64,
    /// Maximum number of comparisons in an initial rule (paper: 2).
    pub max_comparisons: usize,
    /// Distance functions a comparison may use when it does not inherit the
    /// function of its compatible pair.
    pub distance_functions: Vec<DistanceFunction>,
    /// Transformation functions available to the generator.
    pub transform_functions: Vec<TransformFunction>,
}

impl RandomRuleGenerator {
    /// Creates a generator with the paper's defaults over the given pairs.
    pub fn new(pairs: Vec<CompatiblePair>, representation: RepresentationMode) -> Self {
        RandomRuleGenerator {
            pairs,
            representation,
            transformation_probability: 0.5,
            max_comparisons: 2,
            distance_functions: DistanceFunction::PAPER.to_vec(),
            transform_functions: TransformFunction::PAPER.to_vec(),
        }
    }

    /// Generates a random linkage rule.
    ///
    /// If no property pairs are available the empty rule is returned (the
    /// learner treats that as a degenerate individual with fitness −∞).
    pub fn generate(&self, rng: &mut StdRng) -> LinkageRule {
        if self.pairs.is_empty() {
            return LinkageRule::empty();
        }
        let comparison_count = rng.gen_range(1..=self.max_comparisons.max(1));
        let comparisons: Vec<SimilarityOperator> = (0..comparison_count)
            .map(|_| self.random_comparison(rng))
            .collect();
        let mut rule = if comparisons.len() == 1 && rng.gen_bool(0.5) {
            // a single comparison may stand alone as the rule root
            LinkageRule::new(comparisons.into_iter().next().expect("one comparison"))
        } else {
            let function = *self
                .representation
                .allowed_aggregations()
                .choose(rng)
                .expect("at least one aggregation function");
            LinkageRule::new(SimilarityOperator::aggregation(function, comparisons))
        };
        self.representation.enforce(&mut rule);
        rule
    }

    /// Generates a random comparison over a random compatible pair.
    ///
    /// Pairs are drawn with a probability proportional to their seeding
    /// support (plus a floor so unsupported pairs — and the uniform "random"
    /// strategy of Table 14, where every support is zero — remain reachable).
    /// Wide data sets produce many weakly supported filler pairs; favouring
    /// well-supported pairs keeps the initial population focused without
    /// excluding anything.
    pub fn random_comparison(&self, rng: &mut StdRng) -> SimilarityOperator {
        let pair = self
            .pairs
            .choose_weighted(rng, |p| p.support + 0.05)
            .expect("pairs are not empty");
        let function = if rng.gen_bool(0.5) {
            pair.function
        } else {
            *self
                .distance_functions
                .choose(rng)
                .unwrap_or(&pair.function)
        };
        let threshold = self.random_threshold(function, rng);
        let source = self.random_value_operator(&pair.source_property, rng);
        let target = self.random_value_operator(&pair.target_property, rng);
        let mut comparison = SimilarityOperator::comparison(source, target, function, threshold);
        if self.representation == RepresentationMode::Linear
            || self.representation == RepresentationMode::Full
        {
            comparison.set_weight(rng.gen_range(1..=4));
        }
        comparison
    }

    /// Draws a random threshold for the given measure, centred on its default.
    pub fn random_threshold(&self, function: DistanceFunction, rng: &mut StdRng) -> f64 {
        let default = function.default_threshold();
        let max = function.max_threshold();
        let factor: f64 = rng.gen_range(0.25..=2.0);
        (default * factor).clamp(0.0, max)
    }

    /// A random value operator over the given property, optionally wrapped in
    /// a random transformation.
    pub fn random_value_operator(&self, property: &str, rng: &mut StdRng) -> ValueOperator {
        let base = ValueOperator::property(property);
        if self.representation.allows_transformations()
            && !self.transform_functions.is_empty()
            && rng.gen_bool(self.transformation_probability)
        {
            let function = *self
                .transform_functions
                .choose(rng)
                .expect("transform functions are not empty");
            // `concatenate` needs two inputs to be meaningful; fall back to a
            // single-input transformation for the initial population.
            if function.is_multi_input() {
                ValueOperator::transformation(TransformFunction::LowerCase, vec![base])
            } else {
                ValueOperator::transformation(function, vec![base])
            }
        } else {
            base
        }
    }

    /// A random aggregation function allowed by the representation.
    pub fn random_aggregation_function(&self, rng: &mut StdRng) -> AggregationFunction {
        *self
            .representation
            .allowed_aggregations()
            .choose(rng)
            .expect("at least one aggregation function")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn pairs() -> Vec<CompatiblePair> {
        vec![
            CompatiblePair {
                source_property: "label".into(),
                target_property: "name".into(),
                function: DistanceFunction::Levenshtein,
                support: 1.0,
            },
            CompatiblePair {
                source_property: "point".into(),
                target_property: "coord".into(),
                function: DistanceFunction::Geographic,
                support: 0.8,
            },
        ]
    }

    fn rng(seed: u64) -> StdRng {
        StdRng::seed_from_u64(seed)
    }

    #[test]
    fn generated_rules_are_small_and_well_typed() {
        let generator = RandomRuleGenerator::new(pairs(), RepresentationMode::Full);
        let mut rng = rng(1);
        for _ in 0..200 {
            let rule = generator.generate(&mut rng);
            let stats = rule.stats();
            assert!(!rule.is_empty());
            assert!(
                stats.comparisons >= 1 && stats.comparisons <= 2,
                "{stats:?}"
            );
            assert!(stats.aggregations <= 1);
            assert!(stats.depth <= 2);
        }
    }

    #[test]
    fn generated_rules_only_use_known_properties() {
        let generator = RandomRuleGenerator::new(pairs(), RepresentationMode::Full);
        let mut rng = rng(2);
        for _ in 0..100 {
            let rule = generator.generate(&mut rng);
            let (source, target) = rule.root().unwrap().properties();
            for p in source {
                assert!(p == "label" || p == "point");
            }
            for p in target {
                assert!(p == "name" || p == "coord");
            }
        }
    }

    #[test]
    fn transformations_appear_roughly_half_the_time() {
        let generator = RandomRuleGenerator::new(pairs(), RepresentationMode::Full);
        let mut rng = rng(3);
        let mut with_transformations = 0;
        let total = 400;
        for _ in 0..total {
            if generator.generate(&mut rng).stats().uses_transformations {
                with_transformations += 1;
            }
        }
        // each rule has 2-4 property slots, each transformed with p=0.5, so a
        // large majority of rules should carry at least one transformation,
        // but far from all of them
        assert!(with_transformations > total / 2, "{with_transformations}");
        assert!(with_transformations < total, "{with_transformations}");
    }

    #[test]
    fn restricted_representations_are_respected() {
        let mut rng = rng(4);
        for mode in [
            RepresentationMode::Boolean,
            RepresentationMode::Linear,
            RepresentationMode::NonLinear,
        ] {
            let generator = RandomRuleGenerator::new(pairs(), mode);
            for _ in 0..100 {
                let rule = generator.generate(&mut rng);
                assert!(mode.permits(&rule), "{mode} violated by {rule:?}");
                assert_eq!(rule.stats().transformations, 0);
            }
        }
    }

    #[test]
    fn no_pairs_yield_the_empty_rule() {
        let generator = RandomRuleGenerator::new(vec![], RepresentationMode::Full);
        assert!(generator.generate(&mut rng(5)).is_empty());
    }

    #[test]
    fn thresholds_stay_within_bounds() {
        let generator = RandomRuleGenerator::new(pairs(), RepresentationMode::Full);
        let mut rng = rng(6);
        for _ in 0..200 {
            for function in DistanceFunction::ALL {
                let threshold = generator.random_threshold(function, &mut rng);
                assert!(threshold >= 0.0);
                assert!(threshold <= function.max_threshold());
            }
        }
    }
}
