//! The GenLink learner facade (Algorithm 1 of the paper).

use rand::rngs::StdRng;
use rand::SeedableRng;

use linkdisc_entity::{DataSource, ReferenceLinks, ResolvedReferenceLinks};
use linkdisc_evaluation::ConfusionMatrix;
use linkdisc_gp::{
    run_islands_with_observer, Evolution, IslandConfig, IterationStats, MigrationRecord, Pipeline,
    PipelineConfig, PipelineReport, Population,
};
use linkdisc_rule::LinkageRule;

use crate::config::{GenLinkConfig, LearningMode, SeedingStrategy, SteadyStateConfig};
use crate::fitness::FitnessFunction;
use crate::problem::GenLinkProblem;
use crate::random::RandomRuleGenerator;
use crate::seeding::{all_property_pairs, find_compatible_properties, CompatiblePair};

/// The result of one GenLink learning run.
#[derive(Debug, Clone)]
pub struct LearnOutcome {
    /// The best linkage rule of the final population (by fitness).
    pub rule: LinkageRule,
    /// Per-iteration statistics, starting with the initial population
    /// (iteration 0).  These drive the learning-curve tables of the paper.
    pub history: Vec<IterationStats>,
    /// Number of breeding iterations that were executed.
    pub iterations: usize,
    /// Whether the run stopped early because a rule reached the target
    /// F-measure on the training links.
    pub stopped_early: bool,
    /// Mean F-measure of the *initial* population (the quantity compared in
    /// the seeding experiment, Table 14).
    pub initial_mean_f_measure: f64,
    /// Confusion matrix of the returned rule on the training links.
    pub training: ConfusionMatrix,
    /// The compatible property pairs the initial population was built from.
    pub compatible_pairs: Vec<CompatiblePair>,
    /// Throughput report of the steady-state pipeline (`None` when the
    /// generational loop ran).
    pub pipeline: Option<PipelineReport>,
    /// Every island migration, in schedule order (empty without islands).
    pub migrations: Vec<MigrationRecord>,
}

/// The GenLink learning algorithm.
///
/// A learner is cheap to construct and stateless between runs; the same
/// learner can be reused for several data sets.
#[derive(Debug, Clone, Default)]
pub struct GenLink {
    config: GenLinkConfig,
}

impl GenLink {
    /// Creates a learner with the given configuration.
    pub fn new(config: GenLinkConfig) -> Self {
        config.validate();
        GenLink { config }
    }

    /// Creates a learner with the paper's default parameters (Table 4).
    pub fn with_paper_defaults() -> Self {
        GenLink::new(GenLinkConfig::paper())
    }

    /// The configuration of this learner.
    pub fn config(&self) -> &GenLinkConfig {
        &self.config
    }

    /// Learns a linkage rule from the training reference links.
    ///
    /// `seed` makes the run reproducible: the same seed, data and
    /// configuration yield the same rule.
    pub fn learn(
        &self,
        source: &DataSource,
        target: &DataSource,
        training: &ReferenceLinks,
        seed: u64,
    ) -> LearnOutcome {
        self.learn_with_observer(source, target, training, seed, |_| {})
    }

    /// Learns a linkage rule, invoking `observer` with the statistics of the
    /// initial population (iteration 0) and of every subsequent iteration.
    pub fn learn_with_observer<F>(
        &self,
        source: &DataSource,
        target: &DataSource,
        training: &ReferenceLinks,
        seed: u64,
        mut observer: F,
    ) -> LearnOutcome
    where
        F: FnMut(&IterationStats),
    {
        self.learn_with_rule_observer(source, target, training, seed, |stats, _| observer(stats))
    }

    /// Learns a linkage rule, invoking `observer` with the per-iteration
    /// statistics *and* the currently best rule (by fitness) of the
    /// population.  The experiment harness uses this to evaluate the
    /// intermediate rules on the held-out validation links, which is how the
    /// learning-curve tables (Tables 7–12 of the paper) report F1 per
    /// iteration.
    pub fn learn_with_rule_observer<F>(
        &self,
        source: &DataSource,
        target: &DataSource,
        training: &ReferenceLinks,
        seed: u64,
        mut observer: F,
    ) -> LearnOutcome
    where
        F: FnMut(&IterationStats, &LinkageRule),
    {
        self.config.validate();
        let compatible_pairs = self.property_pairs(source, target, training);
        let resolved = ResolvedReferenceLinks::resolve(training, source, target);
        let fitness = FitnessFunction::new(&resolved, self.config.parsimony)
            .with_indexing(self.config.indexed_fitness);

        let mut generator =
            RandomRuleGenerator::new(compatible_pairs.clone(), self.config.representation);
        generator.transformation_probability = self.config.transformation_probability;
        generator.max_comparisons = self.config.max_initial_comparisons;
        generator.distance_functions = self.config.distance_functions.clone();
        generator.transform_functions = self.config.transform_functions.clone();

        let problem = GenLinkProblem::new(
            fitness.clone(),
            generator,
            self.config.crossover_operators.clone(),
            self.config.representation,
        );
        let mut rng = StdRng::seed_from_u64(seed);
        let observe = |stats: &IterationStats, population: &Population<LinkageRule>| {
            match population.best() {
                Some(best) => observer(stats, &best.genome),
                None => observer(stats, &LinkageRule::empty()),
            }
        };
        let (result, report, migrations) = match &self.config.mode {
            LearningMode::Generational => {
                let evolution = Evolution::new(&problem, self.config.gp);
                let result = evolution.run_with_observer(&mut rng, observe);
                (result, None, Vec::new())
            }
            LearningMode::SteadyState(steady) => {
                let pipeline_config = steady_state_config(&self.config, steady);
                if steady.islands > 1 {
                    let islands = IslandConfig {
                        islands: steady.islands,
                        migration_interval: steady.migration_interval,
                        migrants: steady.migrants,
                    };
                    let outcome = run_islands_with_observer(
                        &problem,
                        pipeline_config,
                        islands,
                        &mut rng,
                        observe,
                    );
                    (outcome.result, Some(outcome.report), outcome.migrations)
                } else {
                    let pipeline = Pipeline::new(&problem, pipeline_config);
                    let outcome = pipeline.run_with_observer(&mut rng, observe);
                    (outcome.result, Some(outcome.report), Vec::new())
                }
            }
        };

        let rule = result.best.genome.clone();
        LearnOutcome {
            training: fitness.confusion(&rule),
            initial_mean_f_measure: result
                .history
                .first()
                .map(|s| s.mean_f_measure)
                .unwrap_or(0.0),
            rule,
            iterations: result.iterations,
            stopped_early: result.stopped_early,
            history: result.history,
            compatible_pairs,
            pipeline: report,
            migrations,
        }
    }

    /// The property pairs the initial population draws from, according to the
    /// configured seeding strategy.  An empty compatible-pair list (which can
    /// happen on tiny or extremely noisy link sets) falls back to the full
    /// cross product so the learner always has something to work with.
    fn property_pairs(
        &self,
        source: &DataSource,
        target: &DataSource,
        training: &ReferenceLinks,
    ) -> Vec<CompatiblePair> {
        match self.config.seeding {
            SeedingStrategy::Random => all_property_pairs(source, target),
            SeedingStrategy::Seeded => {
                let pairs = find_compatible_properties(
                    source,
                    target,
                    training,
                    &self.config.seeding_config,
                );
                if pairs.is_empty() {
                    all_property_pairs(source, target)
                } else {
                    pairs
                }
            }
        }
    }
}

/// The steady-state pipeline configuration: the generational parameters and
/// budget (`population_size * max_iterations`), with any explicit overrides
/// from the steady-state knobs applied on top.
fn steady_state_config(config: &GenLinkConfig, steady: &SteadyStateConfig) -> PipelineConfig {
    let mut pipeline = PipelineConfig::from_gp(&config.gp);
    if steady.lookahead > 0 {
        pipeline.lookahead = steady.lookahead;
    }
    if steady.window > 0 {
        pipeline.window = steady.window;
    }
    if steady.evaluations > 0 {
        pipeline.evaluations = steady.evaluations;
    }
    if let Some(replacement) = steady.replacement {
        pipeline.replacement = replacement;
    }
    pipeline
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::GenLinkConfig;
    use crate::representation::RepresentationMode;
    use linkdisc_entity::{DataSourceBuilder, Link};
    use linkdisc_evaluation::evaluate_rule_on_links;
    use rand::Rng;

    /// A small two-schema data set with case noise: source labels are mixed
    /// case, target names are lower case, plus a numeric year property.
    fn noisy_sources(n: usize) -> (DataSource, DataSource, ReferenceLinks) {
        let mut rng = StdRng::seed_from_u64(99);
        let mut source = DataSourceBuilder::new("A", ["title", "year"]);
        let mut target = DataSourceBuilder::new("B", ["name", "released"]);
        let mut positives = Vec::new();
        for i in 0..n {
            let title = format!("The Example Movie {i}");
            let year = format!("{}", 1960 + (i % 50));
            source = source
                .entity(
                    format!("a{i}"),
                    [("title", title.as_str()), ("year", year.as_str())],
                )
                .unwrap();
            let noisy_title = if rng.gen_bool(0.5) {
                title.to_uppercase()
            } else {
                title.to_lowercase()
            };
            target = target
                .entity(
                    format!("b{i}"),
                    [("name", noisy_title.as_str()), ("released", year.as_str())],
                )
                .unwrap();
            positives.push(Link::new(format!("a{i}"), format!("b{i}")));
        }
        let links = ReferenceLinks::with_generated_negatives(positives, &mut rng);
        (source.build(), target.build(), links)
    }

    fn fast_config() -> GenLinkConfig {
        let mut config = GenLinkConfig::fast();
        config.gp.threads = 1;
        config.gp.max_iterations = 15;
        config.gp.population_size = 60;
        config
    }

    #[test]
    fn learns_an_accurate_rule_on_noisy_titles() {
        let (source, target, links) = noisy_sources(30);
        let outcome = GenLink::new(fast_config()).learn(&source, &target, &links, 3);
        assert!(
            outcome.training.f_measure() > 0.9,
            "training F1 was {}",
            outcome.training.f_measure()
        );
        assert!(!outcome.rule.is_empty());
        assert!(!outcome.history.is_empty());
        assert_eq!(outcome.history[0].iteration, 0);
        // the learned rule must reference existing properties of both schemata
        let (source_props, target_props) = outcome.rule.root().unwrap().properties();
        for p in source_props {
            assert!(source.schema().contains(p), "unknown source property {p}");
        }
        for p in target_props {
            assert!(target.schema().contains(p), "unknown target property {p}");
        }
    }

    #[test]
    fn learning_is_reproducible_for_a_fixed_seed() {
        let (source, target, links) = noisy_sources(20);
        let learner = GenLink::new(fast_config());
        let first = learner.learn(&source, &target, &links, 7);
        let second = learner.learn(&source, &target, &links, 7);
        assert_eq!(first.rule, second.rule);
        assert_eq!(first.history.len(), second.history.len());
    }

    #[test]
    fn observer_reports_monotone_iterations() {
        let (source, target, links) = noisy_sources(15);
        let mut iterations = Vec::new();
        let outcome =
            GenLink::new(fast_config()).learn_with_observer(&source, &target, &links, 1, |stats| {
                iterations.push(stats.iteration)
            });
        assert_eq!(iterations.first(), Some(&0));
        assert!(iterations.windows(2).all(|w| w[1] == w[0] + 1));
        assert_eq!(iterations.len(), outcome.history.len());
    }

    #[test]
    fn restricted_representation_is_respected_end_to_end() {
        let (source, target, links) = noisy_sources(15);
        let config = fast_config().with_representation(RepresentationMode::Boolean);
        let outcome = GenLink::new(config).learn(&source, &target, &links, 5);
        assert!(RepresentationMode::Boolean.permits(&outcome.rule));
        assert_eq!(outcome.rule.stats().transformations, 0);
    }

    #[test]
    fn learned_rule_generalises_to_unseen_links() {
        let (source, target, links) = noisy_sources(40);
        let mut rng = StdRng::seed_from_u64(11);
        let (train, validation) = links.split_train_validation(0.5, &mut rng);
        let outcome = GenLink::new(fast_config()).learn(&source, &target, &train, 13);
        let matrix = evaluate_rule_on_links(&outcome.rule, &validation, &source, &target);
        assert!(
            matrix.f_measure() > 0.8,
            "validation F1 was {}",
            matrix.f_measure()
        );
    }

    #[test]
    fn compatible_pairs_are_reported() {
        let (source, target, links) = noisy_sources(10);
        let outcome = GenLink::new(fast_config()).learn(&source, &target, &links, 2);
        assert!(!outcome.compatible_pairs.is_empty());
        assert!(outcome
            .compatible_pairs
            .iter()
            .any(|p| p.source_property == "title" && p.target_property == "name"));
    }

    #[test]
    fn caches_save_evaluations_across_generations() {
        let (source, target, links) = noisy_sources(20);
        let mut config = fast_config();
        // never stop early, so elitism re-submits the best rule every
        // generation and the fitness cache must absorb it
        config.gp.stop_f_measure = 2.0;
        let outcome = GenLink::new(config).learn(&source, &target, &links, 9);
        let last = outcome
            .history
            .last()
            .and_then(|stats| stats.cache)
            .expect("GenLink reports cache statistics");
        assert!(
            last.fitness_hits > 0,
            "elites and duplicate offspring must hit the fitness cache: {last:?}"
        );
        assert!(last.fitness_misses > 0);
        assert!(last.fitness_entries as u64 <= last.fitness_misses);
        assert!(last.value_cache_entries > 0, "transform memo never filled");
        assert!(
            last.leaf_reuse_hits > 0,
            "a population's rules share comparison chains, so leaf indexes \
             must be reused within generations: {last:?}"
        );
        assert!(last.leaf_reuse_misses > 0);
        assert!(last.leaf_reuse_hit_rate() > 0.0);
        // cumulative counters grow monotonically over the run
        let mut previous_hits = 0;
        let mut previous_leaf_hits = 0;
        for stats in &outcome.history {
            let cache = stats.cache.expect("every iteration carries stats");
            assert!(cache.fitness_hits >= previous_hits);
            assert!(cache.leaf_reuse_hits >= previous_leaf_hits);
            previous_hits = cache.fitness_hits;
            previous_leaf_hits = cache.leaf_reuse_hits;
        }
    }

    #[test]
    fn steady_state_mode_learns_and_reports_throughput() {
        let (source, target, links) = noisy_sources(25);
        let mut config = fast_config().steady_state();
        // never stop early so the pipeline spends its whole budget
        config.gp.stop_f_measure = 2.0;
        config.gp.max_iterations = 8;
        let outcome = GenLink::new(config).learn(&source, &target, &links, 17);
        assert!(
            outcome.training.f_measure() > 0.9,
            "steady-state training F1 was {}",
            outcome.training.f_measure()
        );
        let report = outcome.pipeline.expect("steady state reports throughput");
        assert!(report.evaluations > 0);
        assert!(report.evaluations_per_second() > 0.0);
        assert!(outcome.migrations.is_empty());
        // window snapshots carry the per-phase timers
        let phases = outcome
            .history
            .last()
            .and_then(|stats| stats.phases)
            .expect("GenLink reports phase timers");
        assert!(phases.score_s > 0.0);
    }

    #[test]
    fn steady_state_mode_is_reproducible_and_evaluator_invariant() {
        let (source, target, links) = noisy_sources(20);
        let mut config = fast_config().steady_state();
        config.gp.max_iterations = 8;
        let one = GenLink::new(config.clone()).learn(&source, &target, &links, 23);
        config.gp.threads = 3;
        let three = GenLink::new(config).learn(&source, &target, &links, 23);
        assert_eq!(one.rule, three.rule);
        assert_eq!(one.history.len(), three.history.len());
        for (a, b) in one.history.iter().zip(&three.history) {
            assert_eq!(a.best_fitness, b.best_fitness);
            assert_eq!(a.mean_fitness, b.mean_fitness);
        }
    }

    #[test]
    fn island_mode_logs_a_deterministic_migrant_sequence() {
        let (source, target, links) = noisy_sources(20);
        let mut config = fast_config();
        config.gp.max_iterations = 8;
        config.mode = LearningMode::SteadyState(SteadyStateConfig {
            islands: 4,
            migrants: 1,
            ..SteadyStateConfig::default()
        });
        let learner = GenLink::new(config.clone());
        let first = learner.learn(&source, &target, &links, 29);
        config.gp.threads = 2;
        let second = GenLink::new(config).learn(&source, &target, &links, 29);
        assert_eq!(first.rule, second.rule);
        assert_eq!(first.migrations, second.migrations);
        if !first.stopped_early {
            assert!(
                !first.migrations.is_empty(),
                "a full island run must migrate"
            );
        }
        for record in &first.migrations {
            assert_eq!(record.to, (record.from + 1) % 4);
        }
    }

    #[test]
    fn indexed_and_exhaustive_fitness_learn_identically() {
        let (source, target, links) = noisy_sources(20);
        let mut indexed = fast_config();
        indexed.gp.max_iterations = 6;
        let mut exhaustive = indexed.clone();
        exhaustive.indexed_fitness = false;
        let a = GenLink::new(indexed).learn(&source, &target, &links, 21);
        let b = GenLink::new(exhaustive).learn(&source, &target, &links, 21);
        // candidate generation is lossless, so pruned scoring is *exact*:
        // the whole learning trajectory matches the evaluate-everything run
        assert_eq!(a.rule, b.rule);
        assert_eq!(a.history.len(), b.history.len());
        for (x, y) in a.history.iter().zip(&b.history) {
            assert_eq!(x.best_fitness, y.best_fitness);
            assert_eq!(x.mean_fitness, y.mean_fitness);
            assert_eq!(x.best_f_measure, y.best_f_measure);
            assert_eq!(x.mean_f_measure, y.mean_f_measure);
        }
        let cache = a.history.last().and_then(|s| s.cache).unwrap();
        assert!(cache.leaf_reuse_hits + cache.leaf_reuse_misses > 0);
        let cache = b.history.last().and_then(|s| s.cache).unwrap();
        assert_eq!(cache.leaf_reuse_hits + cache.leaf_reuse_misses, 0);
    }
}
