//! Seeding of the initial population (Section 5.1 of the paper).
//!
//! GenLink does not start from a completely random population.  To shrink the
//! search space — which explodes when the data sets have many properties or
//! follow different schemata — it first builds a list of *compatible property
//! pairs*: pairs of a source property and a target property that hold similar
//! values on the positively linked entities (Algorithm 2).  Random rules are
//! then built over those pairs only.
//!
//! The experiment of Table 14 compares this seeding against fully random
//! property selection; both strategies are available here.

use linkdisc_entity::normalized_tokens;
use linkdisc_entity::{DataSource, EntityPair, ReferenceLinks};
use linkdisc_similarity::DistanceFunction;

/// A pair of properties that hold similar values, together with the distance
/// measure under which they were found to be similar.
#[derive(Debug, Clone, PartialEq)]
pub struct CompatiblePair {
    /// Property of the source data set.
    pub source_property: String,
    /// Property of the target data set.
    pub target_property: String,
    /// The distance measure under which similar tokens were found.
    pub function: DistanceFunction,
    /// Fraction of the inspected positive links for which the pair matched;
    /// not part of the paper's algorithm, but useful for diagnostics and kept
    /// deterministic.
    pub support: f64,
}

/// Configuration of the compatible-property search (Algorithm 2).
#[derive(Debug, Clone)]
pub struct SeedingConfig {
    /// Distance measures probed.  The paper's experiments "only used the
    /// levenshtein distance with a threshold of 1".
    pub functions: Vec<DistanceFunction>,
    /// The distance threshold `θ_d`.
    pub threshold: f64,
    /// Maximum number of positive links inspected (Algorithm 2 walks all
    /// positive links; large data sets make that quadratic in the number of
    /// properties, so the search can be capped — 100 links are plenty to find
    /// every compatible pair in practice).
    pub max_links: usize,
}

impl Default for SeedingConfig {
    fn default() -> Self {
        SeedingConfig {
            functions: vec![DistanceFunction::Levenshtein],
            threshold: 1.0,
            max_links: 100,
        }
    }
}

/// Finds compatible property pairs (Algorithm 2 of the paper).
///
/// For every positive reference link and every pair `(p_i, p_j)` of a source
/// and a target property, the property values are lower-cased and tokenized;
/// if any distance measure of `config.functions` finds two tokens within
/// `config.threshold`, the pair `(p_i, p_j, f^d)` is added to the result.
pub fn find_compatible_properties(
    source: &DataSource,
    target: &DataSource,
    links: &ReferenceLinks,
    config: &SeedingConfig,
) -> Vec<CompatiblePair> {
    let source_properties = source.schema().properties();
    let target_properties = target.schema().properties();
    let mut match_counts = vec![
        vec![vec![0usize; config.functions.len()]; target_properties.len()];
        source_properties.len()
    ];
    let mut inspected = 0usize;

    for link in links.positive().iter().take(config.max_links) {
        let Some(pair) = EntityPair::resolve(link, source, target) else {
            continue;
        };
        inspected += 1;
        // pre-normalise every property of both entities once per link; the
        // token view serves string measures, the lower-cased full values keep
        // structured measures (numeric, geographic, date) meaningful
        let lower = |values: &[String]| -> Vec<String> {
            values.iter().map(|v| v.to_lowercase()).collect()
        };
        let source_tokens: Vec<(Vec<String>, Vec<String>)> = (0..source_properties.len())
            .map(|i| {
                let values = pair.source.values_at(i);
                (normalized_tokens(values), lower(values))
            })
            .collect();
        let target_tokens: Vec<(Vec<String>, Vec<String>)> = (0..target_properties.len())
            .map(|j| {
                let values = pair.target.values_at(j);
                (normalized_tokens(values), lower(values))
            })
            .collect();
        for (i, (tokens_a, values_a)) in source_tokens.iter().enumerate() {
            if tokens_a.is_empty() {
                continue;
            }
            for (j, (tokens_b, values_b)) in target_tokens.iter().enumerate() {
                if tokens_b.is_empty() {
                    continue;
                }
                for (k, function) in config.functions.iter().enumerate() {
                    let token_distance = function.evaluate(tokens_a, tokens_b);
                    let value_distance = function.evaluate(values_a, values_b);
                    if token_distance.min(value_distance) < config.threshold {
                        match_counts[i][j][k] += 1;
                    }
                }
            }
        }
    }

    let mut pairs = Vec::new();
    if inspected == 0 {
        return pairs;
    }
    for (i, by_target) in match_counts.iter().enumerate() {
        for (j, by_function) in by_target.iter().enumerate() {
            for (k, &count) in by_function.iter().enumerate() {
                if count > 0 {
                    pairs.push(CompatiblePair {
                        source_property: source_properties[i].clone(),
                        target_property: target_properties[j].clone(),
                        function: config.functions[k],
                        support: count as f64 / inspected as f64,
                    });
                }
            }
        }
    }
    // most-supported pairs first so that diagnostics (and ties broken by the
    // random generator) favour strongly compatible properties
    pairs.sort_by(|a, b| {
        b.support
            .total_cmp(&a.support)
            .then_with(|| a.source_property.cmp(&b.source_property))
            .then_with(|| a.target_property.cmp(&b.target_property))
    });
    pairs
}

/// Builds the exhaustive list of property pairs (every source property crossed
/// with every target property) — the "Random" strategy of Table 14.
pub fn all_property_pairs(source: &DataSource, target: &DataSource) -> Vec<CompatiblePair> {
    let mut pairs = Vec::new();
    for source_property in source.schema().properties() {
        for target_property in target.schema().properties() {
            pairs.push(CompatiblePair {
                source_property: source_property.clone(),
                target_property: target_property.clone(),
                function: DistanceFunction::Levenshtein,
                support: 0.0,
            });
        }
    }
    pairs
}

#[cfg(test)]
mod tests {
    use super::*;
    use linkdisc_entity::{DataSourceBuilder, ReferenceLinksBuilder};

    /// The example of Figure 3 of the paper: two entities whose `label`
    /// properties hold similar values and whose `point`/`coord` properties
    /// hold identical values.
    fn figure3_sources() -> (DataSource, DataSource, ReferenceLinks) {
        let source = DataSourceBuilder::new("A", ["label", "point", "population"])
            .entity(
                "a1",
                [
                    ("label", "Berlin"),
                    ("point", "52.52 13.40"),
                    ("population", "3500000"),
                ],
            )
            .unwrap()
            .build();
        let target = DataSourceBuilder::new("B", ["label", "coord", "founded"])
            .entity(
                "b1",
                [
                    ("label", "berlin"),
                    ("coord", "52.52 13.40"),
                    ("founded", "1237"),
                ],
            )
            .unwrap()
            .build();
        let links = ReferenceLinksBuilder::new().positive("a1", "b1").build();
        (source, target, links)
    }

    #[test]
    fn finds_label_and_coordinate_pairs() {
        let (source, target, links) = figure3_sources();
        let pairs = find_compatible_properties(&source, &target, &links, &SeedingConfig::default());
        let keys: Vec<(&str, &str)> = pairs
            .iter()
            .map(|p| (p.source_property.as_str(), p.target_property.as_str()))
            .collect();
        assert!(keys.contains(&("label", "label")));
        assert!(keys.contains(&("point", "coord")));
        // population vs founded hold dissimilar numbers and must not pair up
        assert!(!keys.contains(&("population", "founded")));
    }

    #[test]
    fn geographic_function_detects_coordinates_when_probed() {
        let (source, target, links) = figure3_sources();
        let config = SeedingConfig {
            functions: vec![DistanceFunction::Levenshtein, DistanceFunction::Geographic],
            threshold: 1.0,
            max_links: 100,
        };
        let pairs = find_compatible_properties(&source, &target, &links, &config);
        assert!(pairs.iter().any(|p| p.source_property == "point"
            && p.target_property == "coord"
            && p.function == DistanceFunction::Geographic));
    }

    #[test]
    fn no_positive_links_means_no_pairs() {
        let (source, target, _) = figure3_sources();
        let pairs = find_compatible_properties(
            &source,
            &target,
            &ReferenceLinks::default(),
            &SeedingConfig::default(),
        );
        assert!(pairs.is_empty());
    }

    #[test]
    fn unresolvable_links_are_skipped() {
        let (source, target, _) = figure3_sources();
        let links = ReferenceLinksBuilder::new().positive("ghost", "b1").build();
        let pairs = find_compatible_properties(&source, &target, &links, &SeedingConfig::default());
        assert!(pairs.is_empty());
    }

    #[test]
    fn support_reflects_match_frequency() {
        let source = DataSourceBuilder::new("A", ["name"])
            .entity("a1", [("name", "alpha")])
            .unwrap()
            .entity("a2", [("name", "beta")])
            .unwrap()
            .build();
        let target = DataSourceBuilder::new("B", ["name"])
            .entity("b1", [("name", "alpha")])
            .unwrap()
            .entity("b2", [("name", "something else")])
            .unwrap()
            .build();
        let links = ReferenceLinksBuilder::new()
            .positive("a1", "b1")
            .positive("a2", "b2")
            .build();
        let pairs = find_compatible_properties(&source, &target, &links, &SeedingConfig::default());
        assert_eq!(pairs.len(), 1);
        assert!((pairs[0].support - 0.5).abs() < 1e-12);
    }

    #[test]
    fn all_property_pairs_is_the_cross_product() {
        let (source, target, _) = figure3_sources();
        let pairs = all_property_pairs(&source, &target);
        assert_eq!(pairs.len(), 9);
    }

    #[test]
    fn result_is_deterministic() {
        let (source, target, links) = figure3_sources();
        let a = find_compatible_properties(&source, &target, &links, &SeedingConfig::default());
        let b = find_compatible_properties(&source, &target, &links, &SeedingConfig::default());
        assert_eq!(a, b);
    }
}
