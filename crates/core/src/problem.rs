//! The [`linkdisc_gp::Problem`] implementation that ties together the random
//! rule generator, the specialized crossover operators and the MCC fitness.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;

use linkdisc_gp::{CacheStats, Evaluated, FitnessCache, Problem};
use linkdisc_rule::LinkageRule;

use crate::fitness::FitnessFunction;
use crate::operators::CrossoverOperator;
use crate::random::RandomRuleGenerator;
use crate::representation::RepresentationMode;

/// The GenLink learning problem over one training link set.
///
/// Evaluations are memoized across generations in a [`FitnessCache`] keyed
/// by the rule's canonical hash: elitism survivors and duplicate crossover
/// offspring are scored exactly once per learning run.
pub struct GenLinkProblem<'a> {
    fitness: FitnessFunction<'a>,
    generator: RandomRuleGenerator,
    crossover_operators: Vec<CrossoverOperator>,
    representation: RepresentationMode,
    cache: FitnessCache<LinkageRule>,
}

impl<'a> GenLinkProblem<'a> {
    /// Creates the problem from its parts.
    pub fn new(
        fitness: FitnessFunction<'a>,
        generator: RandomRuleGenerator,
        crossover_operators: Vec<CrossoverOperator>,
        representation: RepresentationMode,
    ) -> Self {
        assert!(
            !crossover_operators.is_empty(),
            "at least one crossover operator is required"
        );
        GenLinkProblem {
            fitness,
            generator,
            crossover_operators,
            representation,
            cache: FitnessCache::new(),
        }
    }

    /// The random rule generator (exposed for the seeding experiment, which
    /// inspects the initial population directly).
    pub fn generator(&self) -> &RandomRuleGenerator {
        &self.generator
    }

    /// The cross-generation fitness cache.
    pub fn fitness_cache(&self) -> &FitnessCache<LinkageRule> {
        &self.cache
    }
}

impl Problem for GenLinkProblem<'_> {
    type Genome = LinkageRule;

    fn random_genome(&self, rng: &mut StdRng) -> LinkageRule {
        self.generator.generate(rng)
    }

    fn crossover(
        &self,
        first: &LinkageRule,
        second: &LinkageRule,
        rng: &mut StdRng,
    ) -> LinkageRule {
        let operator = self
            .crossover_operators
            .choose(rng)
            .expect("operator set is not empty");
        let mut child = operator.apply(first, second, rng);
        // keep the offspring inside the configured representation (no-op for
        // the full representation)
        self.representation.enforce(&mut child);
        child
    }

    fn evaluate(&self, genome: &LinkageRule) -> Evaluated {
        self.cache
            .get_or_insert_with(genome.canonical_hash(), genome, || {
                self.fitness.evaluate(genome)
            })
    }

    fn cache_stats(&self) -> Option<CacheStats> {
        let value_cache = self.fitness.value_cache();
        Some(CacheStats {
            fitness_hits: self.cache.hits(),
            fitness_misses: self.cache.misses(),
            fitness_entries: self.cache.len(),
            value_cache_entries: value_cache.len(),
            value_cache_hits: value_cache.hits(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fitness::ParsimonyModel;
    use crate::seeding::CompatiblePair;
    use linkdisc_entity::{DataSourceBuilder, Link, ReferenceLinks, ResolvedReferenceLinks};
    use linkdisc_rule::DistanceFunction;
    use rand::SeedableRng;

    fn pairs() -> Vec<CompatiblePair> {
        vec![CompatiblePair {
            source_property: "label".into(),
            target_property: "label".into(),
            function: DistanceFunction::Levenshtein,
            support: 1.0,
        }]
    }

    #[test]
    fn problem_generates_crosses_and_evaluates() {
        let source = DataSourceBuilder::new("A", ["label"])
            .entity("a1", [("label", "x")])
            .unwrap()
            .build();
        let target = DataSourceBuilder::new("B", ["label"])
            .entity("b1", [("label", "x")])
            .unwrap()
            .entity("b2", [("label", "completely different")])
            .unwrap()
            .build();
        let links = ReferenceLinks::new(vec![Link::new("a1", "b1")], vec![Link::new("a1", "b2")]);
        let resolved = ResolvedReferenceLinks::resolve(&links, &source, &target);
        let fitness = FitnessFunction::new(&resolved, ParsimonyModel::default());
        let generator = RandomRuleGenerator::new(pairs(), RepresentationMode::Full);
        let problem = GenLinkProblem::new(
            fitness,
            generator,
            CrossoverOperator::SPECIALIZED.to_vec(),
            RepresentationMode::Full,
        );
        let mut rng = StdRng::seed_from_u64(0);
        let a = problem.random_genome(&mut rng);
        let b = problem.random_genome(&mut rng);
        let child = problem.crossover(&a, &b, &mut rng);
        assert!(!child.is_empty());
        let evaluated = problem.evaluate(&child);
        assert!(evaluated.fitness <= 1.0);
        assert!((0.0..=1.0).contains(&evaluated.f_measure));
    }

    #[test]
    fn restricted_problem_never_produces_forbidden_rules() {
        let source = DataSourceBuilder::new("A", ["label"])
            .entity("a1", [("label", "x")])
            .unwrap()
            .build();
        let target = source.clone();
        let links = ReferenceLinks::new(vec![Link::new("a1", "a1")], vec![]);
        let resolved = ResolvedReferenceLinks::resolve(&links, &source, &target);
        let fitness = FitnessFunction::new(&resolved, ParsimonyModel::default());
        let generator = RandomRuleGenerator::new(pairs(), RepresentationMode::Boolean);
        let problem = GenLinkProblem::new(
            fitness,
            generator,
            CrossoverOperator::SPECIALIZED.to_vec(),
            RepresentationMode::Boolean,
        );
        let mut rng = StdRng::seed_from_u64(1);
        let mut rules: Vec<LinkageRule> =
            (0..20).map(|_| problem.random_genome(&mut rng)).collect();
        for _ in 0..100 {
            let a = rules[rng.gen_range(0..rules.len())].clone();
            let b = rules[rng.gen_range(0..rules.len())].clone();
            let child = problem.crossover(&a, &b, &mut rng);
            assert!(RepresentationMode::Boolean.permits(&child), "{child:?}");
            rules.push(child);
        }
    }

    use rand::Rng;

    #[test]
    #[should_panic(expected = "crossover operator")]
    fn empty_operator_set_is_rejected() {
        let source = DataSourceBuilder::new("A", ["label"])
            .entity("a1", [("label", "x")])
            .unwrap()
            .build();
        let links = ReferenceLinks::new(vec![], vec![]);
        let resolved = ResolvedReferenceLinks::resolve(&links, &source, &source);
        let fitness = FitnessFunction::new(&resolved, ParsimonyModel::default());
        let generator = RandomRuleGenerator::new(pairs(), RepresentationMode::Full);
        GenLinkProblem::new(fitness, generator, vec![], RepresentationMode::Full);
    }
}
