//! The [`linkdisc_gp::Problem`] implementation that ties together the random
//! rule generator, the specialized crossover operators and the MCC fitness.

use std::collections::HashMap;

use rand::rngs::StdRng;
use rand::seq::SliceRandom;

use linkdisc_gp::{CacheStats, EvalCounters, Evaluated, FitnessCache, PhaseTimers, Problem};
use linkdisc_rule::LinkageRule;
use linkdisc_util::parallel_ordered_map;

use crate::fitness::FitnessFunction;
use crate::operators::CrossoverOperator;
use crate::random::RandomRuleGenerator;
use crate::representation::RepresentationMode;

/// The GenLink learning problem over one training link set.
///
/// Evaluations are memoized across generations in a [`FitnessCache`] keyed
/// by the rule's canonical hash: elitism survivors and duplicate crossover
/// offspring are scored exactly once per learning run.
pub struct GenLinkProblem<'a> {
    fitness: FitnessFunction<'a>,
    generator: RandomRuleGenerator,
    crossover_operators: Vec<CrossoverOperator>,
    representation: RepresentationMode,
    cache: FitnessCache<LinkageRule>,
}

impl<'a> GenLinkProblem<'a> {
    /// Creates the problem from its parts.
    pub fn new(
        fitness: FitnessFunction<'a>,
        generator: RandomRuleGenerator,
        crossover_operators: Vec<CrossoverOperator>,
        representation: RepresentationMode,
    ) -> Self {
        assert!(
            !crossover_operators.is_empty(),
            "at least one crossover operator is required"
        );
        GenLinkProblem {
            fitness,
            generator,
            crossover_operators,
            representation,
            cache: FitnessCache::new(),
        }
    }

    /// The random rule generator (exposed for the seeding experiment, which
    /// inspects the initial population directly).
    pub fn generator(&self) -> &RandomRuleGenerator {
        &self.generator
    }

    /// The cross-generation fitness cache.
    pub fn fitness_cache(&self) -> &FitnessCache<LinkageRule> {
        &self.cache
    }
}

impl Problem for GenLinkProblem<'_> {
    type Genome = LinkageRule;

    fn random_genome(&self, rng: &mut StdRng) -> LinkageRule {
        self.generator.generate(rng)
    }

    fn crossover(
        &self,
        first: &LinkageRule,
        second: &LinkageRule,
        rng: &mut StdRng,
    ) -> LinkageRule {
        let operator = self
            .crossover_operators
            .choose(rng)
            .expect("operator set is not empty");
        let mut child = operator.apply(first, second, rng);
        // keep the offspring inside the configured representation (no-op for
        // the full representation)
        self.representation.enforce(&mut child);
        child
    }

    fn evaluate(&self, genome: &LinkageRule) -> Evaluated {
        self.cache
            .get_or_insert_with(genome.canonical_hash(), genome, || {
                self.fitness.evaluate(genome)
            })
    }

    /// Batched, generation-at-a-time evaluation:
    ///
    /// 1. **sequential** — the generation starts with a fresh shared-leaf
    ///    scope; every genome is resolved against the cross-generation
    ///    fitness cache and deduplicated, so each *distinct new* rule is
    ///    prepared (compiled + plan lowered + leaf indexes drawn from the
    ///    generation's [`linkdisc_matching::SharedLeafIndexes`]) exactly
    ///    once, on one thread — which keeps every cache counter
    ///    deterministic across thread counts;
    /// 2. **parallel** — the prepared rules are scored against the
    ///    reference pool on `threads` workers with an ordered reduction;
    /// 3. **sequential** — results are memoized and fanned back out to the
    ///    input order (duplicates count as fitness-cache hits, exactly as
    ///    they would scoring one by one).
    ///
    /// Evaluation is a pure function of the genome, so the returned vector
    /// is bit-identical at every thread count.
    fn evaluate_batch(&self, genomes: &[LinkageRule], threads: usize) -> Vec<Evaluated> {
        self.fitness.begin_generation();
        /// Where genome `i` gets its evaluation from.
        enum Source {
            Cached(Evaluated),
            /// Index into `distinct`; `first` marks the occurrence that
            /// introduced the entry (later ones are cache hits).
            Computed {
                distinct: usize,
                first: bool,
            },
        }
        let mut distinct: Vec<(u64, &LinkageRule)> = Vec::new();
        let mut by_hash: HashMap<u64, Vec<usize>> = HashMap::new();
        let mut sources: Vec<Source> = Vec::with_capacity(genomes.len());
        for genome in genomes {
            let hash = genome.canonical_hash();
            if let Some(evaluation) = self.cache.get(hash, genome) {
                sources.push(Source::Cached(evaluation));
                continue;
            }
            let bucket = by_hash.entry(hash).or_default();
            match bucket.iter().find(|&&at| distinct[at].1 == genome).copied() {
                Some(at) => sources.push(Source::Computed {
                    distinct: at,
                    first: false,
                }),
                None => {
                    bucket.push(distinct.len());
                    sources.push(Source::Computed {
                        distinct: distinct.len(),
                        first: true,
                    });
                    distinct.push((hash, genome));
                }
            }
        }
        // batch prepare: leaf-reuse accounting stays on this thread (in
        // rule order), missing leaf builds and rule compilation fan out
        let rules: Vec<&LinkageRule> = distinct.iter().map(|&(_, genome)| genome).collect();
        let prepared = self.fitness.prepare_batch(&rules, threads);
        // parallel scoring with ordered reduction
        let inputs: Vec<usize> = (0..distinct.len()).collect();
        let evaluations = parallel_ordered_map(&inputs, threads, |&at| {
            self.fitness
                .evaluate_prepared(distinct[at].1, &prepared[at])
        });
        // memoize (one miss per distinct rule, like the sequential path)
        for ((hash, genome), &evaluation) in distinct.iter().zip(&evaluations) {
            self.cache.get_or_insert_with(*hash, genome, || evaluation);
        }
        sources
            .into_iter()
            .enumerate()
            .map(|(at, source)| match source {
                Source::Cached(evaluation) => evaluation,
                Source::Computed {
                    distinct: entry,
                    first,
                } => {
                    if first {
                        evaluations[entry]
                    } else {
                        // an intra-batch duplicate is a cache hit, exactly
                        // as when scoring one by one (hash reused from the
                        // dedup pass)
                        self.cache
                            .get(distinct[entry].0, &genomes[at])
                            .expect("memoized just above")
                    }
                }
            })
            .collect()
    }

    fn cache_stats(&self) -> Option<CacheStats> {
        let value_cache = self.fitness.value_cache();
        let leaf_reuse = self.fitness.leaf_reuse_stats().unwrap_or_default();
        Some(CacheStats {
            fitness_hits: self.cache.hits(),
            fitness_misses: self.cache.misses(),
            fitness_entries: self.cache.len(),
            value_cache_entries: value_cache.len(),
            value_cache_hits: value_cache.hits(),
            leaf_reuse_hits: leaf_reuse.hits,
            leaf_reuse_misses: leaf_reuse.misses,
            leaf_cross_generation_hits: leaf_reuse.cross_generation_hits,
        })
    }

    fn phase_timers(&self) -> Option<PhaseTimers> {
        Some(self.fitness.phase_timers())
    }

    fn eval_counters(&self) -> Option<EvalCounters> {
        let eval = self.fitness.eval_stats();
        let kernels = self.fitness.kernel_delta();
        Some(EvalCounters {
            pairs: eval.pairs,
            pairs_short_circuited: eval.pairs_short_circuited,
            comparisons_evaluated: eval.comparisons_evaluated,
            comparisons_skipped: eval.comparisons_skipped,
            kernel_fast_path: kernels.fast_path_hits(),
            kernel_fallback: kernels.fallback_hits(),
        })
    }

    /// Steady-state window boundary: retire the shared leaf cache exactly as
    /// a generation boundary would.  Window boundaries fall at deterministic
    /// fold counts, so the retirement schedule — like everything else in the
    /// pipeline — is a pure function of the seed.
    fn on_window(&self) {
        self.fitness.begin_generation();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fitness::ParsimonyModel;
    use crate::seeding::CompatiblePair;
    use linkdisc_entity::{DataSourceBuilder, Link, ReferenceLinks, ResolvedReferenceLinks};
    use linkdisc_rule::DistanceFunction;
    use rand::SeedableRng;

    fn pairs() -> Vec<CompatiblePair> {
        vec![CompatiblePair {
            source_property: "label".into(),
            target_property: "label".into(),
            function: DistanceFunction::Levenshtein,
            support: 1.0,
        }]
    }

    #[test]
    fn problem_generates_crosses_and_evaluates() {
        let source = DataSourceBuilder::new("A", ["label"])
            .entity("a1", [("label", "x")])
            .unwrap()
            .build();
        let target = DataSourceBuilder::new("B", ["label"])
            .entity("b1", [("label", "x")])
            .unwrap()
            .entity("b2", [("label", "completely different")])
            .unwrap()
            .build();
        let links = ReferenceLinks::new(vec![Link::new("a1", "b1")], vec![Link::new("a1", "b2")]);
        let resolved = ResolvedReferenceLinks::resolve(&links, &source, &target);
        let fitness = FitnessFunction::new(&resolved, ParsimonyModel::default());
        let generator = RandomRuleGenerator::new(pairs(), RepresentationMode::Full);
        let problem = GenLinkProblem::new(
            fitness,
            generator,
            CrossoverOperator::SPECIALIZED.to_vec(),
            RepresentationMode::Full,
        );
        let mut rng = StdRng::seed_from_u64(0);
        let a = problem.random_genome(&mut rng);
        let b = problem.random_genome(&mut rng);
        let child = problem.crossover(&a, &b, &mut rng);
        assert!(!child.is_empty());
        let evaluated = problem.evaluate(&child);
        assert!(evaluated.fitness <= 1.0);
        assert!((0.0..=1.0).contains(&evaluated.f_measure));
    }

    #[test]
    fn restricted_problem_never_produces_forbidden_rules() {
        let source = DataSourceBuilder::new("A", ["label"])
            .entity("a1", [("label", "x")])
            .unwrap()
            .build();
        let target = source.clone();
        let links = ReferenceLinks::new(vec![Link::new("a1", "a1")], vec![]);
        let resolved = ResolvedReferenceLinks::resolve(&links, &source, &target);
        let fitness = FitnessFunction::new(&resolved, ParsimonyModel::default());
        let generator = RandomRuleGenerator::new(pairs(), RepresentationMode::Boolean);
        let problem = GenLinkProblem::new(
            fitness,
            generator,
            CrossoverOperator::SPECIALIZED.to_vec(),
            RepresentationMode::Boolean,
        );
        let mut rng = StdRng::seed_from_u64(1);
        let mut rules: Vec<LinkageRule> =
            (0..20).map(|_| problem.random_genome(&mut rng)).collect();
        for _ in 0..100 {
            let a = rules[rng.gen_range(0..rules.len())].clone();
            let b = rules[rng.gen_range(0..rules.len())].clone();
            let child = problem.crossover(&a, &b, &mut rng);
            assert!(RepresentationMode::Boolean.permits(&child), "{child:?}");
            rules.push(child);
        }
    }

    /// A small two-source fixture with enough entities that leaf indexes
    /// are worth building, plus rules sharing one comparison chain.
    fn leaf_fixture() -> (
        linkdisc_entity::DataSource,
        linkdisc_entity::DataSource,
        Vec<LinkageRule>,
    ) {
        let mut a = DataSourceBuilder::new("A", ["label"]);
        let mut b = DataSourceBuilder::new("B", ["label"]);
        for i in 0..8 {
            a = a
                .entity(format!("a{i}"), [("label", format!("entity {i}").as_str())])
                .unwrap();
            b = b
                .entity(format!("b{i}"), [("label", format!("entity {i}").as_str())])
                .unwrap();
        }
        let lev = |threshold: f64| -> LinkageRule {
            linkdisc_rule::compare(
                linkdisc_rule::property("label"),
                linkdisc_rule::property("label"),
                DistanceFunction::Levenshtein,
                threshold,
            )
            .into()
        };
        // thresholds 2.0 and 3.0 derive bounds 1.0 and 1.5 — one Levenshtein
        // budget bucket — while 6.0 (bound 3.0) needs its own leaf
        (a.build(), b.build(), vec![lev(2.0), lev(3.0), lev(6.0)])
    }

    #[test]
    fn batches_share_leaf_indexes_within_and_across_generations() {
        let (source, target, rules) = leaf_fixture();
        let links = ReferenceLinks::new(
            vec![Link::new("a0", "b0"), Link::new("a1", "b1")],
            vec![Link::new("a0", "b2"), Link::new("a1", "b3")],
        );
        let resolved = ResolvedReferenceLinks::resolve(&links, &source, &target);
        let fitness = FitnessFunction::new(&resolved, ParsimonyModel::default());
        let generator = RandomRuleGenerator::new(pairs(), RepresentationMode::Full);
        let problem = GenLinkProblem::new(
            fitness,
            generator,
            CrossoverOperator::SPECIALIZED.to_vec(),
            RepresentationMode::Full,
        );

        // generation 1: three rules, two sharing a leaf bucket
        let batch: Vec<LinkageRule> = rules.clone();
        let first = problem.evaluate_batch(&batch, 1);
        let stats = problem.cache_stats().unwrap();
        assert_eq!(stats.leaf_reuse_hits, 1, "θ 2.0 and θ 3.0 share one leaf");
        assert_eq!(stats.leaf_reuse_misses, 2);

        // generation 2: a *new* rule in the shared bucket hits the leaf
        // *retained* across the generation boundary (its chain recurred in
        // generation 1), while the repeated rules never reach leaf
        // resolution at all (fitness-cache hits)
        let mut next = rules.clone();
        next.push(
            linkdisc_rule::compare(
                linkdisc_rule::property("label"),
                linkdisc_rule::property("label"),
                DistanceFunction::Levenshtein,
                2.5, // bound 1.25: same bucket as θ 2.0/3.0
            )
            .into(),
        );
        let second = problem.evaluate_batch(&next, 1);
        let stats = problem.cache_stats().unwrap();
        assert_eq!(
            stats.leaf_reuse_misses, 2,
            "the retained leaf is not rebuilt for the new rule"
        );
        assert_eq!(stats.leaf_reuse_hits, 2);
        assert_eq!(
            stats.leaf_cross_generation_hits, 1,
            "the new rule's hit crossed the generation boundary"
        );
        assert!(
            stats.fitness_hits >= 3,
            "repeated rules hit the fitness cache"
        );

        // batched evaluation equals one-by-one evaluation, and repeated
        // genomes repeat their scores
        for (rule, evaluation) in rules.iter().zip(&first) {
            assert_eq!(problem.evaluate(rule), *evaluation);
        }
        assert_eq!(&second[..3], &first[..]);
    }

    #[test]
    fn batch_results_are_thread_count_invariant_and_order_preserving() {
        let (source, target, rules) = leaf_fixture();
        let links = ReferenceLinks::new(
            vec![Link::new("a0", "b0")],
            vec![Link::new("a0", "b5"), Link::new("a2", "b7")],
        );
        let resolved = ResolvedReferenceLinks::resolve(&links, &source, &target);
        // a batch with duplicates, in scrambled order
        let mut batch = rules.clone();
        batch.push(rules[0].clone());
        batch.push(rules[2].clone());
        let mut reference: Option<Vec<Evaluated>> = None;
        for threads in [1, 2, 4] {
            let fitness = FitnessFunction::new(&resolved, ParsimonyModel::default());
            let problem = GenLinkProblem::new(
                fitness,
                RandomRuleGenerator::new(pairs(), RepresentationMode::Full),
                CrossoverOperator::SPECIALIZED.to_vec(),
                RepresentationMode::Full,
            );
            let result = problem.evaluate_batch(&batch, threads);
            assert_eq!(result[0], result[3], "duplicates score identically");
            assert_eq!(result[2], result[4]);
            match &reference {
                None => reference = Some(result),
                Some(expected) => assert_eq!(expected, &result, "threads={threads}"),
            }
        }
    }

    use rand::Rng;

    #[test]
    #[should_panic(expected = "crossover operator")]
    fn empty_operator_set_is_rejected() {
        let source = DataSourceBuilder::new("A", ["label"])
            .entity("a1", [("label", "x")])
            .unwrap()
            .build();
        let links = ReferenceLinks::new(vec![], vec![]);
        let resolved = ResolvedReferenceLinks::resolve(&links, &source, &source);
        let fitness = FitnessFunction::new(&resolved, ParsimonyModel::default());
        let generator = RandomRuleGenerator::new(pairs(), RepresentationMode::Full);
        GenLinkProblem::new(fitness, generator, vec![], RepresentationMode::Full);
    }
}
