//! Configuration of the GenLink learner.

use linkdisc_gp::{GpConfig, Replacement};
use linkdisc_similarity::DistanceFunction;
use linkdisc_transform::TransformFunction;

use crate::fitness::ParsimonyModel;
use crate::operators::CrossoverOperator;
use crate::representation::RepresentationMode;
use crate::seeding::SeedingConfig;

/// How the initial population selects property pairs (Table 14 of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SeedingStrategy {
    /// Pre-select compatible property pairs from the positive reference links
    /// (Algorithm 2) — the GenLink default.
    #[default]
    Seeded,
    /// Draw property pairs uniformly from the full cross product of source and
    /// target properties (the "Random" column of Table 14).
    Random,
}

impl SeedingStrategy {
    /// Display name as used in Table 14.
    pub fn name(&self) -> &'static str {
        match self {
            SeedingStrategy::Seeded => "Seeded",
            SeedingStrategy::Random => "Random",
        }
    }
}

/// How the learner schedules breeding and evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum LearningMode {
    /// The generational loop of Algorithm 1: breed a full generation, score
    /// it as one batch, repeat.  This is the paper's algorithm and the
    /// bit-exact reference.
    #[default]
    Generational,
    /// The asynchronous steady-state pipeline: offspring are bred one at a
    /// time, scored by a pool of evaluator workers and folded back under a
    /// replacement rule, with no generation barrier.  Deterministic at any
    /// evaluator count.  Spends the same evaluation budget as the
    /// generational loop (`population_size * max_iterations`) unless
    /// overridden.
    SteadyState(SteadyStateConfig),
}

/// Knobs of the steady-state pipeline (`0` always means "derive a default").
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SteadyStateConfig {
    /// Offspring in flight before a result must be folded back (0 = derived,
    /// see `linkdisc_gp::PipelineConfig::lookahead`).
    pub lookahead: usize,
    /// Folds per statistics window (0 = population size, the moral
    /// equivalent of a generation).
    pub window: usize,
    /// Total evaluation budget (0 = `population_size * max_iterations`, the
    /// generational loop's budget — which keeps quality comparisons fair).
    pub evaluations: usize,
    /// How the offspring's victim is chosen (default: reverse tournament of
    /// the GP tournament size).
    pub replacement: Option<Replacement>,
    /// Number of island subpopulations (1 = one panmictic population).
    pub islands: usize,
    /// Evaluations per island between migrations (0 = derived per-island
    /// population size).
    pub migration_interval: usize,
    /// Individuals copied along the ring at each migration.
    pub migrants: usize,
}

impl Default for SteadyStateConfig {
    fn default() -> Self {
        SteadyStateConfig {
            lookahead: 0,
            window: 0,
            evaluations: 0,
            replacement: None,
            islands: 1,
            migration_interval: 0,
            migrants: 2,
        }
    }
}

impl SteadyStateConfig {
    /// Checks the steady-state knobs for consistency against the GP
    /// parameters; panics with a clear message on nonsensical values.
    pub fn validate(&self, gp: &GpConfig) {
        assert!(self.islands > 0, "at least one island is required");
        assert!(
            gp.population_size.is_multiple_of(self.islands),
            "population size must split evenly across islands"
        );
    }
}

/// Full configuration of a GenLink learning run.
///
/// The defaults reproduce Table 4 of the paper (population 500, 50 iterations,
/// tournament size 5, 75% crossover, 25% mutation, stop at F1 = 1.0) together
/// with the full rule representation, the specialized crossover operators and
/// seeded initialisation.
#[derive(Debug, Clone)]
pub struct GenLinkConfig {
    /// The generic GP parameters (Table 4).
    pub gp: GpConfig,
    /// The rule representation the learner may use (Table 13 ablation).
    pub representation: RepresentationMode,
    /// The crossover operators the learner may apply (Table 15 ablation).
    pub crossover_operators: Vec<CrossoverOperator>,
    /// How the initial population is seeded (Table 14 ablation).
    pub seeding: SeedingStrategy,
    /// Parameters of the compatible-property search (Algorithm 2).
    pub seeding_config: SeedingConfig,
    /// The parsimony pressure of the fitness function.
    pub parsimony: ParsimonyModel,
    /// Probability of appending a transformation to a property of a random
    /// rule (Section 5.1: 50%).
    pub transformation_probability: f64,
    /// Maximum number of comparisons in an initial random rule (Section 5.1:
    /// "up to two comparisons").
    pub max_initial_comparisons: usize,
    /// Distance functions available to the learner (Table 2).
    pub distance_functions: Vec<DistanceFunction>,
    /// Transformation functions available to the learner (Table 1).
    pub transform_functions: Vec<TransformFunction>,
    /// Score rules through MultiBlock candidate indexes over the reference
    /// pool, sharing leaf indexes across the rules of a generation (results
    /// are identical either way; `false` forces every reference pair
    /// through the evaluator).
    pub indexed_fitness: bool,
    /// How breeding and evaluation are scheduled: the paper's generational
    /// loop (the default) or the asynchronous steady-state pipeline.  Both
    /// are deterministic; the generational loop is the bit-exact reference.
    pub mode: LearningMode,
}

impl Default for GenLinkConfig {
    fn default() -> Self {
        GenLinkConfig {
            gp: GpConfig::default(),
            representation: RepresentationMode::Full,
            crossover_operators: CrossoverOperator::SPECIALIZED.to_vec(),
            seeding: SeedingStrategy::Seeded,
            seeding_config: SeedingConfig::default(),
            parsimony: ParsimonyModel::default(),
            transformation_probability: 0.5,
            max_initial_comparisons: 2,
            distance_functions: DistanceFunction::PAPER.to_vec(),
            transform_functions: TransformFunction::PAPER.to_vec(),
            indexed_fitness: true,
            mode: LearningMode::default(),
        }
    }
}

impl GenLinkConfig {
    /// A configuration with the paper's parameters (same as `default`).
    pub fn paper() -> Self {
        GenLinkConfig::default()
    }

    /// A fast configuration for tests, examples and quick experiments: smaller
    /// population and fewer iterations, otherwise identical behaviour.
    pub fn fast() -> Self {
        GenLinkConfig {
            gp: GpConfig {
                population_size: 80,
                max_iterations: 20,
                ..GpConfig::default()
            },
            ..GenLinkConfig::default()
        }
    }

    /// Restricts the learner to a representation (for the Table 13 ablation).
    pub fn with_representation(mut self, representation: RepresentationMode) -> Self {
        self.representation = representation;
        self
    }

    /// Restricts the learner to a crossover operator set (Table 15 ablation).
    pub fn with_crossover_operators(mut self, operators: Vec<CrossoverOperator>) -> Self {
        self.crossover_operators = operators;
        self
    }

    /// Selects the seeding strategy (Table 14 ablation).
    pub fn with_seeding(mut self, seeding: SeedingStrategy) -> Self {
        self.seeding = seeding;
        self
    }

    /// Switches the learner to the steady-state pipeline with default knobs.
    pub fn steady_state(mut self) -> Self {
        self.mode = LearningMode::SteadyState(SteadyStateConfig::default());
        self
    }

    /// Selects the learning mode explicitly.
    pub fn with_mode(mut self, mode: LearningMode) -> Self {
        self.mode = mode;
        self
    }

    /// Checks the configuration for consistency; panics with a clear message
    /// on nonsensical values.  Called by the learner.
    pub fn validate(&self) {
        self.gp.validate();
        assert!(
            !self.crossover_operators.is_empty(),
            "at least one crossover operator is required"
        );
        assert!(
            (0.0..=1.0).contains(&self.transformation_probability),
            "transformation_probability must lie in [0, 1]"
        );
        assert!(
            self.max_initial_comparisons >= 1,
            "initial rules need at least one comparison"
        );
        assert!(
            !self.distance_functions.is_empty(),
            "at least one distance function is required"
        );
        if let LearningMode::SteadyState(steady) = &self.mode {
            steady.validate(&self.gp);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_the_paper() {
        let config = GenLinkConfig::default();
        assert_eq!(config.gp.population_size, 500);
        assert_eq!(config.gp.max_iterations, 50);
        assert_eq!(config.representation, RepresentationMode::Full);
        assert_eq!(config.crossover_operators.len(), 6);
        assert_eq!(config.seeding, SeedingStrategy::Seeded);
        assert!((config.transformation_probability - 0.5).abs() < 1e-12);
        assert_eq!(config.max_initial_comparisons, 2);
        assert_eq!(config.distance_functions.len(), 5);
        assert_eq!(config.transform_functions.len(), 4);
        config.validate();
    }

    #[test]
    fn builders_adjust_single_aspects() {
        let config = GenLinkConfig::fast()
            .with_representation(RepresentationMode::Linear)
            .with_crossover_operators(CrossoverOperator::SUBTREE_ONLY.to_vec())
            .with_seeding(SeedingStrategy::Random);
        assert_eq!(config.representation, RepresentationMode::Linear);
        assert_eq!(config.crossover_operators, vec![CrossoverOperator::Subtree]);
        assert_eq!(config.seeding, SeedingStrategy::Random);
        config.validate();
    }

    #[test]
    #[should_panic(expected = "crossover operator")]
    fn empty_operator_set_is_rejected() {
        GenLinkConfig::default()
            .with_crossover_operators(vec![])
            .validate();
    }

    #[test]
    fn seeding_strategy_names() {
        assert_eq!(SeedingStrategy::Seeded.name(), "Seeded");
        assert_eq!(SeedingStrategy::Random.name(), "Random");
    }

    #[test]
    fn steady_state_mode_validates() {
        let config = GenLinkConfig::fast().steady_state();
        assert!(matches!(config.mode, LearningMode::SteadyState(_)));
        config.validate();
    }

    #[test]
    #[should_panic(expected = "split evenly")]
    fn uneven_island_split_is_rejected() {
        let mut config = GenLinkConfig::fast();
        config.gp.population_size = 81;
        config.mode = LearningMode::SteadyState(SteadyStateConfig {
            islands: 4,
            ..SteadyStateConfig::default()
        });
        config.validate();
    }
}
