//! The fitness function of GenLink (Section 5.2 of the paper).
//!
//! The fitness of a linkage rule is its Matthews correlation coefficient on
//! the training reference links, penalised by the rule size:
//!
//! ```text
//! fitness = MCC − penalty · operatorcount
//! ```
//!
//! The MCC is preferred over the F-measure because it is robust to unbalanced
//! positive/negative link sets; the parsimony pressure prevents rules from
//! growing indefinitely (bloat).

use std::collections::HashMap;
use std::sync::Arc;
use std::time::Instant;

use linkdisc_entity::{Entity, ResolvedReferenceLinks, Schema};
use linkdisc_evaluation::{evaluate_compiled_stats, evaluate_rule, ConfusionMatrix};
use linkdisc_gp::{Evaluated, PhaseAccumulator, PhaseTimers};
use linkdisc_matching::{CandidateScratch, LeafReuseStats, MultiBlockIndex, SharedLeafIndexes};
use linkdisc_rule::{
    CompiledRule, EvalStats, IndexingPlan, LinkageRule, ValueCache, LINK_THRESHOLD,
};
use linkdisc_similarity::KernelCounters;
use std::sync::atomic::{AtomicU64, Ordering};

/// How the size of a rule is penalised.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ParsimonyModel {
    /// Penalty per counted operator (paper: 0.05).
    pub penalty: f64,
    /// Whether property operators count towards the size.  The paper penalises
    /// the "number of operators"; counting the leaf property operators as well
    /// makes the penalty so strong that rules of more than a handful of
    /// comparisons can never pay for themselves, so by default only
    /// comparisons, aggregations and transformations are counted (the choice
    /// is documented in DESIGN.md and can be flipped here).
    pub count_properties: bool,
}

impl Default for ParsimonyModel {
    fn default() -> Self {
        ParsimonyModel {
            penalty: 0.05,
            count_properties: false,
        }
    }
}

impl ParsimonyModel {
    /// The operator count entering the penalty for the given rule.
    pub fn counted_operators(&self, rule: &LinkageRule) -> usize {
        let stats = rule.stats();
        let without_properties = stats.comparisons + stats.aggregations + stats.transformations;
        if self.count_properties {
            stats.operators
        } else {
            without_properties
        }
    }

    /// The penalty subtracted from the MCC.
    pub fn penalty_for(&self, rule: &LinkageRule) -> f64 {
        self.penalty * self.counted_operators(rule) as f64
    }
}

/// The reference-link pool arranged for index-accelerated scoring: the
/// distinct target entities (the fixed "data source" every rule's candidate
/// index is built over), the pairs grouped by source entity, and the
/// generation-scoped [`SharedLeafIndexes`] cache the per-rule indexes draw
/// their leaves from.
#[derive(Debug)]
struct IndexedPool<'a> {
    /// Distinct target entities of the pool, in first-seen order; leaf
    /// indexes map block keys to positions in this vector.
    targets: Vec<&'a Entity>,
    /// Pairs grouped by distinct source entity (one candidate query serves
    /// every pair of a group).
    groups: Vec<SourceGroup<'a>>,
    /// Leaf indexes shared across the rules of one generation.
    shared: SharedLeafIndexes,
}

#[derive(Debug)]
struct SourceGroup<'a> {
    source: &'a Entity,
    /// `(position into targets, is a positive reference pair)` per pair.
    pairs: Vec<(u32, bool)>,
}

impl<'a> IndexedPool<'a> {
    fn build(links: &'a ResolvedReferenceLinks<'a>) -> Self {
        let mut targets: Vec<&'a Entity> = Vec::new();
        let mut target_positions: HashMap<usize, u32> = HashMap::new();
        let mut groups: Vec<SourceGroup<'a>> = Vec::new();
        let mut group_of: HashMap<usize, usize> = HashMap::new();
        let mut add = |pair: &'a linkdisc_entity::EntityPair<'a>, positive: bool| {
            let target_key = pair.target as *const Entity as usize;
            let position = *target_positions.entry(target_key).or_insert_with(|| {
                targets.push(pair.target);
                (targets.len() - 1) as u32
            });
            let source_key = pair.source as *const Entity as usize;
            let group = *group_of.entry(source_key).or_insert_with(|| {
                groups.push(SourceGroup {
                    source: pair.source,
                    pairs: Vec::new(),
                });
                groups.len() - 1
            });
            groups[group].pairs.push((position, positive));
        };
        for pair in links.positive() {
            add(pair, true);
        }
        for pair in links.negative() {
            add(pair, false);
        }
        IndexedPool {
            targets,
            groups,
            shared: SharedLeafIndexes::new(),
        }
    }
}

/// A rule lowered and indexed for scoring against the reference pool: built
/// once (on one thread, so shared-leaf counters stay deterministic), then
/// scored from any worker.
#[derive(Debug)]
pub struct PreparedRule {
    /// The compiled evaluation plan; `None` only when no schema is known
    /// (empty link set), where scoring falls back to the tree walk.
    compiled: Option<CompiledRule>,
    /// The candidate index over the pool's target entities, `None` when the
    /// rule's plan cannot prune (evaluate every pair) — the index-free
    /// fallback.
    index: Option<MultiBlockIndex>,
    /// `true` when the plan proves no pair can reach the link threshold:
    /// skip evaluation entirely, every pair classifies negative.
    nothing_links: bool,
}

/// The GenLink fitness function: MCC with parsimony pressure, plus the
/// training F-measure used by the stop condition.
///
/// Rules are scored through the compiled evaluation plan: the rule is
/// lowered once per evaluation ([`CompiledRule::compile`] is linear in the
/// rule size) and every reference pair then runs the flat instruction list
/// against a [`ValueCache`] shared across the whole learning run — so a
/// transformation chain appearing anywhere in the population is computed at
/// most once per entity per run.
///
/// On top of the compiled path sits **index-accelerated scoring**: the
/// rule's [`IndexingPlan`] (the same lossless candidate algebra the matching
/// engine executes) is run over the pool's distinct target entities, and
/// only pairs inside the candidate set are evaluated — every other pair is
/// classified "no link" outright, which the overlap guarantee makes exact
/// (a pair scoring ≥ the link threshold is always a candidate).  The
/// per-comparison leaf indexes are drawn from a generation-scoped
/// [`SharedLeafIndexes`] cache keyed by `(chain hash, measure, bound
/// bucket)`, so the rules of a population stop re-deriving identical leaf
/// indexes rule by rule.
#[derive(Debug, Clone)]
pub struct FitnessFunction<'a> {
    links: &'a ResolvedReferenceLinks<'a>,
    parsimony: ParsimonyModel,
    schemas: Option<(Arc<Schema>, Arc<Schema>)>,
    value_cache: Arc<ValueCache<'a>>,
    /// The indexed pool arrangement; `None` disables index acceleration
    /// (every pair is evaluated, the pre-PR-4 behaviour).
    pool: Option<Arc<IndexedPool<'a>>>,
    /// Per-phase busy time: compile (rule compilation + plan lowering),
    /// index (leaf resolution and index assembly), score (confusion-matrix
    /// evaluation).  Thread-safe — workers add durations concurrently.
    timers: Arc<PhaseAccumulator>,
    /// Cumulative short-circuit counters of the bounded evaluator across
    /// every scored pair of the run.  Thread-safe — workers flush one
    /// batched add per confusion matrix, not one per pair.
    eval_stats: Arc<SharedEvalStats>,
    /// Process-wide kernel counters at construction time, so
    /// [`FitnessFunction::kernel_delta`] reports dispatches attributable to
    /// this run (approximately — concurrent runs in the same process bleed
    /// into each other's deltas).
    kernels_baseline: KernelCounters,
}

/// Atomic accumulation cell for [`EvalStats`], shared across scoring
/// workers.
#[derive(Debug, Default)]
struct SharedEvalStats {
    pairs: AtomicU64,
    pairs_short_circuited: AtomicU64,
    comparisons_evaluated: AtomicU64,
    comparisons_skipped: AtomicU64,
}

impl SharedEvalStats {
    fn record(&self, eval: &EvalStats) {
        self.pairs.fetch_add(eval.pairs, Ordering::Relaxed);
        self.pairs_short_circuited
            .fetch_add(eval.pairs_short_circuited, Ordering::Relaxed);
        self.comparisons_evaluated
            .fetch_add(eval.comparisons_evaluated, Ordering::Relaxed);
        self.comparisons_skipped
            .fetch_add(eval.comparisons_skipped, Ordering::Relaxed);
    }

    fn snapshot(&self) -> EvalStats {
        EvalStats {
            pairs: self.pairs.load(Ordering::Relaxed),
            pairs_short_circuited: self.pairs_short_circuited.load(Ordering::Relaxed),
            comparisons_evaluated: self.comparisons_evaluated.load(Ordering::Relaxed),
            comparisons_skipped: self.comparisons_skipped.load(Ordering::Relaxed),
        }
    }
}

impl<'a> FitnessFunction<'a> {
    /// Creates a fitness function over resolved training links, with
    /// index-accelerated scoring enabled.
    pub fn new(links: &'a ResolvedReferenceLinks<'a>, parsimony: ParsimonyModel) -> Self {
        let schemas = links
            .positive()
            .first()
            .or_else(|| links.negative().first())
            .map(|pair| (pair.source.schema().clone(), pair.target.schema().clone()));
        let pool = (!links.is_empty()).then(|| Arc::new(IndexedPool::build(links)));
        FitnessFunction {
            links,
            parsimony,
            schemas,
            value_cache: Arc::new(ValueCache::new()),
            pool,
            timers: Arc::new(PhaseAccumulator::new()),
            eval_stats: Arc::new(SharedEvalStats::default()),
            kernels_baseline: KernelCounters::snapshot(),
        }
    }

    /// Enables or disables index-accelerated scoring (the results are
    /// identical either way; disabling only forces every pair through the
    /// evaluator).
    pub fn with_indexing(mut self, enabled: bool) -> Self {
        if !enabled {
            self.pool = None;
        } else if self.pool.is_none() && !self.links.is_empty() {
            self.pool = Some(Arc::new(IndexedPool::build(self.links)));
        }
        self
    }

    /// The value cache backing compiled evaluation (exposed so the problem
    /// can report cache statistics per iteration).
    pub fn value_cache(&self) -> &ValueCache<'a> {
        &self.value_cache
    }

    /// Cumulative hit/miss statistics of the shared leaf-index cache
    /// (`None` when index acceleration is off).
    pub fn leaf_reuse_stats(&self) -> Option<LeafReuseStats> {
        self.pool.as_ref().map(|pool| pool.shared.stats())
    }

    /// Cumulative per-phase busy time of compilation, indexing and scoring
    /// (summed across every thread that worked in the phase).
    pub fn phase_timers(&self) -> PhaseTimers {
        self.timers.snapshot()
    }

    /// Cumulative short-circuit counters of the bounded evaluator over every
    /// pair this fitness function has scored.
    pub fn eval_stats(&self) -> EvalStats {
        self.eval_stats.snapshot()
    }

    /// Kernel dispatch counters since this fitness function was constructed.
    /// Process-wide delta: concurrent learners in the same process bleed into
    /// each other's counts, so treat the numbers as diagnostics, not an
    /// audit.
    pub fn kernel_delta(&self) -> KernelCounters {
        KernelCounters::snapshot().since(&self.kernels_baseline)
    }

    /// Enables request-count-based retirement of the shared leaf cache:
    /// after every `requests` leaf lookups, unused leaves are dropped — the
    /// steady-state substitute for the per-generation
    /// [`FitnessFunction::begin_generation`] boundary, bounding cache growth
    /// without a breeding barrier (0 disables; no-op when index acceleration
    /// is off).  See
    /// [`linkdisc_matching::SharedLeafIndexes::auto_retire_after`].
    pub fn auto_retire_leaves(&self, requests: u64) {
        if let Some(pool) = &self.pool {
            pool.shared.auto_retire_after(requests);
        }
    }

    /// Marks a generation boundary: retires the shared leaf cache.  Leaves
    /// whose chains were requested in the generation just ended are
    /// **retained** (elitism and selection make the best rules — and their
    /// comparison chains — recur every generation, so those leaves would
    /// otherwise be rebuilt each time), under the cache's capacity bound;
    /// chains that died out of the population are dropped so mutation churn
    /// cannot accumulate memory.  Sound because the reference pool is fixed
    /// for the life of the learner (enforced by the cache's pool stamp).
    /// Counters survive.
    pub fn begin_generation(&self) {
        if let Some(pool) = &self.pool {
            pool.shared.retire();
        }
    }

    /// Lowers, compiles and indexes one rule against the pool.  Runs the
    /// whole shared-leaf interaction, so calling it for a generation's rules
    /// from a single thread makes the reuse counters deterministic; the
    /// returned [`PreparedRule`] is then scored from any worker.
    pub fn prepare(&self, rule: &LinkageRule) -> PreparedRule {
        let Some((source_schema, target_schema)) = &self.schemas else {
            return PreparedRule {
                compiled: None,
                index: None,
                nothing_links: false,
            };
        };
        let compile_timer = Instant::now();
        let compiled = Some(CompiledRule::compile(rule, source_schema, target_schema));
        let Some(pool) = &self.pool else {
            self.timers.add_compile(compile_timer.elapsed());
            return PreparedRule {
                compiled,
                index: None,
                nothing_links: false,
            };
        };
        let plan =
            IndexingPlan::lower(rule, source_schema, target_schema, LINK_THRESHOLD).canonicalized();
        self.timers.add_compile(compile_timer.elapsed());
        if plan.is_empty_result() {
            return PreparedRule {
                compiled,
                index: None,
                nothing_links: true,
            };
        }
        if plan.is_exhaustive() {
            // the plan cannot prune anything: indexing would only add cost
            return PreparedRule {
                compiled,
                index: None,
                nothing_links: false,
            };
        }
        let index_timer = Instant::now();
        let index =
            MultiBlockIndex::build_shared(plan, &pool.targets, &self.value_cache, &pool.shared);
        self.timers.add_index(index_timer.elapsed());
        PreparedRule {
            compiled,
            index: Some(index),
            nothing_links: false,
        }
    }

    /// Prepares a whole generation's distinct rules:
    ///
    /// * plan lowering and rule compilation fan out over `threads` workers
    ///   (pure per-rule work, ordered reduction),
    /// * the shared-leaf cache resolves every leaf request **on the calling
    ///   thread, in rule order** — so hit/miss counters are deterministic —
    ///   while the missing leaf indexes themselves are built in parallel
    ///   (see [`SharedLeafIndexes::ensure_plans`]),
    /// * indexes are then assembled by pure lookup.
    pub fn prepare_batch(&self, rules: &[&LinkageRule], threads: usize) -> Vec<PreparedRule> {
        let Some((source_schema, target_schema)) = &self.schemas else {
            return rules
                .iter()
                .map(|_| PreparedRule {
                    compiled: None,
                    index: None,
                    nothing_links: false,
                })
                .collect();
        };
        let indexing = self.pool.is_some();
        let lowered: Vec<(CompiledRule, Option<IndexingPlan>)> =
            linkdisc_util::parallel_ordered_map(rules, threads, |rule| {
                // timed inside the fan-out so compile time sums busy
                // seconds across workers
                let compile_timer = Instant::now();
                let compiled = CompiledRule::compile(rule, source_schema, target_schema);
                let plan = indexing.then(|| {
                    IndexingPlan::lower(rule, source_schema, target_schema, LINK_THRESHOLD)
                        .canonicalized()
                });
                self.timers.add_compile(compile_timer.elapsed());
                (compiled, plan)
            });
        let Some(pool) = &self.pool else {
            return lowered
                .into_iter()
                .map(|(compiled, _)| PreparedRule {
                    compiled: Some(compiled),
                    index: None,
                    nothing_links: false,
                })
                .collect();
        };
        let index_timer = Instant::now();
        let plans: Vec<&IndexingPlan> = lowered
            .iter()
            .filter_map(|(_, plan)| plan.as_ref())
            .filter(|plan| !plan.is_empty_result() && !plan.is_exhaustive())
            .collect();
        pool.shared
            .ensure_plans(&plans, &pool.targets, &self.value_cache, threads);
        self.timers.add_index(index_timer.elapsed());
        lowered
            .into_iter()
            .map(|(compiled, plan)| {
                let plan = plan.expect("indexing enabled");
                if plan.is_empty_result() {
                    return PreparedRule {
                        compiled: Some(compiled),
                        index: None,
                        nothing_links: true,
                    };
                }
                if plan.is_exhaustive() {
                    return PreparedRule {
                        compiled: Some(compiled),
                        index: None,
                        nothing_links: false,
                    };
                }
                let index = MultiBlockIndex::build_shared_prepared(
                    plan,
                    &pool.targets,
                    &self.value_cache,
                    &pool.shared,
                );
                PreparedRule {
                    compiled: Some(compiled),
                    index: Some(index),
                    nothing_links: false,
                }
            })
            .collect()
    }

    /// The confusion matrix of a rule on the training links, via the
    /// compiled fast path (falls back to the tree walk when the link set is
    /// empty and no schema is known).
    pub fn confusion(&self, rule: &LinkageRule) -> ConfusionMatrix {
        if self.schemas.is_none() {
            return evaluate_rule(rule, self.links);
        }
        let prepared = self.prepare(rule);
        self.confusion_prepared(&prepared)
    }

    /// The confusion matrix of an already-prepared rule.  Exact: candidate
    /// generation is lossless at the link threshold, so a pair outside the
    /// candidate set can never classify as a link.
    fn confusion_prepared(&self, prepared: &PreparedRule) -> ConfusionMatrix {
        if prepared.nothing_links {
            let mut matrix = ConfusionMatrix::default();
            for _ in self.links.positive() {
                matrix.record_positive(false);
            }
            for _ in self.links.negative() {
                matrix.record_negative(false);
            }
            return matrix;
        }
        let compiled = prepared
            .compiled
            .as_ref()
            .expect("prepared with a schema whenever links exist");
        let (Some(index), Some(pool)) = (&prepared.index, &self.pool) else {
            let mut eval = EvalStats::default();
            let matrix =
                evaluate_compiled_stats(compiled, self.links, &self.value_cache, &mut eval);
            self.eval_stats.record(&eval);
            return matrix;
        };
        let mut matrix = ConfusionMatrix::default();
        let mut eval = EvalStats::default();
        let mut scratch = CandidateScratch::new();
        let mut candidate_marks = vec![false; pool.targets.len()];
        for group in &pool.groups {
            let candidates =
                index.candidates(group.source, &self.value_cache, &mut scratch, &mut []);
            for &position in &candidates {
                candidate_marks[position as usize] = true;
            }
            for &(position, positive) in &group.pairs {
                let is_link = candidate_marks[position as usize] && {
                    let target = pool.targets[position as usize];
                    let score = compiled.evaluate_bounded_two_stats(
                        group.source,
                        target,
                        &self.value_cache,
                        &self.value_cache,
                        LINK_THRESHOLD,
                        &mut eval,
                    );
                    score >= LINK_THRESHOLD
                };
                if positive {
                    matrix.record_positive(is_link);
                } else {
                    matrix.record_negative(is_link);
                }
            }
            for &position in &candidates {
                candidate_marks[position as usize] = false;
            }
            scratch.recycle(candidates);
        }
        self.eval_stats.record(&eval);
        matrix
    }

    /// Evaluates a prepared rule (parallel-safe; see
    /// [`FitnessFunction::prepare`]).
    pub fn evaluate_prepared(&self, rule: &LinkageRule, prepared: &PreparedRule) -> Evaluated {
        if rule.is_empty() {
            return Evaluated {
                fitness: -2.0,
                f_measure: 0.0,
            };
        }
        let score_timer = Instant::now();
        let matrix = if self.schemas.is_some() {
            self.confusion_prepared(prepared)
        } else {
            evaluate_rule(rule, self.links)
        };
        self.timers.add_score(score_timer.elapsed());
        Evaluated {
            fitness: matrix.mcc() - self.parsimony.penalty_for(rule),
            f_measure: matrix.f_measure(),
        }
    }

    /// The confusion matrix via the tree-walking reference oracle (kept for
    /// parity checks and debugging).
    pub fn confusion_tree_walk(&self, rule: &LinkageRule) -> ConfusionMatrix {
        evaluate_rule(rule, self.links)
    }

    /// Evaluates a rule: `fitness = MCC − penalty`, `f_measure` = training F1.
    ///
    /// The empty rule is assigned a fitness below every reachable value so it
    /// never survives selection.
    pub fn evaluate(&self, rule: &LinkageRule) -> Evaluated {
        if rule.is_empty() {
            return Evaluated {
                fitness: -2.0,
                f_measure: 0.0,
            };
        }
        if self.schemas.is_some() {
            // prepare + score so each phase lands in its timer — the path
            // the steady-state evaluator workers take per genome
            let prepared = self.prepare(rule);
            return self.evaluate_prepared(rule, &prepared);
        }
        let score_timer = Instant::now();
        let matrix = self.confusion(rule);
        self.timers.add_score(score_timer.elapsed());
        Evaluated {
            fitness: matrix.mcc() - self.parsimony.penalty_for(rule),
            f_measure: matrix.f_measure(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use linkdisc_entity::{DataSource, DataSourceBuilder, Link, ReferenceLinks};
    use linkdisc_rule::{
        aggregation, compare, property, transform, AggregationFunction, DistanceFunction,
        RuleBuilder, TransformFunction,
    };
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn sources() -> (DataSource, DataSource, ReferenceLinks) {
        let mut a = DataSourceBuilder::new("A", ["label"]);
        let mut b = DataSourceBuilder::new("B", ["label"]);
        let mut positives = Vec::new();
        for i in 0..12 {
            let name = format!("entity number {i}");
            a = a
                .entity(format!("a{i}"), [("label", name.as_str())])
                .unwrap();
            b = b
                .entity(format!("b{i}"), [("label", name.to_uppercase().as_str())])
                .unwrap();
            positives.push(Link::new(format!("a{i}"), format!("b{i}")));
        }
        let mut rng = StdRng::seed_from_u64(1);
        let links = ReferenceLinks::with_generated_negatives(positives, &mut rng);
        (a.build(), b.build(), links)
    }

    #[test]
    fn good_rules_score_higher_than_bad_rules() {
        let (a, b, links) = sources();
        let resolved = linkdisc_entity::ResolvedReferenceLinks::resolve(&links, &a, &b);
        let fitness = FitnessFunction::new(&resolved, ParsimonyModel::default());

        let good: linkdisc_rule::LinkageRule = compare(
            transform(TransformFunction::LowerCase, vec![property("label")]),
            transform(TransformFunction::LowerCase, vec![property("label")]),
            DistanceFunction::Levenshtein,
            0.5,
        )
        .into();
        let bad = RuleBuilder::new()
            .compare_property("label", DistanceFunction::Equality, 0.5)
            .build();
        let good_eval = fitness.evaluate(&good);
        let bad_eval = fitness.evaluate(&bad);
        assert!(good_eval.fitness > bad_eval.fitness);
        assert_eq!(good_eval.f_measure, 1.0);
        assert!(bad_eval.f_measure < 0.1);
    }

    #[test]
    fn parsimony_penalises_larger_rules_with_equal_accuracy() {
        let (a, b, links) = sources();
        let resolved = linkdisc_entity::ResolvedReferenceLinks::resolve(&links, &a, &b);
        let fitness = FitnessFunction::new(&resolved, ParsimonyModel::default());
        let small: linkdisc_rule::LinkageRule = compare(
            transform(TransformFunction::LowerCase, vec![property("label")]),
            transform(TransformFunction::LowerCase, vec![property("label")]),
            DistanceFunction::Levenshtein,
            0.5,
        )
        .into();
        let large: linkdisc_rule::LinkageRule = aggregation(
            AggregationFunction::Min,
            vec![small.root().unwrap().clone(), small.root().unwrap().clone()],
        )
        .into();
        let small_eval = fitness.evaluate(&small);
        let large_eval = fitness.evaluate(&large);
        assert_eq!(small_eval.f_measure, large_eval.f_measure);
        assert!(small_eval.fitness > large_eval.fitness);
    }

    #[test]
    fn empty_rule_has_the_lowest_fitness() {
        let (a, b, links) = sources();
        let resolved = linkdisc_entity::ResolvedReferenceLinks::resolve(&links, &a, &b);
        let fitness = FitnessFunction::new(&resolved, ParsimonyModel::default());
        let empty_eval = fitness.evaluate(&linkdisc_rule::LinkageRule::empty());
        assert_eq!(empty_eval.fitness, -2.0);
        let bad = RuleBuilder::new()
            .compare_property("label", DistanceFunction::Equality, 0.5)
            .build();
        assert!(fitness.evaluate(&bad).fitness > empty_eval.fitness);
    }

    #[test]
    fn parsimony_counting_modes() {
        let rule: linkdisc_rule::LinkageRule = compare(
            transform(TransformFunction::LowerCase, vec![property("label")]),
            property("label"),
            DistanceFunction::Levenshtein,
            1.0,
        )
        .into();
        let without = ParsimonyModel::default();
        let with = ParsimonyModel {
            count_properties: true,
            ..ParsimonyModel::default()
        };
        assert_eq!(without.counted_operators(&rule), 2);
        assert_eq!(with.counted_operators(&rule), 4);
        assert!((without.penalty_for(&rule) - 0.10).abs() < 1e-12);
        assert!((with.penalty_for(&rule) - 0.20).abs() < 1e-12);
    }
}
