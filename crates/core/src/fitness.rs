//! The fitness function of GenLink (Section 5.2 of the paper).
//!
//! The fitness of a linkage rule is its Matthews correlation coefficient on
//! the training reference links, penalised by the rule size:
//!
//! ```text
//! fitness = MCC − penalty · operatorcount
//! ```
//!
//! The MCC is preferred over the F-measure because it is robust to unbalanced
//! positive/negative link sets; the parsimony pressure prevents rules from
//! growing indefinitely (bloat).

use std::sync::Arc;

use linkdisc_entity::{ResolvedReferenceLinks, Schema};
use linkdisc_evaluation::{evaluate_compiled, evaluate_rule, ConfusionMatrix};
use linkdisc_gp::Evaluated;
use linkdisc_rule::{CompiledRule, LinkageRule, ValueCache};

/// How the size of a rule is penalised.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ParsimonyModel {
    /// Penalty per counted operator (paper: 0.05).
    pub penalty: f64,
    /// Whether property operators count towards the size.  The paper penalises
    /// the "number of operators"; counting the leaf property operators as well
    /// makes the penalty so strong that rules of more than a handful of
    /// comparisons can never pay for themselves, so by default only
    /// comparisons, aggregations and transformations are counted (the choice
    /// is documented in DESIGN.md and can be flipped here).
    pub count_properties: bool,
}

impl Default for ParsimonyModel {
    fn default() -> Self {
        ParsimonyModel {
            penalty: 0.05,
            count_properties: false,
        }
    }
}

impl ParsimonyModel {
    /// The operator count entering the penalty for the given rule.
    pub fn counted_operators(&self, rule: &LinkageRule) -> usize {
        let stats = rule.stats();
        let without_properties = stats.comparisons + stats.aggregations + stats.transformations;
        if self.count_properties {
            stats.operators
        } else {
            without_properties
        }
    }

    /// The penalty subtracted from the MCC.
    pub fn penalty_for(&self, rule: &LinkageRule) -> f64 {
        self.penalty * self.counted_operators(rule) as f64
    }
}

/// The GenLink fitness function: MCC with parsimony pressure, plus the
/// training F-measure used by the stop condition.
///
/// Rules are scored through the compiled evaluation plan: the rule is
/// lowered once per evaluation ([`CompiledRule::compile`] is linear in the
/// rule size) and every reference pair then runs the flat instruction list
/// against a [`ValueCache`] shared across the whole learning run — so a
/// transformation chain appearing anywhere in the population is computed at
/// most once per entity per run.
#[derive(Debug, Clone)]
pub struct FitnessFunction<'a> {
    links: &'a ResolvedReferenceLinks<'a>,
    parsimony: ParsimonyModel,
    schemas: Option<(Arc<Schema>, Arc<Schema>)>,
    value_cache: Arc<ValueCache<'a>>,
}

impl<'a> FitnessFunction<'a> {
    /// Creates a fitness function over resolved training links.
    pub fn new(links: &'a ResolvedReferenceLinks<'a>, parsimony: ParsimonyModel) -> Self {
        let schemas = links
            .positive()
            .first()
            .or_else(|| links.negative().first())
            .map(|pair| (pair.source.schema().clone(), pair.target.schema().clone()));
        FitnessFunction {
            links,
            parsimony,
            schemas,
            value_cache: Arc::new(ValueCache::new()),
        }
    }

    /// The value cache backing compiled evaluation (exposed so the problem
    /// can report cache statistics per iteration).
    pub fn value_cache(&self) -> &ValueCache<'a> {
        &self.value_cache
    }

    /// The confusion matrix of a rule on the training links, via the
    /// compiled fast path (falls back to the tree walk when the link set is
    /// empty and no schema is known).
    pub fn confusion(&self, rule: &LinkageRule) -> ConfusionMatrix {
        match &self.schemas {
            Some((source_schema, target_schema)) => {
                let compiled = CompiledRule::compile(rule, source_schema, target_schema);
                evaluate_compiled(&compiled, self.links, &self.value_cache)
            }
            None => evaluate_rule(rule, self.links),
        }
    }

    /// The confusion matrix via the tree-walking reference oracle (kept for
    /// parity checks and debugging).
    pub fn confusion_tree_walk(&self, rule: &LinkageRule) -> ConfusionMatrix {
        evaluate_rule(rule, self.links)
    }

    /// Evaluates a rule: `fitness = MCC − penalty`, `f_measure` = training F1.
    ///
    /// The empty rule is assigned a fitness below every reachable value so it
    /// never survives selection.
    pub fn evaluate(&self, rule: &LinkageRule) -> Evaluated {
        if rule.is_empty() {
            return Evaluated {
                fitness: -2.0,
                f_measure: 0.0,
            };
        }
        let matrix = self.confusion(rule);
        Evaluated {
            fitness: matrix.mcc() - self.parsimony.penalty_for(rule),
            f_measure: matrix.f_measure(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use linkdisc_entity::{DataSource, DataSourceBuilder, Link, ReferenceLinks};
    use linkdisc_rule::{
        aggregation, compare, property, transform, AggregationFunction, DistanceFunction,
        RuleBuilder, TransformFunction,
    };
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn sources() -> (DataSource, DataSource, ReferenceLinks) {
        let mut a = DataSourceBuilder::new("A", ["label"]);
        let mut b = DataSourceBuilder::new("B", ["label"]);
        let mut positives = Vec::new();
        for i in 0..12 {
            let name = format!("entity number {i}");
            a = a
                .entity(format!("a{i}"), [("label", name.as_str())])
                .unwrap();
            b = b
                .entity(format!("b{i}"), [("label", name.to_uppercase().as_str())])
                .unwrap();
            positives.push(Link::new(format!("a{i}"), format!("b{i}")));
        }
        let mut rng = StdRng::seed_from_u64(1);
        let links = ReferenceLinks::with_generated_negatives(positives, &mut rng);
        (a.build(), b.build(), links)
    }

    #[test]
    fn good_rules_score_higher_than_bad_rules() {
        let (a, b, links) = sources();
        let resolved = linkdisc_entity::ResolvedReferenceLinks::resolve(&links, &a, &b);
        let fitness = FitnessFunction::new(&resolved, ParsimonyModel::default());

        let good: linkdisc_rule::LinkageRule = compare(
            transform(TransformFunction::LowerCase, vec![property("label")]),
            transform(TransformFunction::LowerCase, vec![property("label")]),
            DistanceFunction::Levenshtein,
            0.5,
        )
        .into();
        let bad = RuleBuilder::new()
            .compare_property("label", DistanceFunction::Equality, 0.5)
            .build();
        let good_eval = fitness.evaluate(&good);
        let bad_eval = fitness.evaluate(&bad);
        assert!(good_eval.fitness > bad_eval.fitness);
        assert_eq!(good_eval.f_measure, 1.0);
        assert!(bad_eval.f_measure < 0.1);
    }

    #[test]
    fn parsimony_penalises_larger_rules_with_equal_accuracy() {
        let (a, b, links) = sources();
        let resolved = linkdisc_entity::ResolvedReferenceLinks::resolve(&links, &a, &b);
        let fitness = FitnessFunction::new(&resolved, ParsimonyModel::default());
        let small: linkdisc_rule::LinkageRule = compare(
            transform(TransformFunction::LowerCase, vec![property("label")]),
            transform(TransformFunction::LowerCase, vec![property("label")]),
            DistanceFunction::Levenshtein,
            0.5,
        )
        .into();
        let large: linkdisc_rule::LinkageRule = aggregation(
            AggregationFunction::Min,
            vec![small.root().unwrap().clone(), small.root().unwrap().clone()],
        )
        .into();
        let small_eval = fitness.evaluate(&small);
        let large_eval = fitness.evaluate(&large);
        assert_eq!(small_eval.f_measure, large_eval.f_measure);
        assert!(small_eval.fitness > large_eval.fitness);
    }

    #[test]
    fn empty_rule_has_the_lowest_fitness() {
        let (a, b, links) = sources();
        let resolved = linkdisc_entity::ResolvedReferenceLinks::resolve(&links, &a, &b);
        let fitness = FitnessFunction::new(&resolved, ParsimonyModel::default());
        let empty_eval = fitness.evaluate(&linkdisc_rule::LinkageRule::empty());
        assert_eq!(empty_eval.fitness, -2.0);
        let bad = RuleBuilder::new()
            .compare_property("label", DistanceFunction::Equality, 0.5)
            .build();
        assert!(fitness.evaluate(&bad).fitness > empty_eval.fitness);
    }

    #[test]
    fn parsimony_counting_modes() {
        let rule: linkdisc_rule::LinkageRule = compare(
            transform(TransformFunction::LowerCase, vec![property("label")]),
            property("label"),
            DistanceFunction::Levenshtein,
            1.0,
        )
        .into();
        let without = ParsimonyModel::default();
        let with = ParsimonyModel {
            count_properties: true,
            ..ParsimonyModel::default()
        };
        assert_eq!(without.counted_operators(&rule), 2);
        assert_eq!(with.counted_operators(&rule), 4);
        assert!((without.penalty_for(&rule) - 0.10).abs() < 1e-12);
        assert!((with.penalty_for(&rule) - 0.20).abs() < 1e-12);
    }
}
