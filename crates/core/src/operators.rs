//! The specialized crossover operators of GenLink (Section 5.3 of the paper).
//!
//! Instead of plain subtree crossover, GenLink uses a set of operators that
//! each evolve *one aspect* of a linkage rule:
//!
//! | operator        | learns                                        |
//! |-----------------|-----------------------------------------------|
//! | function        | the best distance/transformation/aggregation function |
//! | operators       | which comparisons to combine                  |
//! | aggregation     | the aggregation hierarchy (non-linearity)     |
//! | transformation  | chains of transformations                     |
//! | threshold       | the distance thresholds                       |
//! | weight          | the weights of a weighted-mean aggregation    |
//!
//! Plain subtree crossover is also provided as the baseline of the ablation
//! in Table 15.  Mutation is realised by the engine as headless-chicken
//! crossover: one of these operators applied to a rule and a freshly generated
//! random rule.
//!
//! All operators are *total*: when a rule does not contain the node kind an
//! operator needs (e.g. threshold crossover on a rule without comparisons),
//! the operator degrades gracefully and returns a copy of the first rule, so
//! the engine never stalls.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::Rng;

use linkdisc_rule::{
    AggregationFunction, LinkageRule, SimilarityOperator, TransformationOperator, ValueOperator,
};

/// The crossover operators available to the learner.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CrossoverOperator {
    /// Interchanges a distance, transformation or aggregation function
    /// (Algorithm 3).
    Function,
    /// Recombines the comparison sets of two aggregations (Algorithm 4).
    Operators,
    /// Replaces an aggregation-or-comparison subtree with one of the other
    /// rule, building aggregation hierarchies (Algorithm 5).
    Aggregation,
    /// Recombines transformation chains by a two-point crossover on the
    /// transformation paths (Algorithm 6).
    Transformation,
    /// Averages the thresholds of two comparisons (Algorithm 7).
    Threshold,
    /// Averages the weights of two comparison/aggregation operators.
    Weight,
    /// Plain subtree crossover (baseline of Table 15).
    Subtree,
}

impl CrossoverOperator {
    /// The specialized operator set of GenLink ("Our Approach" in Table 15).
    pub const SPECIALIZED: [CrossoverOperator; 6] = [
        CrossoverOperator::Function,
        CrossoverOperator::Operators,
        CrossoverOperator::Aggregation,
        CrossoverOperator::Transformation,
        CrossoverOperator::Threshold,
        CrossoverOperator::Weight,
    ];

    /// The baseline operator set ("Subtree C." in Table 15).
    pub const SUBTREE_ONLY: [CrossoverOperator; 1] = [CrossoverOperator::Subtree];

    /// Short name for logs and experiment output.
    pub fn name(&self) -> &'static str {
        match self {
            CrossoverOperator::Function => "function",
            CrossoverOperator::Operators => "operators",
            CrossoverOperator::Aggregation => "aggregation",
            CrossoverOperator::Transformation => "transformation",
            CrossoverOperator::Threshold => "threshold",
            CrossoverOperator::Weight => "weight",
            CrossoverOperator::Subtree => "subtree",
        }
    }

    /// Applies the operator to two parent rules, producing a child rule.
    ///
    /// The child is always derived from `first` (the paper's `r1`); `second`
    /// contributes genetic material.  Degenerate inputs (empty rules, missing
    /// node kinds) fall back to cloning `first`.
    pub fn apply(
        &self,
        first: &LinkageRule,
        second: &LinkageRule,
        rng: &mut StdRng,
    ) -> LinkageRule {
        let (Some(_), Some(_)) = (first.root(), second.root()) else {
            // an empty parent contributes nothing; prefer the non-empty one
            return if first.is_empty() {
                second.clone()
            } else {
                first.clone()
            };
        };
        match self {
            CrossoverOperator::Function => function_crossover(first, second, rng),
            CrossoverOperator::Operators => operators_crossover(first, second, rng),
            CrossoverOperator::Aggregation => aggregation_crossover(first, second, rng),
            CrossoverOperator::Transformation => transformation_crossover(first, second, rng),
            CrossoverOperator::Threshold => threshold_crossover(first, second, rng),
            CrossoverOperator::Weight => weight_crossover(first, second, rng),
            CrossoverOperator::Subtree => subtree_crossover(first, second, rng),
        }
    }
}

impl std::fmt::Display for CrossoverOperator {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

// ---------------------------------------------------------------------------
// function crossover (Algorithm 3)
// ---------------------------------------------------------------------------

fn function_crossover(first: &LinkageRule, second: &LinkageRule, rng: &mut StdRng) -> LinkageRule {
    let mut child = first.clone();
    let first_root = child.root_mut().expect("non-empty");
    let second_root = second.root().expect("non-empty");
    // the node types both rules actually contain
    let mut node_types = Vec::new();
    if !first_root.comparisons().is_empty() && !second_root.comparisons().is_empty() {
        node_types.push(0);
    }
    if !first_root.aggregations().is_empty() && !second_root.aggregations().is_empty() {
        node_types.push(1);
    }
    if !first_root.transformations().is_empty() && !second_root.transformations().is_empty() {
        node_types.push(2);
    }
    let Some(&node_type) = node_types.choose(rng) else {
        return child;
    };
    match node_type {
        0 => {
            let donor = second_root.comparisons();
            let function = donor[rng.gen_range(0..donor.len())].function;
            let index = rng.gen_range(0..first_root.comparisons().len());
            first_root.with_comparison_mut(index, |c| c.function = function);
        }
        1 => {
            let donor = second_root.aggregations();
            let function = donor[rng.gen_range(0..donor.len())].function;
            let index = rng.gen_range(0..first_root.aggregations().len());
            first_root.with_aggregation_mut(index, |a| a.function = function);
        }
        _ => {
            let donor = second_root.transformations();
            let function = donor[rng.gen_range(0..donor.len())].function;
            let index = rng.gen_range(0..first_root.transformations().len());
            first_root.with_transformation_mut(index, |t| t.function = function);
        }
    }
    child
}

// ---------------------------------------------------------------------------
// operators crossover (Algorithm 4)
// ---------------------------------------------------------------------------

fn operators_crossover(first: &LinkageRule, second: &LinkageRule, rng: &mut StdRng) -> LinkageRule {
    let mut child = first.clone();
    let second_root = second.root().expect("non-empty");

    // the children contributed by each parent's selected aggregation (a rule
    // whose root is a bare comparison contributes that comparison)
    let children_of = |root: &SimilarityOperator, rng: &mut StdRng| -> Vec<SimilarityOperator> {
        let aggregations = root.aggregations();
        if aggregations.is_empty() {
            vec![root.clone()]
        } else {
            aggregations[rng.gen_range(0..aggregations.len())]
                .operators
                .clone()
        }
    };

    let first_root = child.root_mut().expect("non-empty");
    let first_aggregations = first_root.aggregations().len();
    let mut combined = Vec::new();
    let first_index = if first_aggregations == 0 {
        combined.push(first_root.clone());
        None
    } else {
        let index = rng.gen_range(0..first_aggregations);
        combined.extend(first_root.aggregations()[index].operators.clone());
        Some(index)
    };
    combined.extend(children_of(second_root, rng));

    // keep each operator with a probability of 50%, but never end up empty
    let kept: Vec<SimilarityOperator> = combined
        .iter()
        .filter(|_| rng.gen_bool(0.5))
        .cloned()
        .collect();
    let kept = if kept.is_empty() {
        vec![combined[rng.gen_range(0..combined.len())].clone()]
    } else {
        kept
    };

    match first_index {
        Some(index) => {
            first_root.with_aggregation_mut(index, |a| a.operators = kept);
        }
        None => {
            // the first rule had no aggregation: wrap the combined operators
            let function = second_root
                .aggregations()
                .first()
                .map(|a| a.function)
                .unwrap_or(AggregationFunction::Min);
            child.replace_root(SimilarityOperator::aggregation(function, kept));
        }
    }
    child
}

// ---------------------------------------------------------------------------
// aggregation crossover (Algorithm 5)
// ---------------------------------------------------------------------------

fn aggregation_crossover(
    first: &LinkageRule,
    second: &LinkageRule,
    rng: &mut StdRng,
) -> LinkageRule {
    let mut child = first.clone();
    let second_root = second.root().expect("non-empty");
    let donor_count = second_root.similarity_node_count();
    let donor = second_root
        .similarity_node(rng.gen_range(0..donor_count))
        .expect("index within count")
        .clone();
    let first_root = child.root_mut().expect("non-empty");
    let target_count = first_root.similarity_node_count();
    let index = rng.gen_range(0..target_count);
    first_root.replace_similarity_node(index, donor);
    child
}

// ---------------------------------------------------------------------------
// transformation crossover (Algorithm 6)
// ---------------------------------------------------------------------------

/// Applies `f` to the `index`-th transformation (pre-order) inside a value
/// operator tree.
fn with_value_transformation_mut<F: FnOnce(&mut TransformationOperator)>(
    value: &mut ValueOperator,
    index: usize,
    f: F,
) -> bool {
    fn walk<F: FnOnce(&mut TransformationOperator)>(
        node: &mut ValueOperator,
        remaining: &mut usize,
        f: F,
    ) -> Option<F> {
        match node {
            ValueOperator::Property(_) => Some(f),
            ValueOperator::Transformation(t) => {
                if *remaining == 0 {
                    f(t);
                    return None;
                }
                *remaining -= 1;
                let mut f = Some(f);
                for child in &mut t.inputs {
                    if let Some(pending) = f.take() {
                        f = walk(child, remaining, pending);
                    } else {
                        break;
                    }
                }
                f
            }
        }
    }
    let mut remaining = index;
    walk(value, &mut remaining, f).is_none()
}

fn transformation_crossover(
    first: &LinkageRule,
    second: &LinkageRule,
    rng: &mut StdRng,
) -> LinkageRule {
    let mut child = first.clone();
    let second_root = second.root().expect("non-empty");
    let first_transform_count = child.root().expect("non-empty").transformations().len();
    let second_transforms = second_root.transformations();

    if second_transforms.is_empty() {
        return child;
    }
    if first_transform_count == 0 {
        // the first rule has no transformation chain yet: graft a (single
        // input) transformation of the second rule onto a random value slot so
        // that chains can start growing
        let function = second_transforms[rng.gen_range(0..second_transforms.len())].function;
        if function.is_multi_input() {
            return child;
        }
        let root = child.root_mut().expect("non-empty");
        let mut slots = 0usize;
        root.for_each_value_root_mut(&mut |_| slots += 1);
        let chosen = rng.gen_range(0..slots);
        let mut current = 0usize;
        root.for_each_value_root_mut(&mut |value| {
            if current == chosen {
                let inner = value.clone();
                *value = ValueOperator::transformation(function, vec![inner]);
            }
            current += 1;
        });
        return child;
    }

    // upper/lower selection in the first rule
    let upper1_index = rng.gen_range(0..first_transform_count);
    let upper1 = child.root().expect("non-empty").transformations()[upper1_index].clone();
    let upper1_value = ValueOperator::Transformation(upper1);
    let inner1 = upper1_value.transformations();
    let lower1_inputs = inner1[rng.gen_range(0..inner1.len())].inputs.clone();

    // upper/lower selection in the second rule; the lower's inputs are
    // replaced by the first rule's lower inputs (two-point crossover on the
    // transformation path)
    let upper2_index = rng.gen_range(0..second_transforms.len());
    let mut upper2_value = ValueOperator::Transformation(second_transforms[upper2_index].clone());
    let inner2_count = upper2_value.transformations().len();
    let lower2_index = rng.gen_range(0..inner2_count);
    with_value_transformation_mut(&mut upper2_value, lower2_index, |t| {
        t.inputs = lower1_inputs;
    });
    let ValueOperator::Transformation(replacement) = upper2_value else {
        unreachable!("constructed as a transformation");
    };

    let root = child.root_mut().expect("non-empty");
    root.with_transformation_mut(upper1_index, |t| *t = replacement);
    // "finally, duplicated transformations are removed"
    root.for_each_value_root_mut(&mut |value| value.dedup_transformations());
    child
}

// ---------------------------------------------------------------------------
// threshold crossover (Algorithm 7)
// ---------------------------------------------------------------------------

fn threshold_crossover(first: &LinkageRule, second: &LinkageRule, rng: &mut StdRng) -> LinkageRule {
    let mut child = first.clone();
    let second_comparisons = second.root().expect("non-empty").comparisons();
    let first_comparisons = child.root().expect("non-empty").comparisons().len();
    if second_comparisons.is_empty() || first_comparisons == 0 {
        return child;
    }
    let donor_threshold = second_comparisons[rng.gen_range(0..second_comparisons.len())].threshold;
    let index = rng.gen_range(0..first_comparisons);
    child
        .root_mut()
        .expect("non-empty")
        .with_comparison_mut(index, |c| {
            c.threshold = 0.5 * (c.threshold + donor_threshold);
        });
    child
}

// ---------------------------------------------------------------------------
// weight crossover
// ---------------------------------------------------------------------------

fn weight_crossover(first: &LinkageRule, second: &LinkageRule, rng: &mut StdRng) -> LinkageRule {
    let mut child = first.clone();
    let second_root = second.root().expect("non-empty");
    let donor_index = rng.gen_range(0..second_root.similarity_node_count());
    let donor_weight = second_root
        .similarity_node(donor_index)
        .expect("index within count")
        .weight();
    let first_root = child.root_mut().expect("non-empty");
    let index = rng.gen_range(0..first_root.similarity_node_count());
    first_root.with_similarity_node_mut(index, |node| {
        let averaged = ((node.weight() + donor_weight) as f64 / 2.0).round() as u32;
        node.set_weight(averaged.max(1));
    });
    child
}

// ---------------------------------------------------------------------------
// subtree crossover (baseline)
// ---------------------------------------------------------------------------

fn subtree_crossover(first: &LinkageRule, second: &LinkageRule, rng: &mut StdRng) -> LinkageRule {
    // with a small probability recombine the value trees instead of the
    // similarity trees so that the baseline can also move transformations
    if rng.gen_bool(0.3) {
        let mut child = first.clone();
        let second_root = second.root().expect("non-empty");
        let mut donor_values = Vec::new();
        second_root.for_each_value_collect(&mut donor_values);
        if !donor_values.is_empty() {
            let donor = donor_values[rng.gen_range(0..donor_values.len())].clone();
            let root = child.root_mut().expect("non-empty");
            let mut slots = 0usize;
            root.for_each_value_root_mut(&mut |_| slots += 1);
            if slots > 0 {
                let chosen = rng.gen_range(0..slots);
                let mut current = 0usize;
                root.for_each_value_root_mut(&mut |value| {
                    if current == chosen {
                        *value = donor.clone();
                    }
                    current += 1;
                });
            }
        }
        return child;
    }
    aggregation_crossover(first, second, rng)
}

/// Collects clones of every value operator root of a similarity tree
/// (helper for the subtree baseline; kept local to this module).
trait CollectValues {
    fn for_each_value_collect(&self, out: &mut Vec<ValueOperator>);
}

impl CollectValues for SimilarityOperator {
    fn for_each_value_collect(&self, out: &mut Vec<ValueOperator>) {
        match self {
            SimilarityOperator::Comparison(c) => {
                out.push(c.source.clone());
                out.push(c.target.clone());
            }
            SimilarityOperator::Aggregation(a) => {
                for child in &a.operators {
                    child.for_each_value_collect(out);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use linkdisc_rule::{
        aggregation, compare, property, transform, DistanceFunction, TransformFunction,
    };
    use rand::SeedableRng;

    fn rng(seed: u64) -> StdRng {
        StdRng::seed_from_u64(seed)
    }

    fn rule_a() -> LinkageRule {
        aggregation(
            AggregationFunction::Min,
            vec![
                compare(
                    transform(TransformFunction::LowerCase, vec![property("label")]),
                    property("name"),
                    DistanceFunction::Levenshtein,
                    1.0,
                ),
                compare(
                    property("date"),
                    property("released"),
                    DistanceFunction::Date,
                    30.0,
                ),
            ],
        )
        .into()
    }

    fn rule_b() -> LinkageRule {
        aggregation(
            AggregationFunction::WeightedMean,
            vec![
                compare(
                    transform(
                        TransformFunction::Tokenize,
                        vec![transform(TransformFunction::Stem, vec![property("title")])],
                    ),
                    property("label"),
                    DistanceFunction::Jaccard,
                    0.4,
                ),
                compare(
                    property("point"),
                    property("coord"),
                    DistanceFunction::Geographic,
                    50.0,
                ),
            ],
        )
        .into()
    }

    #[test]
    fn every_operator_produces_a_nonempty_rule() {
        let mut rng = rng(1);
        let operators = [
            CrossoverOperator::Function,
            CrossoverOperator::Operators,
            CrossoverOperator::Aggregation,
            CrossoverOperator::Transformation,
            CrossoverOperator::Threshold,
            CrossoverOperator::Weight,
            CrossoverOperator::Subtree,
        ];
        for operator in operators {
            for _ in 0..50 {
                let child = operator.apply(&rule_a(), &rule_b(), &mut rng);
                assert!(!child.is_empty(), "{operator} produced an empty rule");
                assert!(child.operator_count() > 0);
            }
        }
    }

    #[test]
    fn empty_parents_are_handled() {
        let mut rng = rng(2);
        for operator in CrossoverOperator::SPECIALIZED {
            let child = operator.apply(&LinkageRule::empty(), &rule_b(), &mut rng);
            assert_eq!(child, rule_b());
            let child = operator.apply(&rule_a(), &LinkageRule::empty(), &mut rng);
            assert_eq!(child, rule_a());
        }
    }

    #[test]
    fn function_crossover_only_changes_functions() {
        let mut rng = rng(3);
        for _ in 0..100 {
            let child = CrossoverOperator::Function.apply(&rule_a(), &rule_b(), &mut rng);
            // structure is preserved: same number of operators of each kind
            let a = rule_a().stats();
            let c = child.stats();
            assert_eq!(a.comparisons, c.comparisons);
            assert_eq!(a.aggregations, c.aggregations);
            assert_eq!(a.transformations, c.transformations);
            // every distance function in the child stems from one of the parents
            for comparison in child.root().unwrap().comparisons() {
                assert!(matches!(
                    comparison.function,
                    DistanceFunction::Levenshtein
                        | DistanceFunction::Date
                        | DistanceFunction::Jaccard
                        | DistanceFunction::Geographic
                ));
            }
        }
    }

    #[test]
    fn function_crossover_eventually_swaps_a_function() {
        let mut rng = rng(4);
        let changed = (0..100).any(|_| {
            let child = CrossoverOperator::Function.apply(&rule_a(), &rule_b(), &mut rng);
            child != rule_a()
        });
        assert!(changed);
    }

    #[test]
    fn operators_crossover_mixes_comparisons_of_both_parents() {
        let mut rng = rng(5);
        let mut saw_b_comparison = false;
        for _ in 0..200 {
            let child = CrossoverOperator::Operators.apply(&rule_a(), &rule_b(), &mut rng);
            assert!(child.stats().comparisons >= 1);
            let (_, target_properties) = child.root().unwrap().properties();
            if target_properties.contains(&"coord") || target_properties.contains(&"label") {
                saw_b_comparison = true;
            }
        }
        assert!(
            saw_b_comparison,
            "operators crossover never imported a comparison from rule B"
        );
    }

    #[test]
    fn operators_crossover_handles_comparison_roots() {
        let single: LinkageRule = compare(
            property("label"),
            property("name"),
            DistanceFunction::Levenshtein,
            1.0,
        )
        .into();
        let mut rng = rng(6);
        for _ in 0..50 {
            let child = CrossoverOperator::Operators.apply(&single, &rule_b(), &mut rng);
            assert!(!child.is_empty());
            assert!(child.stats().comparisons >= 1);
        }
    }

    #[test]
    fn aggregation_crossover_can_deepen_the_tree() {
        let mut rng = rng(7);
        let deepened = (0..200).any(|_| {
            let child = CrossoverOperator::Aggregation.apply(&rule_a(), &rule_b(), &mut rng);
            child.stats().depth > rule_a().stats().depth
        });
        assert!(
            deepened,
            "aggregation crossover never built a deeper hierarchy"
        );
    }

    #[test]
    fn transformation_crossover_builds_chains() {
        let mut rng = rng(8);
        let mut max_transformations = 0;
        for _ in 0..200 {
            let child = CrossoverOperator::Transformation.apply(&rule_a(), &rule_b(), &mut rng);
            max_transformations = max_transformations.max(child.stats().transformations);
            // structure of the similarity tree is untouched
            assert_eq!(child.stats().comparisons, rule_a().stats().comparisons);
        }
        assert!(
            max_transformations >= 2,
            "transformation crossover never grew a chain (max {max_transformations})"
        );
    }

    #[test]
    fn transformation_crossover_on_transformation_free_rules_is_identity_or_graft() {
        let plain: LinkageRule = compare(
            property("label"),
            property("name"),
            DistanceFunction::Levenshtein,
            1.0,
        )
        .into();
        let mut rng = rng(9);
        for _ in 0..50 {
            let child = CrossoverOperator::Transformation.apply(&plain, &rule_b(), &mut rng);
            let transformations = child.stats().transformations;
            assert!(transformations <= 1);
            let child2 = CrossoverOperator::Transformation.apply(&plain, &plain, &mut rng);
            assert_eq!(child2, plain);
        }
    }

    #[test]
    fn threshold_crossover_averages_thresholds() {
        let a: LinkageRule = compare(
            property("x"),
            property("x"),
            DistanceFunction::Numeric,
            10.0,
        )
        .into();
        let b: LinkageRule =
            compare(property("y"), property("y"), DistanceFunction::Numeric, 2.0).into();
        let mut rng = rng(10);
        let child = CrossoverOperator::Threshold.apply(&a, &b, &mut rng);
        let threshold = child.root().unwrap().comparisons()[0].threshold;
        assert!((threshold - 6.0).abs() < 1e-12);
    }

    #[test]
    fn weight_crossover_averages_weights() {
        let mut heavy = compare(property("x"), property("x"), DistanceFunction::Numeric, 1.0);
        heavy.set_weight(9);
        let a: LinkageRule = heavy.into();
        let b: LinkageRule =
            compare(property("y"), property("y"), DistanceFunction::Numeric, 1.0).into();
        let mut rng = rng(11);
        let child = CrossoverOperator::Weight.apply(&a, &b, &mut rng);
        assert_eq!(child.root().unwrap().comparisons()[0].weight, 5);
    }

    #[test]
    fn subtree_crossover_mixes_material_from_both_parents() {
        let mut rng = rng(12);
        let mut differs = false;
        for _ in 0..100 {
            let child = CrossoverOperator::Subtree.apply(&rule_a(), &rule_b(), &mut rng);
            assert!(!child.is_empty());
            if child != rule_a() {
                differs = true;
            }
        }
        assert!(differs);
    }

    #[test]
    fn names_are_unique() {
        use std::collections::HashSet;
        let names: HashSet<&str> = CrossoverOperator::SPECIALIZED
            .iter()
            .chain(CrossoverOperator::SUBTREE_ONLY.iter())
            .map(|o| o.name())
            .collect();
        assert_eq!(names.len(), 7);
    }
}
