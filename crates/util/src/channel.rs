//! A bounded multi-producer/multi-consumer channel.
//!
//! `std::sync::mpsc` receivers cannot be cloned, so a pool of worker threads
//! cannot pull jobs from one without wrapping the receiver in a mutex of its
//! own.  This module provides the small primitive the steady-state evolution
//! pipeline (and any future worker pool) actually needs: a **bounded** queue
//! with any number of senders and receivers, blocking sends (backpressure)
//! and blocking receives, and clean close semantics — `recv` returns `None`
//! once every sender is gone and the queue has drained, `send` fails once
//! every receiver is gone.
//!
//! The implementation is a `Mutex<VecDeque>` with two condition variables
//! (not-empty / not-full).  That is deliberately boring: the pipeline moves
//! whole genomes per message, so the per-message cost of a mutex is noise
//! against the evaluation work each message triggers.

use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex};

/// Creates a bounded channel with room for `capacity` queued items.
/// `capacity` must be positive: a zero-capacity rendezvous channel is not
/// supported (the pipeline always wants queueing between stages).
pub fn bounded<T>(capacity: usize) -> (Sender<T>, Receiver<T>) {
    assert!(capacity > 0, "channel capacity must be positive");
    let inner = Arc::new(Inner {
        state: Mutex::new(State {
            queue: VecDeque::with_capacity(capacity),
            senders: 1,
            receivers: 1,
        }),
        not_empty: Condvar::new(),
        not_full: Condvar::new(),
        capacity,
    });
    (
        Sender {
            inner: inner.clone(),
        },
        Receiver { inner },
    )
}

struct State<T> {
    queue: VecDeque<T>,
    senders: usize,
    receivers: usize,
}

struct Inner<T> {
    state: Mutex<State<T>>,
    not_empty: Condvar,
    not_full: Condvar,
    capacity: usize,
}

/// The error returned by [`Sender::send`] when every receiver is gone; the
/// unsent item is handed back.
#[derive(Debug, PartialEq, Eq)]
pub struct SendError<T>(pub T);

/// The sending half; clone for more producers.
pub struct Sender<T> {
    inner: Arc<Inner<T>>,
}

/// The receiving half; clone for more consumers (each item is delivered to
/// exactly one of them).
pub struct Receiver<T> {
    inner: Arc<Inner<T>>,
}

impl<T> Sender<T> {
    /// Enqueues one item, blocking while the channel is full.  Fails only
    /// when every receiver has been dropped.
    pub fn send(&self, item: T) -> Result<(), SendError<T>> {
        let mut state = self.inner.state.lock().expect("channel poisoned");
        loop {
            if state.receivers == 0 {
                return Err(SendError(item));
            }
            if state.queue.len() < self.inner.capacity {
                state.queue.push_back(item);
                drop(state);
                self.inner.not_empty.notify_one();
                return Ok(());
            }
            state = self.inner.not_full.wait(state).expect("channel poisoned");
        }
    }
}

impl<T> Receiver<T> {
    /// Dequeues one item, blocking while the channel is empty.  Returns
    /// `None` once every sender has been dropped and the queue has drained.
    pub fn recv(&self) -> Option<T> {
        let mut state = self.inner.state.lock().expect("channel poisoned");
        loop {
            if let Some(item) = state.queue.pop_front() {
                drop(state);
                self.inner.not_full.notify_one();
                return Some(item);
            }
            if state.senders == 0 {
                return None;
            }
            state = self.inner.not_empty.wait(state).expect("channel poisoned");
        }
    }
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        self.inner.state.lock().expect("channel poisoned").senders += 1;
        Sender {
            inner: self.inner.clone(),
        }
    }
}

impl<T> Clone for Receiver<T> {
    fn clone(&self) -> Self {
        self.inner.state.lock().expect("channel poisoned").receivers += 1;
        Receiver {
            inner: self.inner.clone(),
        }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        let mut state = self.inner.state.lock().expect("channel poisoned");
        state.senders -= 1;
        if state.senders == 0 {
            drop(state);
            // wake blocked receivers so they observe the close
            self.inner.not_empty.notify_all();
        }
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        let mut state = self.inner.state.lock().expect("channel poisoned");
        state.receivers -= 1;
        if state.receivers == 0 {
            drop(state);
            // wake blocked senders so they observe the close
            self.inner.not_full.notify_all();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn items_flow_in_fifo_order() {
        let (tx, rx) = bounded(4);
        for i in 0..4 {
            tx.send(i).unwrap();
        }
        drop(tx);
        assert_eq!(rx.recv(), Some(0));
        assert_eq!(rx.recv(), Some(1));
        assert_eq!(rx.recv(), Some(2));
        assert_eq!(rx.recv(), Some(3));
        assert_eq!(rx.recv(), None);
    }

    #[test]
    fn bounded_send_blocks_until_a_receive_frees_a_slot() {
        let (tx, rx) = bounded(1);
        tx.send(1u32).unwrap();
        let handle = std::thread::spawn(move || {
            tx.send(2).unwrap(); // blocks until the first item is received
            3u32
        });
        assert_eq!(rx.recv(), Some(1));
        assert_eq!(rx.recv(), Some(2));
        assert_eq!(handle.join().unwrap(), 3);
    }

    #[test]
    fn send_fails_once_all_receivers_are_gone() {
        let (tx, rx) = bounded(2);
        drop(rx);
        assert_eq!(tx.send(7), Err(SendError(7)));
    }

    #[test]
    fn every_item_is_delivered_to_exactly_one_consumer() {
        let (tx, rx) = bounded::<u64>(8);
        let n: u64 = 1000;
        let workers = 4;
        let mut sums = Vec::new();
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    let rx = rx.clone();
                    scope.spawn(move || {
                        let mut sum = 0u64;
                        while let Some(item) = rx.recv() {
                            sum += item;
                        }
                        sum
                    })
                })
                .collect();
            drop(rx);
            for i in 0..n {
                tx.send(i).unwrap();
            }
            drop(tx);
            for handle in handles {
                sums.push(handle.join().unwrap());
            }
        });
        assert_eq!(sums.iter().sum::<u64>(), n * (n - 1) / 2);
    }

    #[test]
    fn receivers_drain_the_queue_after_close() {
        let (tx, rx) = bounded(4);
        tx.send("a").unwrap();
        tx.send("b").unwrap();
        drop(tx);
        assert_eq!(rx.recv(), Some("a"));
        assert_eq!(rx.recv(), Some("b"));
        assert_eq!(rx.recv(), None);
        assert_eq!(rx.recv(), None, "closed stays closed");
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn zero_capacity_is_rejected() {
        let _ = bounded::<u32>(0);
    }
}
