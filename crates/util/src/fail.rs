//! A deterministic fault-injection (failpoint) registry, modeled on the
//! tikv `fail` crate: named injection points sit around every write, fsync
//! and rename of the durability paths, and a test harness arms them one at
//! a time to simulate a crash at *exactly* that point.
//!
//! The registry is **feature-gated** behind `failpoints` and zero-cost when
//! the feature is off: [`check`] compiles to an inlineable `None`, so the
//! branch at every injection point folds away.  With the feature on, every
//! [`check`] call records a hit for its point (so a harness can *enumerate*
//! the points a workload passes through) and fires the configured
//! [`FailAction`] when its countdown reaches zero.
//!
//! Injection points are process-global; tests that arm them must serialize
//! (the kill-at-every-failpoint harness runs as one `#[test]`).

use std::io;

/// What an armed failpoint does when it fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FailAction {
    /// The guarded operation fails without any side effect — the crash
    /// happened *before* the write/fsync/rename.
    Error,
    /// A write performs only the first `n` bytes, then fails — a torn
    /// write, the on-disk state a power loss mid-`write` leaves behind.
    /// Non-write operations treat this like [`FailAction::Error`].
    TornWrite(usize),
}

/// The `io::Error` an armed failpoint surfaces (callers propagate it like
/// any other I/O failure; the harness recognizes it by message).
pub fn injected(point: &str) -> io::Error {
    io::Error::other(format!("failpoint fired: {point}"))
}

#[cfg(feature = "failpoints")]
mod registry {
    use super::FailAction;
    use std::collections::HashMap;
    use std::sync::{Mutex, OnceLock, PoisonError};

    struct Armed {
        /// Hits to let pass before firing.
        remaining: usize,
        action: FailAction,
    }

    #[derive(Default)]
    struct Registry {
        armed: HashMap<String, Armed>,
        hits: HashMap<String, usize>,
    }

    fn registry() -> &'static Mutex<Registry> {
        static REGISTRY: OnceLock<Mutex<Registry>> = OnceLock::new();
        REGISTRY.get_or_init(|| Mutex::new(Registry::default()))
    }

    fn lock() -> std::sync::MutexGuard<'static, Registry> {
        registry().lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Arms `point` to fire `action` on its `skip`-th hit from now
    /// (0 = the very next hit).  Re-arming replaces the previous setting.
    pub fn configure(point: &str, skip: usize, action: FailAction) {
        lock().armed.insert(
            point.to_string(),
            Armed {
                remaining: skip,
                action,
            },
        );
    }

    /// Disarms every point and clears the hit counters.
    pub fn reset() {
        let mut registry = lock();
        registry.armed.clear();
        registry.hits.clear();
    }

    /// Every point hit since the last [`reset`], with its hit count —
    /// the enumeration a kill-at-every-failpoint harness iterates.
    pub fn hit_counts() -> Vec<(String, usize)> {
        let mut counts: Vec<(String, usize)> = lock()
            .hits
            .iter()
            .map(|(point, &count)| (point.clone(), count))
            .collect();
        counts.sort();
        counts
    }

    /// Records a hit on `point`; returns the action to apply if the point
    /// is armed and its countdown just expired (one-shot: firing disarms).
    pub fn check(point: &str) -> Option<FailAction> {
        let mut registry = lock();
        *registry.hits.entry(point.to_string()).or_insert(0) += 1;
        let armed = registry.armed.get_mut(point)?;
        if armed.remaining > 0 {
            armed.remaining -= 1;
            return None;
        }
        let action = armed.action;
        registry.armed.remove(point);
        Some(action)
    }
}

#[cfg(feature = "failpoints")]
pub use registry::{check, configure, hit_counts, reset};

/// With the `failpoints` feature off, checks compile to a constant `None`
/// and the whole injection branch folds away.
#[cfg(not(feature = "failpoints"))]
#[inline(always)]
pub fn check(_point: &str) -> Option<FailAction> {
    None
}

#[cfg(all(test, feature = "failpoints"))]
mod tests {
    use super::*;

    #[test]
    fn armed_points_fire_once_after_their_countdown() {
        reset();
        configure("t.point", 2, FailAction::Error);
        assert_eq!(check("t.point"), None);
        assert_eq!(check("t.point"), None);
        assert_eq!(check("t.point"), Some(FailAction::Error));
        // one-shot: fired points disarm themselves
        assert_eq!(check("t.point"), None);
        assert_eq!(
            hit_counts(),
            vec![("t.point".to_string(), 4)],
            "every check records a hit, armed or not"
        );
        reset();
        assert!(hit_counts().is_empty());
    }
}
