//! Small runtime helpers shared across otherwise-unrelated layers, so e.g.
//! the matching engine does not have to depend on the GP crate to reuse a
//! thread-count resolver.

/// Resolves a thread-count configuration value: `0` means "use every
/// available core", anything else is taken literally.  Shared by the GP
/// engine and the matching engine so the `available_parallelism` fallback
/// logic lives in exactly one place.
pub fn resolve_threads(configured: usize) -> usize {
    if configured == 0 {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    } else {
        configured
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn explicit_counts_pass_through() {
        assert_eq!(resolve_threads(1), 1);
        assert_eq!(resolve_threads(7), 7);
    }

    #[test]
    fn zero_resolves_to_available_parallelism() {
        let resolved = resolve_threads(0);
        assert!(resolved >= 1);
        let expected = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        assert_eq!(resolved, expected);
    }
}
