//! Small runtime helpers shared across otherwise-unrelated layers, so e.g.
//! the matching engine does not have to depend on the GP crate to reuse a
//! thread-count resolver.

pub mod channel;
pub mod epoch;
pub mod fail;

pub use epoch::{EpochCell, EpochReader};

/// Resolves a thread-count configuration value: `0` means "use every
/// available core", anything else is taken literally.  Shared by the GP
/// engine and the matching engine so the `available_parallelism` fallback
/// logic lives in exactly one place.
pub fn resolve_threads(configured: usize) -> usize {
    if configured == 0 {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    } else {
        configured
    }
}

/// Maps `f` over `items` on up to `threads` workers (0 = all cores),
/// returning the results **in input order**.
///
/// The items are split into one contiguous chunk per worker, so the mapping
/// of item to worker — and therefore the result order — is a pure function
/// of `items.len()` and the resolved thread count, never of scheduling.
/// Callers that need *bit-identical* results across thread counts only have
/// to make `f` itself deterministic and free of cross-item state: the
/// reduction here is ordered by construction.
///
/// Small inputs (fewer than two items per worker) are mapped inline to avoid
/// paying thread spawns for no parallelism.
pub fn parallel_ordered_map<T, R, F>(items: &[T], threads: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let threads = resolve_threads(threads).max(1);
    if threads <= 1 || items.len() < 2 * threads {
        return items.iter().map(f).collect();
    }
    let chunk_size = items.len().div_ceil(threads);
    let mut results: Vec<Vec<R>> = Vec::with_capacity(threads);
    std::thread::scope(|scope| {
        let handles: Vec<_> = items
            .chunks(chunk_size)
            .map(|chunk| {
                let f = &f;
                scope.spawn(move || chunk.iter().map(f).collect::<Vec<R>>())
            })
            .collect();
        for handle in handles {
            results.push(handle.join().expect("parallel map worker panicked"));
        }
    });
    results.into_iter().flatten().collect()
}

/// The mutable sibling of [`parallel_ordered_map`]: maps `f` over disjoint
/// `&mut` items on up to `threads` workers (0 = all cores), returning the
/// results **in input order**.  `f` also receives the item's index so a
/// worker knows *which* disjoint partition it mutates.
///
/// The determinism contract is the same — one contiguous chunk per worker,
/// ordered reduction — but the inline cutoff differs: callers hand this
/// function one item per *shard* (e.g. per-shard ingest batches), so a
/// handful of items is the common case and still worth spawning for, not a
/// degenerate one.  Only trivial inputs (one item, or one thread) run
/// inline.
pub fn parallel_ordered_map_mut<T, R, F>(items: &mut [T], threads: usize, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(usize, &mut T) -> R + Sync,
{
    let threads = resolve_threads(threads).max(1);
    if threads <= 1 || items.len() <= 1 {
        return items
            .iter_mut()
            .enumerate()
            .map(|(index, item)| f(index, item))
            .collect();
    }
    let chunk_size = items.len().div_ceil(threads);
    let mut results: Vec<Vec<R>> = Vec::with_capacity(threads);
    std::thread::scope(|scope| {
        let handles: Vec<_> = items
            .chunks_mut(chunk_size)
            .enumerate()
            .map(|(chunk_index, chunk)| {
                let f = &f;
                let base = chunk_index * chunk_size;
                scope.spawn(move || {
                    chunk
                        .iter_mut()
                        .enumerate()
                        .map(|(offset, item)| f(base + offset, item))
                        .collect::<Vec<R>>()
                })
            })
            .collect();
        for handle in handles {
            results.push(handle.join().expect("parallel map worker panicked"));
        }
    });
    results.into_iter().flatten().collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn explicit_counts_pass_through() {
        assert_eq!(resolve_threads(1), 1);
        assert_eq!(resolve_threads(7), 7);
    }

    #[test]
    fn zero_resolves_to_available_parallelism() {
        let resolved = resolve_threads(0);
        assert!(resolved >= 1);
        let expected = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        assert_eq!(resolved, expected);
    }

    #[test]
    fn parallel_map_preserves_input_order() {
        let items: Vec<u64> = (0..103).collect();
        let expected: Vec<u64> = items.iter().map(|x| x * 3).collect();
        for threads in [1, 2, 3, 8] {
            assert_eq!(
                parallel_ordered_map(&items, threads, |&x| x * 3),
                expected,
                "threads={threads}"
            );
        }
    }

    #[test]
    fn parallel_map_handles_tiny_and_empty_inputs() {
        let empty: Vec<u32> = Vec::new();
        assert!(parallel_ordered_map(&empty, 4, |&x| x).is_empty());
        assert_eq!(parallel_ordered_map(&[7u32], 4, |&x| x + 1), vec![8]);
    }
}
