//! A tiny single-writer / many-reader publication cell: the arc-swap
//! primitive behind the copy-on-write serving epochs.
//!
//! A writer assembles an immutable snapshot (an *epoch*), wraps it in an
//! [`Arc`] and [`EpochCell::publish`]es it; readers [`EpochCell::load`] the
//! current epoch and hold the `Arc` for the duration of their operation, so
//! every read runs against one consistent snapshot no matter how many
//! publications happen meanwhile.  Dropped epochs are reclaimed by the `Arc`
//! itself once the last reader lets go — no hazard pointers, no deferred
//! reclamation lists.
//!
//! The design is seqlock-flavoured but blocking-free in the steady state:
//! the cell carries a monotonically increasing **version** (one atomic load
//! to read), and a reader that cached an `Arc` from a previous load only
//! touches the slot mutex when the version actually moved.  A serving
//! reader therefore pays one atomic load per query while the writer is
//! idle, and one short uncontended lock + `Arc` clone per *epoch change* —
//! never per query, and never an allocation (see [`EpochReader`]).
//!
//! The slot itself is a `Mutex<Arc<T>>` rather than a bare atomic pointer:
//! a genuinely lock-free `Arc` swap needs hazard-pointer-style protection
//! around the refcount increment (the pointer may be freed between load and
//! bump), which is not worth the unsafe surface for a critical section of
//! two pointer copies.  The mutex is held only for the clone/swap, so
//! readers can stall each other for nanoseconds, not for query durations.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// A published, versioned `Arc<T>` slot (see the module docs).  `T` is the
/// epoch payload: an immutable snapshot shared by all readers.
#[derive(Debug)]
pub struct EpochCell<T> {
    /// Bumped *after* the slot is swapped, with `Release` ordering: a reader
    /// observing version `v` and then locking the slot is guaranteed to see
    /// an epoch at least as new as `v`'s.
    version: AtomicU64,
    slot: Mutex<Arc<T>>,
}

impl<T> EpochCell<T> {
    /// Creates a cell holding an initial epoch (version 0).
    pub fn new(initial: Arc<T>) -> Self {
        EpochCell {
            version: AtomicU64::new(0),
            slot: Mutex::new(initial),
        }
    }

    /// Publishes a new epoch, returning its version.  Safe to call from any
    /// thread; concurrent publishers serialize on the slot (the serving
    /// layer has a single writer by construction).
    pub fn publish(&self, epoch: Arc<T>) -> u64 {
        let mut slot = self.slot.lock().expect("epoch slot poisoned");
        *slot = epoch;
        // bump inside the lock so versions observed through `load` are
        // monotone with the epochs they accompany
        self.version.fetch_add(1, Ordering::Release) + 1
    }

    /// Replaces the current epoch **without** bumping the version — for
    /// construction-time staging, where the initial epoch passed to
    /// [`EpochCell::new`] is a placeholder filled in before any reader
    /// exists.  Readers that already pinned version `v` will not refresh
    /// (the version did not move), so this must never be used once the
    /// cell is shared.
    pub fn replace_current(&self, epoch: Arc<T>) {
        let mut slot = self.slot.lock().expect("epoch slot poisoned");
        *slot = epoch;
    }

    /// The version of the most recently published epoch.
    pub fn version(&self) -> u64 {
        self.version.load(Ordering::Acquire)
    }

    /// The current epoch and its version.
    pub fn load(&self) -> (Arc<T>, u64) {
        let slot = self.slot.lock().expect("epoch slot poisoned");
        let epoch = slot.clone();
        let version = self.version.load(Ordering::Acquire);
        (epoch, version)
    }
}

/// A reader-side cache over an [`EpochCell`]: holds the last loaded epoch
/// and revalidates it with a single atomic load, refreshing (lock + `Arc`
/// clone, no allocation) only when the writer actually published.
///
/// Deliberately **not** `Sync`: each reading thread owns its own
/// `EpochReader` (they are cheap to create), so the steady-state path needs
/// no interior locking at all.
#[derive(Debug)]
pub struct EpochReader<T> {
    cell: Arc<EpochCell<T>>,
    cached: std::cell::RefCell<(Arc<T>, u64)>,
}

impl<T> EpochReader<T> {
    /// Creates a reader pinned to the cell's current epoch.
    pub fn new(cell: Arc<EpochCell<T>>) -> Self {
        let cached = cell.load();
        EpochReader {
            cell,
            cached: std::cell::RefCell::new(cached),
        }
    }

    /// The current epoch (refreshed if the writer published since the last
    /// call) and its version.  The returned `Arc` pins the snapshot for as
    /// long as the caller holds it.
    pub fn pin(&self) -> (Arc<T>, u64) {
        let mut cached = self.cached.borrow_mut();
        if self.cell.version.load(Ordering::Acquire) != cached.1 {
            *cached = self.cell.load();
        }
        (cached.0.clone(), cached.1)
    }

    /// The underlying cell (to spawn further readers from).
    pub fn cell(&self) -> &Arc<EpochCell<T>> {
        &self.cell
    }
}

impl<T> Clone for EpochReader<T> {
    fn clone(&self) -> Self {
        EpochReader::new(self.cell.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn publish_bumps_the_version_and_swaps_the_epoch() {
        let cell = EpochCell::new(Arc::new(1u32));
        assert_eq!(cell.version(), 0);
        assert_eq!(*cell.load().0, 1);
        let v = cell.publish(Arc::new(2));
        assert_eq!(v, 1);
        let (epoch, version) = cell.load();
        assert_eq!((*epoch, version), (2, 1));
    }

    #[test]
    fn readers_cache_until_the_version_moves() {
        let cell = Arc::new(EpochCell::new(Arc::new(10u32)));
        let reader = EpochReader::new(cell.clone());
        let (first, v0) = reader.pin();
        assert_eq!((*first, v0), (10, 0));
        // the cached Arc is returned while nothing was published
        assert!(Arc::ptr_eq(&reader.pin().0, &first));
        cell.publish(Arc::new(11));
        let (second, v1) = reader.pin();
        assert_eq!((*second, v1), (11, 1));
        // a clone starts from the *current* epoch, not the cached one
        cell.publish(Arc::new(12));
        assert_eq!(*reader.clone().pin().0, 12);
    }

    #[test]
    fn concurrent_readers_always_observe_a_published_epoch() {
        // the writer publishes (value, version-stamp) pairs that encode
        // their own version; readers must never see a torn combination
        let cell = Arc::new(EpochCell::new(Arc::new((0u64, 0u64))));
        let stop = Arc::new(AtomicU64::new(0));
        std::thread::scope(|scope| {
            for _ in 0..3 {
                let cell = cell.clone();
                let stop = stop.clone();
                scope.spawn(move || {
                    let reader = EpochReader::new(cell);
                    let mut last_version = 0u64;
                    while stop.load(Ordering::Relaxed) == 0 {
                        let (epoch, version) = reader.pin();
                        let (value, stamp) = *epoch;
                        assert_eq!(value, stamp, "epochs are internally consistent");
                        // publish bumps the version inside the slot lock and
                        // this test stamps epoch k with version k, so a pin
                        // must never pair an epoch with a foreign version
                        assert_eq!(stamp, version, "epoch and version are torn");
                        assert!(version >= last_version, "versions went backwards");
                        last_version = version;
                    }
                });
            }
            for publication in 1..=2_000u64 {
                cell.publish(Arc::new((publication, publication)));
            }
            stop.store(1, Ordering::Relaxed);
        });
        assert_eq!(cell.version(), 2_000);
    }
}
