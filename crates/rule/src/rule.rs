//! The linkage rule itself: a (possibly empty) similarity-operator tree.

use linkdisc_entity::EntityPair;

use crate::operators::SimilarityOperator;
use crate::stats::RuleStats;

/// Entity pairs with a similarity of at least this value are links
/// (Definition 3 of the paper).
pub const LINK_THRESHOLD: f64 = 0.5;

/// A linkage rule `l : A × B → [0, 1]`.
///
/// The empty rule (no root operator) assigns similarity `0` to every pair and
/// therefore links nothing; it only appears as a degenerate individual during
/// the genetic search.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct LinkageRule {
    root: Option<SimilarityOperator>,
}

impl LinkageRule {
    /// Creates a rule from a root similarity operator.
    pub fn new(root: SimilarityOperator) -> Self {
        LinkageRule { root: Some(root) }
    }

    /// Creates the empty rule.
    pub fn empty() -> Self {
        LinkageRule { root: None }
    }

    /// The root operator, if the rule is non-empty.
    pub fn root(&self) -> Option<&SimilarityOperator> {
        self.root.as_ref()
    }

    /// Mutable access to the root operator.
    pub fn root_mut(&mut self) -> Option<&mut SimilarityOperator> {
        self.root.as_mut()
    }

    /// Replaces the root operator and returns the previous one.
    pub fn replace_root(&mut self, root: SimilarityOperator) -> Option<SimilarityOperator> {
        self.root.replace(root)
    }

    /// Consumes the rule and returns its root operator.
    pub fn into_root(self) -> Option<SimilarityOperator> {
        self.root
    }

    /// Returns `true` if the rule has no operators.
    pub fn is_empty(&self) -> bool {
        self.root.is_none()
    }

    /// Evaluates the rule on an entity pair, yielding a similarity in `[0, 1]`.
    pub fn evaluate(&self, pair: &EntityPair<'_>) -> f64 {
        match &self.root {
            Some(root) => root.evaluate(pair).clamp(0.0, 1.0),
            None => 0.0,
        }
    }

    /// Returns `true` if the rule considers the pair a link (score ≥ 0.5).
    pub fn is_link(&self, pair: &EntityPair<'_>) -> bool {
        self.evaluate(pair) >= LINK_THRESHOLD
    }

    /// Total number of operators; the basis of the parsimony pressure
    /// `fitness = MCC − 0.05 · operatorcount` (Section 5.2).
    pub fn operator_count(&self) -> usize {
        self.root
            .as_ref()
            .map_or(0, SimilarityOperator::operator_count)
    }

    /// Structural statistics of this rule.
    pub fn stats(&self) -> RuleStats {
        RuleStats::of(self)
    }
}

impl From<SimilarityOperator> for LinkageRule {
    fn from(root: SimilarityOperator) -> Self {
        LinkageRule::new(root)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aggregation::AggregationFunction;
    use crate::operators::ValueOperator;
    use linkdisc_entity::EntityBuilder;
    use linkdisc_similarity::DistanceFunction;

    fn label_rule() -> LinkageRule {
        LinkageRule::new(SimilarityOperator::comparison(
            ValueOperator::property("label"),
            ValueOperator::property("label"),
            DistanceFunction::Levenshtein,
            1.0,
        ))
    }

    #[test]
    fn empty_rule_links_nothing() {
        let rule = LinkageRule::empty();
        let a = EntityBuilder::new("a")
            .value("label", "x")
            .build_with_own_schema();
        let b = EntityBuilder::new("b")
            .value("label", "x")
            .build_with_own_schema();
        assert!(rule.is_empty());
        assert_eq!(rule.evaluate(&EntityPair::new(&a, &b)), 0.0);
        assert!(!rule.is_link(&EntityPair::new(&a, &b)));
        assert_eq!(rule.operator_count(), 0);
    }

    #[test]
    fn exact_match_yields_full_similarity() {
        let rule = label_rule();
        let a = EntityBuilder::new("a")
            .value("label", "Berlin")
            .build_with_own_schema();
        let b = EntityBuilder::new("b")
            .value("label", "Berlin")
            .build_with_own_schema();
        assert_eq!(rule.evaluate(&EntityPair::new(&a, &b)), 1.0);
        assert!(rule.is_link(&EntityPair::new(&a, &b)));
    }

    #[test]
    fn half_similarity_is_still_a_link() {
        // distance 1 with threshold 2 -> similarity 0.5 which is exactly the
        // linking threshold of Definition 3
        let rule = LinkageRule::new(SimilarityOperator::comparison(
            ValueOperator::property("label"),
            ValueOperator::property("label"),
            DistanceFunction::Levenshtein,
            2.0,
        ));
        let a = EntityBuilder::new("a")
            .value("label", "Berlin")
            .build_with_own_schema();
        let b = EntityBuilder::new("b")
            .value("label", "berlin")
            .build_with_own_schema();
        let pair = EntityPair::new(&a, &b);
        assert!((rule.evaluate(&pair) - 0.5).abs() < 1e-12);
        assert!(rule.is_link(&pair));
    }

    #[test]
    fn replace_root_swaps_the_tree() {
        let mut rule = LinkageRule::empty();
        assert!(rule
            .replace_root(label_rule().into_root().unwrap())
            .is_none());
        assert_eq!(rule.operator_count(), 3);
        let previous = rule.replace_root(SimilarityOperator::aggregation(
            AggregationFunction::Max,
            vec![],
        ));
        assert!(previous.is_some());
        assert_eq!(rule.operator_count(), 1);
    }

    #[test]
    fn stats_shortcut_matches_manual_counts() {
        let rule = label_rule();
        let stats = rule.stats();
        assert_eq!(stats.operators, rule.operator_count());
        assert_eq!(stats.comparisons, 1);
    }
}
