//! Aggregation functions (Table 3 of the paper).

/// The aggregation functions used to combine the scores of several similarity
/// operators.  Table 3 of the paper lists `max`, `min` and `wmean`.
///
/// * `min` corresponds to the conjunction of all comparisons (threshold-based
///   boolean classifier, Definition 10),
/// * `max` corresponds to a disjunction,
/// * `wmean` is the weighted average underlying linear classifiers
///   (Definition 9).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AggregationFunction {
    /// The maximum of all child scores.
    Max,
    /// The minimum of all child scores.
    Min,
    /// The weighted arithmetic mean of the child scores.
    WeightedMean,
}

impl AggregationFunction {
    /// Every aggregation function, in a stable order.
    pub const ALL: [AggregationFunction; 3] = [
        AggregationFunction::Max,
        AggregationFunction::Min,
        AggregationFunction::WeightedMean,
    ];

    /// The canonical name used by the rule DSL.
    pub fn name(&self) -> &'static str {
        match self {
            AggregationFunction::Max => "max",
            AggregationFunction::Min => "min",
            AggregationFunction::WeightedMean => "wmean",
        }
    }

    /// Parses a DSL name back into an aggregation function.
    pub fn from_name(name: &str) -> Option<Self> {
        Self::ALL.iter().copied().find(|f| f.name() == name)
    }

    /// Combines child scores with their weights (Definition 8).
    ///
    /// An empty score list yields `0.0`; `max`/`min` ignore the weights.
    pub fn evaluate(&self, scores: &[f64], weights: &[u32]) -> f64 {
        if scores.is_empty() {
            return 0.0;
        }
        match self {
            AggregationFunction::Max => scores.iter().copied().fold(f64::MIN, f64::max),
            AggregationFunction::Min => scores.iter().copied().fold(f64::MAX, f64::min),
            AggregationFunction::WeightedMean => {
                let mut weighted_sum = 0.0;
                let mut weight_sum = 0.0;
                for (i, &score) in scores.iter().enumerate() {
                    let weight = weights.get(i).copied().unwrap_or(1).max(1) as f64;
                    weighted_sum += weight * score;
                    weight_sum += weight;
                }
                if weight_sum == 0.0 {
                    0.0
                } else {
                    weighted_sum / weight_sum
                }
            }
        }
    }
}

impl std::fmt::Display for AggregationFunction {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn names_round_trip() {
        for f in AggregationFunction::ALL {
            assert_eq!(AggregationFunction::from_name(f.name()), Some(f));
        }
        assert_eq!(AggregationFunction::from_name("sum"), None);
    }

    #[test]
    fn min_and_max_ignore_weights() {
        let scores = [0.2, 0.9, 0.5];
        let weights = [10, 1, 1];
        assert_eq!(AggregationFunction::Min.evaluate(&scores, &weights), 0.2);
        assert_eq!(AggregationFunction::Max.evaluate(&scores, &weights), 0.9);
    }

    #[test]
    fn weighted_mean_matches_definition_9() {
        // (2*0.4 + 1*1.0) / 3 = 0.6
        let scores = [0.4, 1.0];
        let weights = [2, 1];
        assert!(
            (AggregationFunction::WeightedMean.evaluate(&scores, &weights) - 0.6).abs() < 1e-12
        );
    }

    #[test]
    fn missing_weights_default_to_one() {
        let scores = [0.0, 1.0];
        assert_eq!(
            AggregationFunction::WeightedMean.evaluate(&scores, &[]),
            0.5
        );
    }

    #[test]
    fn empty_scores_yield_zero() {
        for f in AggregationFunction::ALL {
            assert_eq!(f.evaluate(&[], &[]), 0.0);
        }
    }

    #[test]
    fn zero_weights_are_clamped_to_one() {
        let scores = [1.0, 0.0];
        let weights = [0, 0];
        assert_eq!(
            AggregationFunction::WeightedMean.evaluate(&scores, &weights),
            0.5
        );
    }

    proptest! {
        #[test]
        fn aggregations_stay_in_unit_interval(
            scores in proptest::collection::vec(0.0f64..=1.0, 1..8),
            weights in proptest::collection::vec(1u32..10, 1..8),
        ) {
            for f in AggregationFunction::ALL {
                let v = f.evaluate(&scores, &weights);
                prop_assert!((0.0..=1.0).contains(&v), "{f} produced {v}");
            }
        }

        #[test]
        fn mean_lies_between_min_and_max(
            scores in proptest::collection::vec(0.0f64..=1.0, 1..8),
            weights in proptest::collection::vec(1u32..10, 1..8),
        ) {
            let min = AggregationFunction::Min.evaluate(&scores, &weights);
            let max = AggregationFunction::Max.evaluate(&scores, &weights);
            let mean = AggregationFunction::WeightedMean.evaluate(&scores, &weights);
            prop_assert!(mean >= min - 1e-12);
            prop_assert!(mean <= max + 1e-12);
        }
    }
}
