//! The four linkage-rule operators and their evaluation semantics.

use linkdisc_entity::{Entity, EntityPair};
use linkdisc_similarity::DistanceFunction;
use linkdisc_transform::TransformFunction;

use crate::aggregation::AggregationFunction;

/// A value operator: yields a discriminative value set for a single entity
/// (the `V := [A ∪ B → Σ]` of the paper).
#[derive(Debug, Clone, PartialEq)]
pub enum ValueOperator {
    /// Retrieves the values of a property (Definition 5).
    Property(PropertyOperator),
    /// Transforms the values of child operators (Definition 6).
    Transformation(TransformationOperator),
}

/// A property operator `v^p(p) = e ↦ e.p`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PropertyOperator {
    /// The name of the property to retrieve.
    pub property: String,
}

/// A transformation operator `v^t(~v, f^t)`.
#[derive(Debug, Clone, PartialEq)]
pub struct TransformationOperator {
    /// The transformation function applied to the child value sets.
    pub function: TransformFunction,
    /// Child value operators; transformations may be nested into chains.
    pub inputs: Vec<ValueOperator>,
}

impl ValueOperator {
    /// Creates a property operator.
    pub fn property(name: impl Into<String>) -> Self {
        ValueOperator::Property(PropertyOperator {
            property: name.into(),
        })
    }

    /// Creates a transformation operator.
    pub fn transformation(function: TransformFunction, inputs: Vec<ValueOperator>) -> Self {
        ValueOperator::Transformation(TransformationOperator { function, inputs })
    }

    /// Evaluates this value operator on an entity, yielding a value set.
    pub fn evaluate(&self, entity: &Entity) -> Vec<String> {
        match self {
            ValueOperator::Property(p) => entity.values(&p.property).to_vec(),
            ValueOperator::Transformation(t) => {
                let inputs: Vec<Vec<String>> =
                    t.inputs.iter().map(|op| op.evaluate(entity)).collect();
                t.function.apply(&inputs)
            }
        }
    }

    /// Total number of operators in this value subtree (properties count too).
    pub fn operator_count(&self) -> usize {
        match self {
            ValueOperator::Property(_) => 1,
            ValueOperator::Transformation(t) => {
                1 + t
                    .inputs
                    .iter()
                    .map(ValueOperator::operator_count)
                    .sum::<usize>()
            }
        }
    }

    /// Number of transformation operators in this value subtree.
    pub fn transformation_count(&self) -> usize {
        match self {
            ValueOperator::Property(_) => 0,
            ValueOperator::Transformation(t) => {
                1 + t
                    .inputs
                    .iter()
                    .map(ValueOperator::transformation_count)
                    .sum::<usize>()
            }
        }
    }

    /// All property names referenced by this value subtree.
    pub fn properties(&self) -> Vec<&str> {
        match self {
            ValueOperator::Property(p) => vec![p.property.as_str()],
            ValueOperator::Transformation(t) => t
                .inputs
                .iter()
                .flat_map(ValueOperator::properties)
                .collect(),
        }
    }

    /// Maximum nesting depth of this value subtree (a bare property has depth 1).
    pub fn depth(&self) -> usize {
        match self {
            ValueOperator::Property(_) => 1,
            ValueOperator::Transformation(t) => {
                1 + t.inputs.iter().map(ValueOperator::depth).max().unwrap_or(0)
            }
        }
    }

    /// Removes directly nested duplicate transformations (e.g.
    /// `lowerCase(lowerCase(x))` becomes `lowerCase(x)`).  Transformation
    /// crossover calls this to honour the paper's "duplicated transformations
    /// are removed" step.
    pub fn dedup_transformations(&mut self) {
        if let ValueOperator::Transformation(t) = self {
            for input in &mut t.inputs {
                input.dedup_transformations();
            }
            // collapse a single child applying the same function
            if t.inputs.len() == 1 {
                if let ValueOperator::Transformation(child) = &t.inputs[0] {
                    if child.function == t.function {
                        let grandchildren = child.inputs.clone();
                        t.inputs = grandchildren;
                    }
                }
            }
        }
    }
}

/// A similarity operator: assigns a score in `[0, 1]` to an entity pair
/// (the `S := [A × B → [0, 1]]` of the paper).
#[derive(Debug, Clone, PartialEq)]
pub enum SimilarityOperator {
    /// Compares two value operators with a distance measure (Definition 7).
    Comparison(Comparison),
    /// Aggregates several similarity operators (Definition 8).
    Aggregation(Aggregation),
}

/// A comparison operator `s^c(v_a, v_b, f^d, θ)` with a weight used by
/// enclosing weighted-mean aggregations.
#[derive(Debug, Clone, PartialEq)]
pub struct Comparison {
    /// Value operator evaluated on the source entity.
    pub source: ValueOperator,
    /// Value operator evaluated on the target entity.
    pub target: ValueOperator,
    /// The distance measure.
    pub function: DistanceFunction,
    /// The distance threshold `θ`.
    pub threshold: f64,
    /// Weight used by an enclosing weighted-mean aggregation.
    pub weight: u32,
}

/// An aggregation operator `s^a(~s, ~w, f^a)`.
#[derive(Debug, Clone, PartialEq)]
pub struct Aggregation {
    /// The aggregation function.
    pub function: AggregationFunction,
    /// Weight used by an enclosing weighted-mean aggregation (aggregations may
    /// be nested).
    pub weight: u32,
    /// Child similarity operators; the child weights form the `~w` vector.
    pub operators: Vec<SimilarityOperator>,
}

impl SimilarityOperator {
    /// Creates a comparison operator.
    pub fn comparison(
        source: ValueOperator,
        target: ValueOperator,
        function: DistanceFunction,
        threshold: f64,
    ) -> Self {
        SimilarityOperator::Comparison(Comparison {
            source,
            target,
            function,
            threshold,
            weight: 1,
        })
    }

    /// Creates an aggregation operator.
    pub fn aggregation(function: AggregationFunction, operators: Vec<SimilarityOperator>) -> Self {
        SimilarityOperator::Aggregation(Aggregation {
            function,
            weight: 1,
            operators,
        })
    }

    /// The weight of this operator within an enclosing aggregation.
    pub fn weight(&self) -> u32 {
        match self {
            SimilarityOperator::Comparison(c) => c.weight,
            SimilarityOperator::Aggregation(a) => a.weight,
        }
    }

    /// Sets the weight of this operator.
    pub fn set_weight(&mut self, weight: u32) {
        match self {
            SimilarityOperator::Comparison(c) => c.weight = weight.max(1),
            SimilarityOperator::Aggregation(a) => a.weight = weight.max(1),
        }
    }

    /// Evaluates this similarity operator on an entity pair.
    pub fn evaluate(&self, pair: &EntityPair<'_>) -> f64 {
        match self {
            SimilarityOperator::Comparison(c) => {
                let source_values = c.source.evaluate(pair.source);
                let target_values = c.target.evaluate(pair.target);
                c.function
                    .similarity(&source_values, &target_values, c.threshold)
            }
            SimilarityOperator::Aggregation(a) => {
                let scores: Vec<f64> = a.operators.iter().map(|op| op.evaluate(pair)).collect();
                let weights: Vec<u32> =
                    a.operators.iter().map(SimilarityOperator::weight).collect();
                a.function.evaluate(&scores, &weights)
            }
        }
    }

    /// Total number of operators in this subtree, counting property,
    /// transformation, comparison and aggregation operators alike.  This is
    /// the `operatorcount` of the parsimony pressure (Section 5.2).
    pub fn operator_count(&self) -> usize {
        match self {
            SimilarityOperator::Comparison(c) => {
                1 + c.source.operator_count() + c.target.operator_count()
            }
            SimilarityOperator::Aggregation(a) => {
                1 + a
                    .operators
                    .iter()
                    .map(SimilarityOperator::operator_count)
                    .sum::<usize>()
            }
        }
    }

    /// Number of comparison operators in this subtree.
    pub fn comparison_count(&self) -> usize {
        match self {
            SimilarityOperator::Comparison(_) => 1,
            SimilarityOperator::Aggregation(a) => a
                .operators
                .iter()
                .map(SimilarityOperator::comparison_count)
                .sum(),
        }
    }

    /// Number of aggregation operators in this subtree.
    pub fn aggregation_count(&self) -> usize {
        match self {
            SimilarityOperator::Comparison(_) => 0,
            SimilarityOperator::Aggregation(a) => {
                1 + a
                    .operators
                    .iter()
                    .map(SimilarityOperator::aggregation_count)
                    .sum::<usize>()
            }
        }
    }

    /// Number of transformation operators in this subtree.
    pub fn transformation_count(&self) -> usize {
        match self {
            SimilarityOperator::Comparison(c) => {
                c.source.transformation_count() + c.target.transformation_count()
            }
            SimilarityOperator::Aggregation(a) => a
                .operators
                .iter()
                .map(SimilarityOperator::transformation_count)
                .sum(),
        }
    }

    /// Maximum depth of the similarity-operator tree (a bare comparison has
    /// depth 1; value operators do not count).
    pub fn depth(&self) -> usize {
        match self {
            SimilarityOperator::Comparison(_) => 1,
            SimilarityOperator::Aggregation(a) => {
                1 + a
                    .operators
                    .iter()
                    .map(SimilarityOperator::depth)
                    .max()
                    .unwrap_or(0)
            }
        }
    }

    /// All property names referenced anywhere below this operator, as
    /// `(source-side, target-side)` lists.
    pub fn properties(&self) -> (Vec<&str>, Vec<&str>) {
        match self {
            SimilarityOperator::Comparison(c) => (c.source.properties(), c.target.properties()),
            SimilarityOperator::Aggregation(a) => {
                let mut source = Vec::new();
                let mut target = Vec::new();
                for op in &a.operators {
                    let (s, t) = op.properties();
                    source.extend(s);
                    target.extend(t);
                }
                (source, target)
            }
        }
    }

    /// `true` if the tree contains at least one nested aggregation (i.e. the
    /// rule is non-linear in the sense of Section 6.3).
    pub fn has_nested_aggregation(&self) -> bool {
        match self {
            SimilarityOperator::Comparison(_) => false,
            SimilarityOperator::Aggregation(a) => a
                .operators
                .iter()
                .any(|op| matches!(op, SimilarityOperator::Aggregation(_))),
        }
    }

    /// `true` if any value operator in the tree is a transformation.
    pub fn has_transformations(&self) -> bool {
        self.transformation_count() > 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use linkdisc_entity::{EntityBuilder, EntityPair};

    fn city_pair() -> (linkdisc_entity::Entity, linkdisc_entity::Entity) {
        let a = EntityBuilder::new("a:berlin")
            .value("label", "Berlin")
            .value("point", "52.5200 13.4050")
            .build_with_own_schema();
        let b = EntityBuilder::new("b:berlin")
            .value("rdfs:label", "berlin")
            .value("coord", "52.5200 13.4050")
            .build_with_own_schema();
        (a, b)
    }

    fn figure2_rule() -> SimilarityOperator {
        // The example rule of Figure 2: min(levenshtein(lowerCase(label), lowerCase(rdfs:label)) θ=1,
        //                                   geographic(point, coord) θ=50)
        SimilarityOperator::aggregation(
            AggregationFunction::Min,
            vec![
                SimilarityOperator::comparison(
                    ValueOperator::transformation(
                        TransformFunction::LowerCase,
                        vec![ValueOperator::property("label")],
                    ),
                    ValueOperator::transformation(
                        TransformFunction::LowerCase,
                        vec![ValueOperator::property("rdfs:label")],
                    ),
                    DistanceFunction::Levenshtein,
                    1.0,
                ),
                SimilarityOperator::comparison(
                    ValueOperator::property("point"),
                    ValueOperator::property("coord"),
                    DistanceFunction::Geographic,
                    50.0,
                ),
            ],
        )
    }

    #[test]
    fn property_operator_retrieves_values() {
        let (a, _) = city_pair();
        let op = ValueOperator::property("label");
        assert_eq!(op.evaluate(&a), vec!["Berlin".to_string()]);
        assert!(ValueOperator::property("missing").evaluate(&a).is_empty());
    }

    #[test]
    fn transformation_chains_are_applied_inside_out() {
        let (a, _) = city_pair();
        let op = ValueOperator::transformation(
            TransformFunction::Tokenize,
            vec![ValueOperator::transformation(
                TransformFunction::LowerCase,
                vec![ValueOperator::property("label")],
            )],
        );
        assert_eq!(op.evaluate(&a), vec!["berlin".to_string()]);
    }

    #[test]
    fn figure2_rule_matches_equal_cities() {
        let (a, b) = city_pair();
        let rule = figure2_rule();
        let pair = EntityPair::new(&a, &b);
        let score = rule.evaluate(&pair);
        assert!(score >= 0.5, "score was {score}");
    }

    #[test]
    fn figure2_rule_rejects_different_cities() {
        let (a, _) = city_pair();
        let other = EntityBuilder::new("b:paris")
            .value("rdfs:label", "paris")
            .value("coord", "48.8566 2.3522")
            .build_with_own_schema();
        let rule = figure2_rule();
        let pair = EntityPair::new(&a, &other);
        assert!(rule.evaluate(&pair) < 0.5);
    }

    #[test]
    fn min_aggregation_requires_all_comparisons_to_match() {
        // same label but far away coordinates -> min pulls the score to 0
        let (a, _) = city_pair();
        let impostor = EntityBuilder::new("b:fake")
            .value("rdfs:label", "berlin")
            .value("coord", "10.0 10.0")
            .build_with_own_schema();
        let rule = figure2_rule();
        assert_eq!(rule.evaluate(&EntityPair::new(&a, &impostor)), 0.0);
    }

    #[test]
    fn operator_counts() {
        let rule = figure2_rule();
        // 1 aggregation + 2 comparisons + 2 transformations + 4 properties = 9
        assert_eq!(rule.operator_count(), 9);
        assert_eq!(rule.comparison_count(), 2);
        assert_eq!(rule.aggregation_count(), 1);
        assert_eq!(rule.transformation_count(), 2);
        assert_eq!(rule.depth(), 2);
        assert!(!rule.has_nested_aggregation());
        assert!(rule.has_transformations());
    }

    #[test]
    fn properties_are_split_by_side() {
        let rule = figure2_rule();
        let (source, target) = rule.properties();
        assert_eq!(source, vec!["label", "point"]);
        assert_eq!(target, vec!["rdfs:label", "coord"]);
    }

    #[test]
    fn nested_aggregations_are_detected() {
        let nested =
            SimilarityOperator::aggregation(AggregationFunction::Max, vec![figure2_rule()]);
        assert!(nested.has_nested_aggregation());
        assert_eq!(nested.depth(), 3);
    }

    #[test]
    fn weights_are_clamped_to_at_least_one() {
        let mut rule = figure2_rule();
        rule.set_weight(0);
        assert_eq!(rule.weight(), 1);
        rule.set_weight(7);
        assert_eq!(rule.weight(), 7);
    }

    #[test]
    fn missing_values_give_zero_similarity() {
        let a = EntityBuilder::new("a")
            .value("label", "Berlin")
            .build_with_own_schema();
        let b = EntityBuilder::new("b")
            .value("other", "Berlin")
            .build_with_own_schema();
        let cmp = SimilarityOperator::comparison(
            ValueOperator::property("label"),
            ValueOperator::property("rdfs:label"),
            DistanceFunction::Levenshtein,
            1.0,
        );
        assert_eq!(cmp.evaluate(&EntityPair::new(&a, &b)), 0.0);
    }

    #[test]
    fn dedup_collapses_repeated_transformations() {
        let mut op = ValueOperator::transformation(
            TransformFunction::LowerCase,
            vec![ValueOperator::transformation(
                TransformFunction::LowerCase,
                vec![ValueOperator::property("label")],
            )],
        );
        op.dedup_transformations();
        assert_eq!(op.transformation_count(), 1);
        // different functions are kept
        let mut chain = ValueOperator::transformation(
            TransformFunction::Tokenize,
            vec![ValueOperator::transformation(
                TransformFunction::LowerCase,
                vec![ValueOperator::property("label")],
            )],
        );
        chain.dedup_transformations();
        assert_eq!(chain.transformation_count(), 2);
    }

    #[test]
    fn empty_aggregation_evaluates_to_zero() {
        let empty = SimilarityOperator::aggregation(AggregationFunction::Min, vec![]);
        let (a, b) = city_pair();
        assert_eq!(empty.evaluate(&EntityPair::new(&a, &b)), 0.0);
    }
}
