//! Compiled evaluation plans: the fast path for rule evaluation.
//!
//! [`LinkageRule::evaluate`] walks the operator tree for every entity pair,
//! re-resolving property names against the schema, re-running identical
//! transformation chains and allocating fresh `Vec<String>` buffers per
//! operator per pair.  During learning the same rule is scored against every
//! resolved reference pair, and GP populations are dominated by repeated
//! subexpressions, so almost all of that work is redundant.
//!
//! A [`CompiledRule`] lowers the tree into a flat instruction list once:
//!
//! * property accesses are resolved to integer column indices against the
//!   source/target schemas up front (with a by-name fallback for entities
//!   carrying a different schema),
//! * transformation chains are deduplicated by structural hash; their
//!   outputs are memoized **per entity** in a shared [`ValueCache`], interned
//!   as `Arc<[String]>` slices so repeated pair evaluations read borrowed
//!   slices with zero per-pair allocation,
//! * distance functions get threshold-aware fast paths: Levenshtein runs the
//!   bit-parallel kernel bounded by the comparison threshold, and
//!   Jaccard/Dice run a linear merge over sorted token-id slices cached next
//!   to the values (tokens are interned process-wide, see [`crate::tokens`]).
//!
//! The tree-walking evaluator stays as the reference oracle: for every rule
//! and pair, `CompiledRule::evaluate` returns **bit-identical** scores to
//! `LinkageRule::evaluate` (enforced by the property-based parity test in
//! `tests/tests/compiled_parity.rs`).
//!
//! On top of the exact plan, [`CompiledRule::evaluate_bounded`] runs a
//! **score-bounded** evaluation: each aggregation's children are ordered
//! cheapest-first by a static cost model, and a running requirement is
//! threaded down the tree so a pair stops at the earliest comparison that
//! decides it cannot reach the link threshold.  The contract (documented in
//! DESIGN.md and enforced by `tests/tests/bounded_parity.rs`): the returned
//! score `s` always satisfies `exact ≤ s`, and `s ≥ threshold` implies
//! `s == exact` bit-for-bit — classification and the scores of *linked*
//! pairs are identical to exhaustive evaluation; only pairs already decided
//! "no link" may carry a different (still sub-threshold) score.

use std::collections::{HashMap, HashSet};
use std::hash::{Hash, Hasher};
use std::marker::PhantomData;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use linkdisc_entity::{Entity, EntityPair, PropertyIndex, Schema};
use linkdisc_similarity::{
    dice_ids, jaccard_ids, levenshtein_bounded, threshold_similarity, DistanceFunction,
};
use linkdisc_transform::TransformFunction;

use crate::aggregation::AggregationFunction;
use crate::operators::{SimilarityOperator, ValueOperator};
use crate::rule::LinkageRule;

/// Index of a value slot within a [`CompiledRule`]'s slot table.
type SlotId = usize;

/// A compiled value operator.
#[derive(Debug, Clone)]
pub(crate) enum Slot {
    /// A property access, resolved to a column index against the schema the
    /// plan was compiled for.  `index` is `None` when the property does not
    /// exist in that schema (the value set is empty then).
    Property {
        name: String,
        index: Option<PropertyIndex>,
    },
    /// A transformation over other slots; outputs are memoized per entity.
    Transform {
        function: TransformFunction,
        inputs: Vec<SlotId>,
    },
}

/// One instruction of the flattened similarity tree (postorder).
#[derive(Debug, Clone)]
enum Instruction {
    /// Score two value slots with a distance function.
    Compare {
        source: SlotId,
        target: SlotId,
        function: DistanceFunction,
        threshold: f64,
        weight: u32,
    },
    /// Pop `arity` child scores off the stack and combine them.
    Aggregate {
        function: AggregationFunction,
        weight: u32,
        arity: usize,
    },
}

/// One node of the bounded-evaluation tree (the same similarity tree as the
/// instruction list, in node form so evaluation can stop mid-aggregation).
#[derive(Debug, Clone)]
enum EvalNode {
    /// Score two value slots with a distance function.
    Compare {
        source: SlotId,
        target: SlotId,
        function: DistanceFunction,
        threshold: f64,
    },
    /// Combine child scores, visiting children cheapest-first.
    Aggregate {
        function: AggregationFunction,
        /// Child node ids in the rule's original order (the order the
        /// exhaustive evaluator accumulates in).
        children: Vec<usize>,
        /// Raw child weights, original order (`WeightedMean` applies its own
        /// `max(1)` clamp, exactly like [`AggregationFunction::evaluate`]).
        weights: Vec<u32>,
        /// Positions into `children`, sorted cheapest-first by the static
        /// cost model (stable: ties keep the original order).
        visit: Vec<usize>,
        /// `Σ max(weight, 1)` over the children, as used by `WeightedMean`.
        weight_sum: f64,
    },
}

/// Cumulative counters of the score-bounded evaluator.  Callers thread one
/// through `evaluate_bounded_*_stats` and merge per-worker copies upward
/// (`MatchingReport`, `IterationStats`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EvalStats {
    /// Pairs evaluated through the bounded path.
    pub pairs: u64,
    /// The subset of `pairs` that stopped before evaluating every
    /// comparison.
    pub pairs_short_circuited: u64,
    /// Comparison operators actually evaluated.
    pub comparisons_evaluated: u64,
    /// Comparison operators skipped by short-circuiting.
    pub comparisons_skipped: u64,
}

impl EvalStats {
    /// Folds another counter set into this one.
    pub fn merge(&mut self, other: &EvalStats) {
        self.pairs += other.pairs;
        self.pairs_short_circuited += other.pairs_short_circuited;
        self.comparisons_evaluated += other.comparisons_evaluated;
        self.comparisons_skipped += other.comparisons_skipped;
    }

    /// Fraction of comparisons skipped (`0.0` before any evaluation).
    pub fn skip_rate(&self) -> f64 {
        let total = self.comparisons_evaluated + self.comparisons_skipped;
        if total == 0 {
            0.0
        } else {
            self.comparisons_skipped as f64 / total as f64
        }
    }
}

/// Static relative cost of one comparison, used to order aggregation
/// children cheapest-first.  The constants follow the spirit of the
/// `PROBE_COST_RATIO` calibration in the matching crate (one full probe ≈ 50
/// candidate-set operations): equality and numeric parses cost a few
/// nanoseconds, sorted-id token merges tens, the string kernels hundreds —
/// Levenshtein grows with its threshold because the distance must be chased
/// across a wider band of the cross product before the comparison can give
/// up.  Only the *ordering* matters, so coarse buckets are enough.
fn comparison_cost(function: DistanceFunction, threshold: f64) -> f64 {
    match function {
        DistanceFunction::Equality => 1.0,
        DistanceFunction::Numeric => 2.0,
        DistanceFunction::Date => 3.0,
        DistanceFunction::Geographic => 4.0,
        DistanceFunction::Jaccard | DistanceFunction::Dice => 6.0,
        DistanceFunction::Levenshtein => 16.0 + 2.0 * threshold.clamp(0.0, 10.0),
        DistanceFunction::Jaro => 24.0,
        DistanceFunction::JaroWinkler => 26.0,
    }
}

/// One side's slot table, deduplicating structurally identical value
/// operators so a chain appearing under several comparisons is compiled (and
/// later memoized) once.
#[derive(Debug, Default)]
struct SlotTable {
    slots: Vec<Slot>,
    hashes: Vec<u64>,
    by_hash: HashMap<u64, SlotId>,
}

impl SlotTable {
    fn intern(&mut self, operator: &ValueOperator, schema: &Schema) -> SlotId {
        let hash = value_operator_hash(operator);
        if let Some(&id) = self.by_hash.get(&hash) {
            return id;
        }
        let slot = match operator {
            ValueOperator::Property(p) => Slot::Property {
                name: p.property.clone(),
                index: schema.index_of(&p.property),
            },
            ValueOperator::Transformation(t) => {
                let inputs = t
                    .inputs
                    .iter()
                    .map(|input| self.intern(input, schema))
                    .collect();
                Slot::Transform {
                    function: t.function,
                    inputs,
                }
            }
        };
        let id = self.slots.len();
        self.slots.push(slot);
        self.hashes.push(hash);
        self.by_hash.insert(hash, id);
        id
    }
}

/// A schema-resolved table of value slots for one side of a rule, with the
/// evaluation machinery (per-entity memoized transforms, value sets) shared
/// between [`CompiledRule`] and [`CompiledChain`].
#[derive(Debug, Clone)]
pub(crate) struct SlotProgram {
    pub(crate) schema: Arc<Schema>,
    pub(crate) slots: Vec<Slot>,
    pub(crate) hashes: Vec<u64>,
}

impl SlotProgram {
    /// The values of a slot for one entity: a borrowed slice for property
    /// slots, a memoized interned slice for transformation slots.
    fn values<'e>(
        &self,
        slot: SlotId,
        entity: &'e Entity,
        cache: &ValueCache<'e>,
    ) -> ValuesRef<'e> {
        match &self.slots[slot] {
            Slot::Property { name, index } => {
                let values = if Arc::ptr_eq(entity.schema(), &self.schema) {
                    match index {
                        Some(index) => entity.values_at(*index),
                        None => &[],
                    }
                } else {
                    // the entity follows a different schema than the plan was
                    // compiled for; fall back to by-name resolution
                    entity.values(name)
                };
                ValuesRef::Borrowed(values)
            }
            Slot::Transform { .. } => {
                ValuesRef::Interned(cache.values(entity, self.hashes[slot], || {
                    self.compute_transform(slot, entity, cache)
                }))
            }
        }
    }

    /// Computes a transformation slot's output for one entity (cache miss
    /// path); the inputs themselves come through the cache.
    fn compute_transform<'e>(
        &self,
        slot: SlotId,
        entity: &'e Entity,
        cache: &ValueCache<'e>,
    ) -> Vec<String> {
        let Slot::Transform { function, inputs } = &self.slots[slot] else {
            unreachable!("compute_transform is only called for transform slots");
        };
        let resolved: Vec<ValuesRef<'_>> = inputs
            .iter()
            .map(|&input| self.values(input, entity, cache))
            .collect();
        let slices: Vec<&[String]> = resolved.iter().map(|v| v.as_slice()).collect();
        function.apply_slices(&slices)
    }

    /// The sorted token ids of a slot's value set for one entity — the
    /// Jaccard/Dice fast path.  Interning is process-wide (see
    /// [`crate::tokens`]), so ids from the source-side and target-side caches
    /// are directly comparable.
    fn ids<'e>(&self, slot: SlotId, entity: &'e Entity, cache: &ValueCache<'e>) -> Arc<[u32]> {
        cache.token_ids(entity, self.hashes[slot], || {
            self.values(slot, entity, cache).as_slice().to_vec()
        })
    }
}

/// A single compiled value-operator chain: the slot machinery of
/// [`CompiledRule`] for one value operator against one schema.
///
/// The MultiBlock indexing pipeline uses this to apply transformation chains
/// *before* computing block keys, so normalised values block exactly as they
/// evaluate.  Chains are memoized in the same [`ValueCache`] under the same
/// structural hashes as rule evaluation — building the index and evaluating
/// the rule share one transform computation per entity.
#[derive(Debug, Clone)]
pub struct CompiledChain {
    program: SlotProgram,
    root: SlotId,
}

impl CompiledChain {
    /// Compiles a value operator against the schema of the entities it will
    /// be evaluated on.
    pub fn compile(operator: &ValueOperator, schema: &Arc<Schema>) -> Self {
        let mut table = SlotTable::default();
        let root = table.intern(operator, schema);
        CompiledChain {
            program: SlotProgram {
                schema: schema.clone(),
                slots: table.slots,
                hashes: table.hashes,
            },
            root,
        }
    }

    /// The values of the chain for one entity (memoized in `cache` for
    /// transformation chains).
    pub fn values<'e>(&self, entity: &'e Entity, cache: &ValueCache<'e>) -> ChainValues<'e> {
        ChainValues(self.program.values(self.root, entity, cache))
    }

    /// The structural hash of the chain's root value operator — the same
    /// hash [`ValueCache`] memoizes the chain's outputs under, and the chain
    /// component of the shared-leaf-index key: two compiled chains with
    /// equal hashes compute identical values for every entity.
    pub fn structural_hash(&self) -> u64 {
        self.program.hashes[self.root]
    }

    /// The structural hashes of *every* slot of the chain (the root plus all
    /// nested transformation inputs) — the full set of [`ValueCache`] keys
    /// this chain can create for one entity.
    pub fn slot_hashes(&self) -> &[u64] {
        &self.program.hashes
    }
}

/// Borrowed-or-interned output of a [`CompiledChain`]; dereferences to the
/// value slice.
pub struct ChainValues<'e>(ValuesRef<'e>);

impl ChainValues<'_> {
    /// The values as a slice.
    pub fn as_slice(&self) -> &[String] {
        self.0.as_slice()
    }
}

impl std::ops::Deref for ChainValues<'_> {
    type Target = [String];

    fn deref(&self) -> &[String] {
        self.as_slice()
    }
}

/// A linkage rule lowered into a flat, schema-resolved evaluation plan.
#[derive(Debug, Clone)]
pub struct CompiledRule {
    source: SlotProgram,
    target: SlotProgram,
    instructions: Vec<Instruction>,
    /// The same tree in node form for bounded evaluation, children ordered
    /// cheapest-first; shares the slot tables with `instructions`.
    nodes: Vec<EvalNode>,
    root_node: Option<usize>,
    total_comparisons: u32,
    rule_hash: u64,
}

impl CompiledRule {
    /// Compiles a rule against the schemas of the two data sources its
    /// entities will come from.
    pub fn compile(
        rule: &LinkageRule,
        source_schema: &Arc<Schema>,
        target_schema: &Arc<Schema>,
    ) -> Self {
        let mut source_table = SlotTable::default();
        let mut target_table = SlotTable::default();
        let mut instructions = Vec::new();
        let mut nodes = Vec::new();
        let mut root_node = None;
        let mut total_comparisons = 0;
        if let Some(root) = rule.root() {
            lower_similarity(
                root,
                source_schema,
                target_schema,
                &mut source_table,
                &mut target_table,
                &mut instructions,
            );
            // second lowering for the bounded tree; slot interning is
            // hash-deduplicated, so both plans share the same slot ids
            let lowered = lower_node(
                root,
                source_schema,
                target_schema,
                &mut source_table,
                &mut target_table,
                &mut nodes,
            );
            root_node = Some(lowered.node);
            total_comparisons = lowered.comparisons;
        }
        CompiledRule {
            source: SlotProgram {
                schema: source_schema.clone(),
                slots: source_table.slots,
                hashes: source_table.hashes,
            },
            target: SlotProgram {
                schema: target_schema.clone(),
                slots: target_table.slots,
                hashes: target_table.hashes,
            },
            instructions,
            nodes,
            root_node,
            total_comparisons,
            rule_hash: rule.canonical_hash(),
        }
    }

    /// The canonical hash of the rule this plan was compiled from (the key
    /// the fitness cache memoizes evaluations under).
    pub fn rule_hash(&self) -> u64 {
        self.rule_hash
    }

    /// Number of instructions in the plan (0 for the empty rule).
    pub fn instruction_count(&self) -> usize {
        self.instructions.len()
    }

    /// The structural hashes of every *target-side* value slot of the plan —
    /// exactly the [`ValueCache`] keys evaluation can create for a target
    /// entity.  A long-lived service evicts `(entity, hash)` pairs for these
    /// hashes when a target entity is removed.
    pub fn target_slot_hashes(&self) -> &[u64] {
        &self.target.hashes
    }

    /// Pre-computes (and memoizes in `cache`) every target-side
    /// transformation chain of the plan for one entity.  A serving writer
    /// warms an entity on ingest so concurrent readers score it from a hot
    /// cache instead of each paying the first-transform cost.
    pub fn warm_target<'e>(&self, entity: &'e Entity, cache: &ValueCache<'e>) {
        for slot in 0..self.target.slots.len() {
            if matches!(self.target.slots[slot], Slot::Transform { .. }) {
                self.target.values(slot, entity, cache);
            }
        }
    }

    /// Evaluates the plan on an entity pair, yielding the same similarity as
    /// [`LinkageRule::evaluate`] on the original rule.
    pub fn evaluate<'e>(&self, pair: &EntityPair<'e>, cache: &ValueCache<'e>) -> f64 {
        self.evaluate_two(pair.source, pair.target, cache, cache)
    }

    /// Evaluates the plan on a `(source, target)` pair whose two sides are
    /// memoized in *separate* caches with independent lifetimes.
    ///
    /// The streaming engine and the serving `LinkService` pair entities of
    /// very different lifetimes: a long-lived source (or a long-lived target
    /// index) against short-lived chunk or query entities.  A single
    /// [`ValueCache`] would force both sides down to the shorter lifetime and
    /// throw away the long side's memo; two caches keep each side memoized
    /// for exactly as long as its entities live.  Scores are bit-identical
    /// to [`CompiledRule::evaluate`] (the caches are pure memos).
    pub fn evaluate_two<'s, 't>(
        &self,
        source_entity: &'s Entity,
        target_entity: &'t Entity,
        source_cache: &ValueCache<'s>,
        target_cache: &ValueCache<'t>,
    ) -> f64 {
        if self.instructions.is_empty() {
            return 0.0;
        }
        EVAL_SCRATCH.with(|scratch| {
            let mut scratch = scratch.borrow_mut();
            self.run_instructions(
                source_entity,
                target_entity,
                source_cache,
                target_cache,
                &mut scratch,
            )
        })
    }

    /// Number of comparison operators in the plan.
    pub fn comparison_count(&self) -> u32 {
        self.total_comparisons
    }

    /// Score-bounded evaluation against a link threshold: stops at the
    /// earliest comparison that decides the pair cannot reach `threshold`.
    ///
    /// The returned score `s` is an **upper bound** of the exact score, and
    /// whenever `s ≥ threshold` it *is* the exact score bit-for-bit — so
    /// `s ≥ threshold` classifies pairs exactly like exhaustive evaluation,
    /// and every link carries its exact score.  Pairs decided "no link" may
    /// carry a score that differs from the exact one (both sub-threshold).
    pub fn evaluate_bounded<'e>(
        &self,
        pair: &EntityPair<'e>,
        cache: &ValueCache<'e>,
        threshold: f64,
    ) -> f64 {
        let mut stats = EvalStats::default();
        self.evaluate_bounded_two_stats(
            pair.source,
            pair.target,
            cache,
            cache,
            threshold,
            &mut stats,
        )
    }

    /// [`CompiledRule::evaluate_bounded`] over a pair with per-side caches
    /// (see [`CompiledRule::evaluate_two`] for the lifetime rationale).
    pub fn evaluate_bounded_two<'s, 't>(
        &self,
        source_entity: &'s Entity,
        target_entity: &'t Entity,
        source_cache: &ValueCache<'s>,
        target_cache: &ValueCache<'t>,
        threshold: f64,
    ) -> f64 {
        let mut stats = EvalStats::default();
        self.evaluate_bounded_two_stats(
            source_entity,
            target_entity,
            source_cache,
            target_cache,
            threshold,
            &mut stats,
        )
    }

    /// [`CompiledRule::evaluate_bounded_two`] accumulating short-circuit
    /// counters into `stats`.
    pub fn evaluate_bounded_two_stats<'s, 't>(
        &self,
        source_entity: &'s Entity,
        target_entity: &'t Entity,
        source_cache: &ValueCache<'s>,
        target_cache: &ValueCache<'t>,
        threshold: f64,
        stats: &mut EvalStats,
    ) -> f64 {
        let Some(root) = self.root_node else {
            return 0.0;
        };
        let mut evaluated = 0u32;
        // the arena is borrowed out of the per-thread scratch for the whole
        // recursion (comparison kernels never touch the scratch); it returns
        // empty but with its capacity intact, so warm evaluation allocates
        // nothing
        let mut arena =
            EVAL_SCRATCH.with(|scratch| std::mem::take(&mut scratch.borrow_mut().arena));
        let score = self.eval_node(
            root,
            threshold,
            source_entity,
            target_entity,
            source_cache,
            target_cache,
            &mut arena,
            &mut evaluated,
        );
        debug_assert!(arena.is_empty(), "every weighted mean truncates its frame");
        EVAL_SCRATCH.with(|scratch| scratch.borrow_mut().arena = arena);
        stats.pairs += 1;
        stats.comparisons_evaluated += u64::from(evaluated);
        let skipped = self.total_comparisons - evaluated;
        stats.comparisons_skipped += u64::from(skipped);
        if skipped > 0 {
            stats.pairs_short_circuited += 1;
        }
        score.clamp(0.0, 1.0)
    }

    /// Evaluates one node under the requirement `lo`.
    ///
    /// Invariants (the basis of the bounded-evaluation contract):
    /// * the returned value is `≥` the node's exact score (upper bound),
    /// * if the returned value is `≥ lo`, it **equals** the exact score
    ///   bit-for-bit (`WeightedMean` replays its accumulation in the
    ///   original child order to guarantee this).
    ///
    /// Passing `lo = f64::NEG_INFINITY` disables pruning entirely and
    /// reproduces the exhaustive result everywhere.
    #[allow(clippy::too_many_arguments)]
    fn eval_node<'s, 't>(
        &self,
        node: usize,
        lo: f64,
        source_entity: &'s Entity,
        target_entity: &'t Entity,
        source_cache: &ValueCache<'s>,
        target_cache: &ValueCache<'t>,
        arena: &mut Vec<f64>,
        evaluated: &mut u32,
    ) -> f64 {
        match &self.nodes[node] {
            EvalNode::Compare {
                source,
                target,
                function,
                threshold,
            } => {
                *evaluated += 1;
                self.comparison_score(
                    *source,
                    *target,
                    *function,
                    *threshold,
                    source_entity,
                    target_entity,
                    source_cache,
                    target_cache,
                )
            }
            EvalNode::Aggregate {
                function,
                children,
                weights,
                visit,
                weight_sum,
            } => {
                if children.is_empty() {
                    return 0.0;
                }
                match function {
                    AggregationFunction::Min => {
                        let mut worst = f64::MAX;
                        for &pos in visit {
                            let child = self.eval_node(
                                children[pos],
                                lo,
                                source_entity,
                                target_entity,
                                source_cache,
                                target_cache,
                                arena,
                                evaluated,
                            );
                            if child < lo {
                                // the child's value is an upper bound of its
                                // exact score, so the min is provably < lo
                                return child;
                            }
                            worst = worst.min(child);
                        }
                        worst
                    }
                    AggregationFunction::Max => {
                        // children only need to beat the best score so far;
                        // taking the max over every *returned* value (pruned
                        // children return upper bounds) preserves the
                        // upper-bound invariant, and whenever the result is
                        // ≥ lo it came from an exactly-evaluated child that
                        // dominates all other upper bounds — exact.
                        let mut best = f64::MIN;
                        for &pos in visit {
                            let requirement = lo.max(best);
                            let child = self.eval_node(
                                children[pos],
                                requirement,
                                source_entity,
                                target_entity,
                                source_cache,
                                target_cache,
                                arena,
                                evaluated,
                            );
                            if child > best {
                                best = child;
                            }
                            if best >= 1.0 {
                                // a perfect score cannot be beaten
                                break;
                            }
                        }
                        best
                    }
                    AggregationFunction::WeightedMean => self.eval_weighted_mean(
                        children,
                        weights,
                        visit,
                        *weight_sum,
                        lo,
                        source_entity,
                        target_entity,
                        source_cache,
                        target_cache,
                        arena,
                        evaluated,
                    ),
                }
            }
        }
    }

    /// `WeightedMean` under requirement `lo`: each child's requirement is
    /// derived by assuming every not-yet-visited child scores a perfect 1.0
    /// (the PR 2 index algebra, reused at evaluation time).  A small slack
    /// keeps floating-point round-off from ever pruning a pair an exact
    /// evaluation would link; if the slack check itself is inconclusive, the
    /// child is re-evaluated exactly and the loop continues.
    #[allow(clippy::too_many_arguments)]
    fn eval_weighted_mean<'s, 't>(
        &self,
        children: &[usize],
        weights: &[u32],
        visit: &[usize],
        weight_sum: f64,
        lo: f64,
        source_entity: &'s Entity,
        target_entity: &'t Entity,
        source_cache: &ValueCache<'s>,
        target_cache: &ValueCache<'t>,
        arena: &mut Vec<f64>,
        evaluated: &mut u32,
    ) -> f64 {
        // fp guard: requirements are derived against `lo − SLACK`, so a prune
        // implies the mean is below `lo` by at least SLACK — far above any
        // round-off the two accumulation orders can disagree by — and a pair
        // whose exact mean ties the threshold is never misclassified
        const SLACK: f64 = 1e-9;
        let slack_lo = lo - SLACK;
        let base = arena.len();
        arena.resize(base + children.len(), 0.0);
        // Σ weight·score over visited children (visit order — only used for
        // bound derivations; the exact result is replayed in original order)
        let mut accumulated = 0.0f64;
        // Σ weight over not-yet-visited children
        let mut remaining = weight_sum;
        for &pos in visit {
            let weight = weights[pos].max(1) as f64;
            remaining -= weight;
            // requirement: accumulated + weight·c + remaining ≥ (lo−SLACK)·Σw
            let requirement = (slack_lo * weight_sum - accumulated - remaining) / weight;
            let mut child = if requirement > 1.0 {
                // even a perfect child cannot reach lo — skip the subtree
                // and let the guard below confirm the bound
                1.0
            } else {
                self.eval_node(
                    children[pos],
                    requirement,
                    source_entity,
                    target_entity,
                    source_cache,
                    target_cache,
                    arena,
                    evaluated,
                )
            };
            if requirement > 1.0 || child < requirement {
                // child below requirement ⇒ the mean is below lo − SLACK even
                // if every unvisited child scores a perfect 1.0
                let upper_bound = (accumulated + weight * child + remaining) / weight_sum;
                if upper_bound < lo {
                    arena.truncate(base);
                    return upper_bound;
                }
                // inconclusive fp edge: fall back to the exact child value
                child = self.eval_node(
                    children[pos],
                    f64::NEG_INFINITY,
                    source_entity,
                    target_entity,
                    source_cache,
                    target_cache,
                    arena,
                    evaluated,
                );
            }
            arena[base + pos] = child;
            accumulated += weight * child;
        }
        // replay the accumulation in the rule's original child order so the
        // floating-point result is bit-identical to the exhaustive fold
        let result = AggregationFunction::WeightedMean.evaluate(&arena[base..], weights);
        arena.truncate(base);
        result
    }

    fn run_instructions<'s, 't>(
        &self,
        source_entity: &'s Entity,
        target_entity: &'t Entity,
        source_cache: &ValueCache<'s>,
        target_cache: &ValueCache<'t>,
        scratch: &mut EvalScratch,
    ) -> f64 {
        let EvalScratch {
            stack,
            scores,
            weights,
            ..
        } = scratch;
        stack.clear();
        for instruction in &self.instructions {
            match instruction {
                Instruction::Compare {
                    source,
                    target,
                    function,
                    threshold,
                    weight,
                } => {
                    let score = self.comparison_score(
                        *source,
                        *target,
                        *function,
                        *threshold,
                        source_entity,
                        target_entity,
                        source_cache,
                        target_cache,
                    );
                    stack.push((score, *weight));
                }
                Instruction::Aggregate {
                    function,
                    weight,
                    arity,
                } => {
                    // children are copied out in their original order, so
                    // WeightedMean accumulates in exactly the tree-walk
                    // order (bit-identical floating-point result)
                    let at = stack.len() - arity;
                    scores.clear();
                    weights.clear();
                    scores.extend(stack[at..].iter().map(|c| c.0));
                    weights.extend(stack[at..].iter().map(|c| c.1));
                    stack.truncate(at);
                    stack.push((function.evaluate(scores, weights), *weight));
                }
            }
        }
        debug_assert_eq!(stack.len(), 1, "plan must reduce to a single score");
        stack
            .pop()
            .map(|(score, _)| score)
            .unwrap_or(0.0)
            .clamp(0.0, 1.0)
    }

    #[allow(clippy::too_many_arguments)]
    fn comparison_score<'s, 't>(
        &self,
        source: SlotId,
        target: SlotId,
        function: DistanceFunction,
        threshold: f64,
        source_entity: &'s Entity,
        target_entity: &'t Entity,
        source_cache: &ValueCache<'s>,
        target_cache: &ValueCache<'t>,
    ) -> f64 {
        match function {
            DistanceFunction::Jaccard | DistanceFunction::Dice => {
                let a = self.source.ids(source, source_entity, source_cache);
                let b = self.target.ids(target, target_entity, target_cache);
                // the tree walk reports "unmeasurable" before ever reaching
                // the set measure when either side is empty
                if a.is_empty() || b.is_empty() {
                    return 0.0;
                }
                // size bound: the intersection is at most the smaller set and
                // the union at least the larger, so the distance is at least
                // this — if even that is past the threshold, the similarity
                // is exactly 0 and the merge can be skipped (division is
                // correctly rounded and monotone, so the bound never
                // overshoots the true distance)
                let (small, large) = if a.len() <= b.len() {
                    (a.len(), b.len())
                } else {
                    (b.len(), a.len())
                };
                let best_distance = match function {
                    DistanceFunction::Jaccard => 1.0 - small as f64 / large as f64,
                    _ => 1.0 - 2.0 * small as f64 / (a.len() + b.len()) as f64,
                };
                if threshold_similarity(best_distance, threshold) == 0.0 {
                    return 0.0;
                }
                let distance = match function {
                    DistanceFunction::Jaccard => jaccard_ids(&a, &b),
                    _ => dice_ids(&a, &b),
                };
                threshold_similarity(distance, threshold)
            }
            DistanceFunction::Levenshtein => {
                let a = self.source.values(source, source_entity, source_cache);
                let b = self.target.values(target, target_entity, target_cache);
                levenshtein_similarity(&a, &b, threshold)
            }
            _ => {
                let a = self.source.values(source, source_entity, source_cache);
                let b = self.target.values(target, target_entity, target_cache);
                function.similarity(&a, &b, threshold)
            }
        }
    }
}

/// Reusable per-thread evaluation state: the instruction score stack and
/// aggregation score/weight buffers of [`CompiledRule::evaluate_two`], plus
/// the weighted-mean score arena of the bounded evaluator.
struct EvalScratch {
    stack: Vec<(f64, u32)>,
    scores: Vec<f64>,
    weights: Vec<u32>,
    arena: Vec<f64>,
}

impl EvalScratch {
    const fn new() -> Self {
        EvalScratch {
            stack: Vec::new(),
            scores: Vec::new(),
            weights: Vec::new(),
            arena: Vec::new(),
        }
    }
}

// evaluation scratch is reused across calls — evaluation never recurses into
// itself — so the per-pair hot path performs no allocation once warm
thread_local! {
    static EVAL_SCRATCH: std::cell::RefCell<EvalScratch> =
        const { std::cell::RefCell::new(EvalScratch::new()) };
}

/// Borrowed-or-interned values of a slot.
pub(crate) enum ValuesRef<'e> {
    Borrowed(&'e [String]),
    Interned(Arc<[String]>),
}

impl ValuesRef<'_> {
    fn as_slice(&self) -> &[String] {
        match self {
            ValuesRef::Borrowed(values) => values,
            ValuesRef::Interned(values) => values,
        }
    }
}

impl std::ops::Deref for ValuesRef<'_> {
    type Target = [String];

    fn deref(&self) -> &[String] {
        self.as_slice()
    }
}

/// Levenshtein similarity with the banded early-exit fast path: the minimum
/// cross-product distance only matters within the comparison threshold, so
/// every string pair is probed with a band of `min(⌊θ⌋, current minimum)`.
fn levenshtein_similarity(a: &[String], b: &[String], threshold: f64) -> f64 {
    if a.is_empty() || b.is_empty() {
        return 0.0;
    }
    let max_band = if threshold >= 0.0 {
        threshold.min(1e9).floor() as usize
    } else {
        0
    };
    let mut min = usize::MAX;
    for va in a {
        for vb in b {
            let band = max_band.min(min);
            if let Some(distance) = levenshtein_bounded(va, vb, band) {
                if distance < min {
                    min = distance;
                }
                if min == 0 {
                    return threshold_similarity(0.0, threshold);
                }
            }
        }
    }
    if min == usize::MAX {
        // every pair exceeded the threshold band: similarity is 0 either way
        0.0
    } else {
        threshold_similarity(min as f64, threshold)
    }
}

fn lower_similarity(
    operator: &SimilarityOperator,
    source_schema: &Schema,
    target_schema: &Schema,
    source_table: &mut SlotTable,
    target_table: &mut SlotTable,
    instructions: &mut Vec<Instruction>,
) {
    match operator {
        SimilarityOperator::Comparison(c) => {
            let source = source_table.intern(&c.source, source_schema);
            let target = target_table.intern(&c.target, target_schema);
            instructions.push(Instruction::Compare {
                source,
                target,
                function: c.function,
                threshold: c.threshold,
                weight: c.weight,
            });
        }
        SimilarityOperator::Aggregation(a) => {
            for child in &a.operators {
                lower_similarity(
                    child,
                    source_schema,
                    target_schema,
                    source_table,
                    target_table,
                    instructions,
                );
            }
            instructions.push(Instruction::Aggregate {
                function: a.function,
                weight: a.weight,
                arity: a.operators.len(),
            });
        }
    }
}

/// Result of lowering one similarity operator into the bounded-evaluation
/// tree: its node id plus the estimated cost and comparison count of the
/// whole subtree.
struct LoweredNode {
    node: usize,
    cost: f64,
    comparisons: u32,
}

fn lower_node(
    operator: &SimilarityOperator,
    source_schema: &Schema,
    target_schema: &Schema,
    source_table: &mut SlotTable,
    target_table: &mut SlotTable,
    nodes: &mut Vec<EvalNode>,
) -> LoweredNode {
    match operator {
        SimilarityOperator::Comparison(c) => {
            let source = source_table.intern(&c.source, source_schema);
            let target = target_table.intern(&c.target, target_schema);
            let node = nodes.len();
            nodes.push(EvalNode::Compare {
                source,
                target,
                function: c.function,
                threshold: c.threshold,
            });
            LoweredNode {
                node,
                cost: comparison_cost(c.function, c.threshold),
                comparisons: 1,
            }
        }
        SimilarityOperator::Aggregation(a) => {
            let mut children = Vec::with_capacity(a.operators.len());
            let mut weights = Vec::with_capacity(a.operators.len());
            let mut costs = Vec::with_capacity(a.operators.len());
            let mut comparisons = 0u32;
            let mut cost = 1.0;
            for child in &a.operators {
                let lowered = lower_node(
                    child,
                    source_schema,
                    target_schema,
                    source_table,
                    target_table,
                    nodes,
                );
                children.push(lowered.node);
                weights.push(child.weight());
                costs.push(lowered.cost);
                comparisons += lowered.comparisons;
                cost += lowered.cost;
            }
            // cheapest-first visit order; the sort is stable, so equal-cost
            // children keep the rule's original order
            let mut visit: Vec<usize> = (0..children.len()).collect();
            visit.sort_by(|&x, &y| costs[x].total_cmp(&costs[y]));
            // sequential fold in original order, exactly like
            // `AggregationFunction::evaluate` computes its weight sum
            let mut weight_sum = 0.0f64;
            for &weight in &weights {
                weight_sum += weight.max(1) as f64;
            }
            let node = nodes.len();
            nodes.push(EvalNode::Aggregate {
                function: a.function,
                children,
                weights,
                visit,
                weight_sum,
            });
            LoweredNode {
                node,
                cost,
                comparisons,
            }
        }
    }
}

/// Deterministic structural hash of a value operator (property names and
/// transformation functions, independent of schema indices), shared by both
/// sides so identical chains hit the same [`ValueCache`] entries.
///
/// Slot dedup and the value cache trust this 64-bit hash without an
/// equality guard — a deliberate trade-off, unlike the fitness cache (which
/// compares whole genomes on collision, cheap because genomes are already
/// in hand).  Guarding here would mean storing and comparing operator trees
/// on the per-pair hot path for a ~2⁻⁶⁴-per-chain-pair collision risk.
fn value_operator_hash(operator: &ValueOperator) -> u64 {
    let mut hasher = std::collections::hash_map::DefaultHasher::new();
    hash_value_operator(operator, &mut hasher);
    hasher.finish()
}

fn hash_value_operator(operator: &ValueOperator, hasher: &mut impl Hasher) {
    match operator {
        ValueOperator::Property(p) => {
            0u8.hash(hasher);
            p.property.hash(hasher);
        }
        ValueOperator::Transformation(t) => {
            1u8.hash(hasher);
            t.function.hash(hasher);
            t.inputs.len().hash(hasher);
            for input in &t.inputs {
                hash_value_operator(input, hasher);
            }
        }
    }
}

fn hash_similarity_operator(operator: &SimilarityOperator, hasher: &mut impl Hasher) {
    match operator {
        SimilarityOperator::Comparison(c) => {
            2u8.hash(hasher);
            hash_value_operator(&c.source, hasher);
            hash_value_operator(&c.target, hasher);
            c.function.hash(hasher);
            c.threshold.to_bits().hash(hasher);
            c.weight.hash(hasher);
        }
        SimilarityOperator::Aggregation(a) => {
            3u8.hash(hasher);
            a.function.hash(hasher);
            a.weight.hash(hasher);
            a.operators.len().hash(hasher);
            for child in &a.operators {
                hash_similarity_operator(child, hasher);
            }
        }
    }
}

impl LinkageRule {
    /// A deterministic canonical hash of the full rule structure (operators,
    /// functions, thresholds, weights).  Structurally equal rules hash
    /// equally, which makes this the fitness-memoization key: elitism
    /// survivors and duplicate crossover offspring share one entry.
    pub fn canonical_hash(&self) -> u64 {
        let mut hasher = std::collections::hash_map::DefaultHasher::new();
        match self.root() {
            Some(root) => {
                1u8.hash(&mut hasher);
                hash_similarity_operator(root, &mut hasher);
            }
            None => 0u8.hash(&mut hasher),
        }
        hasher.finish()
    }
}

const VALUE_CACHE_SHARDS: usize = 16;

/// Safety valve against unbounded growth: mutation keeps minting new
/// transformation chains over a long run, and entries for chains that died
/// out of the population are never individually evicted.  When a shard
/// exceeds this entry count it is dropped wholesale — the cache is a pure
/// memo, so eviction only costs recomputation, never changes a result.
const VALUE_CACHE_SHARD_CAPACITY: usize = 65_536;

/// One memoized value slot of one entity.
#[derive(Debug, Clone)]
struct CachedSlot {
    values: Arc<[String]>,
    /// Sorted token ids of the value set for Jaccard/Dice, built on first
    /// use (ids come from the process-wide interner in [`crate::tokens`]).
    ids: Option<Arc<[u32]>>,
}

/// Per-entity memo of transformation outputs (and value sets), shared across
/// all rules evaluated against the same entities.
///
/// Keys are `(entity address, value-operator structural hash)`: the chain
/// hash is schema-independent, so every rule in the population containing
/// e.g. `lowerCase(tokenize(title))` reuses one computation per entity.  The
/// lifetime parameter ties the cache to the entities it indexes, so stale
/// addresses cannot be observed.
///
/// Sharded mutexes keep the cache cheap under the GP engine's parallel
/// fitness evaluation.
pub struct ValueCache<'e> {
    // an inline array (not a Vec) so `ValueCache::new` performs no heap
    // allocation: the serving path builds one short-lived cache per query
    shards: [Mutex<HashMap<(usize, u64), CachedSlot>>; VALUE_CACHE_SHARDS],
    interner: Mutex<HashSet<Arc<[String]>>>,
    hits: AtomicU64,
    misses: AtomicU64,
    _entities: PhantomData<fn(&'e Entity)>,
}

impl std::fmt::Debug for ValueCache<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ValueCache")
            .field("entries", &self.len())
            .field("hits", &self.hits())
            .field("misses", &self.misses())
            .finish()
    }
}

impl Default for ValueCache<'_> {
    fn default() -> Self {
        Self::new()
    }
}

impl<'e> ValueCache<'e> {
    /// Creates an empty cache.  Allocation-free: shards are inline and the
    /// underlying maps allocate lazily on first insert.
    pub fn new() -> Self {
        ValueCache {
            shards: std::array::from_fn(|_| Mutex::new(HashMap::new())),
            interner: Mutex::new(HashSet::new()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            _entities: PhantomData,
        }
    }

    fn shard(&self, key: &(usize, u64)) -> &Mutex<HashMap<(usize, u64), CachedSlot>> {
        let index = (key.0 ^ key.1 as usize) % self.shards.len();
        &self.shards[index]
    }

    /// Interns a freshly computed value set, deduplicating identical contents
    /// across entities (transformations frequently collapse distinct inputs
    /// to the same output, e.g. lower-cased years).
    fn intern_values(&self, values: Vec<String>) -> Arc<[String]> {
        let mut interner = self.interner.lock().expect("interner poisoned");
        if let Some(existing) = interner.get(values.as_slice()) {
            return existing.clone();
        }
        if interner.len() >= VALUE_CACHE_SHARD_CAPACITY * VALUE_CACHE_SHARDS {
            interner.clear();
        }
        let interned: Arc<[String]> = values.into();
        interner.insert(interned.clone());
        interned
    }

    /// The memoized values of `(entity, chain)`, computing them on first use.
    pub fn values(
        &self,
        entity: &'e Entity,
        chain_hash: u64,
        compute: impl FnOnce() -> Vec<String>,
    ) -> Arc<[String]> {
        let key = (entity as *const Entity as usize, chain_hash);
        if let Some(slot) = self
            .shard(&key)
            .lock()
            .expect("value cache poisoned")
            .get(&key)
        {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return slot.values.clone();
        }
        // computed outside the lock: `compute` may itself read the cache for
        // nested chains, and holding the shard lock could deadlock
        self.misses.fetch_add(1, Ordering::Relaxed);
        let values = self.intern_values(compute());
        let mut shard = self.shard(&key).lock().expect("value cache poisoned");
        if shard.len() >= VALUE_CACHE_SHARD_CAPACITY {
            shard.clear();
        }
        let slot = shard.entry(key).or_insert(CachedSlot {
            values: values.clone(),
            ids: None,
        });
        slot.values.clone()
    }

    /// The memoized sorted token ids of `(entity, chain)` for the set-based
    /// measures.  The process-wide token interner (see [`crate::tokens`]) is
    /// only consulted on the miss path here — per-pair evaluation reads the
    /// cached slice lock-free once it is built.
    pub fn token_ids(
        &self,
        entity: &'e Entity,
        chain_hash: u64,
        compute_values: impl FnOnce() -> Vec<String>,
    ) -> Arc<[u32]> {
        let key = (entity as *const Entity as usize, chain_hash);
        if let Some(slot) = self
            .shard(&key)
            .lock()
            .expect("value cache poisoned")
            .get(&key)
        {
            if let Some(ids) = &slot.ids {
                self.hits.fetch_add(1, Ordering::Relaxed);
                return ids.clone();
            }
        }
        // no separate miss counter bump here: the values() call below counts
        // the underlying lookup exactly once (hit if the values were already
        // memoized by a non-set comparison, miss if the slot is cold)
        let values = self.values(entity, chain_hash, compute_values);
        let ids: Arc<[u32]> = crate::tokens::sorted_token_ids(&values).into();
        let mut shard = self.shard(&key).lock().expect("value cache poisoned");
        if shard.len() >= VALUE_CACHE_SHARD_CAPACITY {
            shard.clear();
        }
        let slot = shard.entry(key).or_insert(CachedSlot { values, ids: None });
        slot.ids = Some(ids.clone());
        ids
    }

    /// Number of `(entity, chain)` entries currently memoized.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().expect("value cache poisoned").len())
            .sum()
    }

    /// Returns `true` if nothing has been memoized yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Cache hits so far.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Cache misses (computations) so far.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Evicts every memoized entry of one entity for the given chain hashes
    /// (see [`CompiledRule::target_slot_hashes`]), returning how many entries
    /// were dropped.  Long-lived owners — the serving `LinkService` — call
    /// this when an entity is removed so the cache does not accumulate
    /// entries for entities that will never be scored again.  The cache is a
    /// pure memo, so eviction can never change a result, only cost a
    /// recomputation if the same entity is re-inserted later.
    pub fn evict(&self, entity: &'e Entity, chain_hashes: &[u64]) -> usize {
        let address = entity as *const Entity as usize;
        let mut dropped = 0;
        for &hash in chain_hashes {
            let key = (address, hash);
            if self
                .shard(&key)
                .lock()
                .expect("value cache poisoned")
                .remove(&key)
                .is_some()
            {
                dropped += 1;
            }
        }
        dropped
    }

    /// Drops all memoized entries and statistics (e.g. when the underlying
    /// entity collections change).
    pub fn clear(&self) {
        for shard in &self.shards {
            shard.lock().expect("value cache poisoned").clear();
        }
        self.interner.lock().expect("interner poisoned").clear();
        self.hits.store(0, Ordering::Relaxed);
        self.misses.store(0, Ordering::Relaxed);
    }
}

/// A [`ValueCache`] whose entity-lifetime discipline is upheld by an
/// **owner** at runtime instead of by the borrow checker.
///
/// `ValueCache<'e>` keys entries by entity *address* and relies on `'e` to
/// guarantee that an address is never reused by a different entity while
/// its entries are still visible.  That works when the cache demonstrably
/// outlives nothing (`LinkService<'t>` used to borrow its entities), but an
/// *owned* service stores entities behind `Arc<Entity>` inside itself — the
/// cache and the entities live in the same struct, which no lifetime
/// parameter can express.
///
/// `PinnedValueCache` carries the cache at an erased (`'static`) lifetime
/// and hands out views at any shorter lifetime via
/// [`PinnedValueCache::scoped`].  This is sound because the cache never
/// stores borrowed data (entries are owned `Arc<[String]>` slices keyed by
/// a raw address), **provided the owner maintains the address invariant**:
///
/// > Between inserting entries for an entity and evicting them (see
/// > [`ValueCache::evict`]), the entity's address must stay allocated to
/// > that same entity.
///
/// The serving layer upholds it by construction: entities are pinned by
/// `Arc` (held by the store and by every published epoch), `remove` evicts
/// before dropping its reference, and `insert` defensively evicts the new
/// entity's address before indexing it — so even an entry re-created by a
/// concurrent reader for a since-freed entity is cleared before the
/// address can serve a different one (a reader can only score an entity
/// while an epoch still pins it, so such re-creation cannot race with the
/// address being reused).
pub struct PinnedValueCache {
    inner: ValueCache<'static>,
}

impl std::fmt::Debug for PinnedValueCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.inner.fmt(f)
    }
}

impl Default for PinnedValueCache {
    fn default() -> Self {
        Self::new()
    }
}

impl PinnedValueCache {
    /// Creates an empty cache (allocation-free, like [`ValueCache::new`]).
    pub fn new() -> Self {
        PinnedValueCache {
            inner: ValueCache::new(),
        }
    }

    /// Views the cache at a caller-chosen entity lifetime.  See the type
    /// docs for the invariant the owner must uphold.
    pub fn scoped<'e>(&'e self) -> &'e ValueCache<'e> {
        // Sound: ValueCache's layout is independent of its lifetime
        // parameter (it only appears in PhantomData), and the cache holds no
        // borrowed data — the parameter exists purely to enforce the address
        // invariant, which the owner enforces dynamically instead.
        unsafe { std::mem::transmute::<&ValueCache<'static>, &ValueCache<'e>>(&self.inner) }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{aggregation, compare, property, transform};
    use linkdisc_entity::EntityBuilder;

    fn city_schema() -> Arc<Schema> {
        Arc::new(Schema::new(["label", "point"]))
    }

    fn berlin(schema: &Arc<Schema>) -> Entity {
        EntityBuilder::new("a:berlin")
            .value("label", "Berlin")
            .value("point", "52.52 13.40")
            .build(schema.clone())
    }

    fn figure2_rule() -> LinkageRule {
        aggregation(
            AggregationFunction::Min,
            vec![
                compare(
                    transform(TransformFunction::LowerCase, vec![property("label")]),
                    transform(TransformFunction::LowerCase, vec![property("label")]),
                    DistanceFunction::Levenshtein,
                    1.0,
                ),
                compare(
                    property("point"),
                    property("point"),
                    DistanceFunction::Geographic,
                    50.0,
                ),
            ],
        )
        .into()
    }

    #[test]
    fn compiled_matches_tree_walk_on_figure2() {
        let schema = city_schema();
        let a = berlin(&schema);
        let b = EntityBuilder::new("b:berlin")
            .value("label", "BERLIN")
            .value("point", "52.52 13.40")
            .build(schema.clone());
        let rule = figure2_rule();
        let compiled = CompiledRule::compile(&rule, &schema, &schema);
        let cache = ValueCache::new();
        let pair = EntityPair::new(&a, &b);
        assert_eq!(compiled.evaluate(&pair, &cache), rule.evaluate(&pair));
        // second evaluation is served from the memo and stays identical
        assert_eq!(compiled.evaluate(&pair, &cache), rule.evaluate(&pair));
        assert!(cache.hits() > 0);
    }

    #[test]
    fn empty_rule_compiles_to_an_empty_plan() {
        let schema = city_schema();
        let compiled = CompiledRule::compile(&LinkageRule::empty(), &schema, &schema);
        assert_eq!(compiled.instruction_count(), 0);
        let a = berlin(&schema);
        let pair = EntityPair::new(&a, &a);
        assert_eq!(compiled.evaluate(&pair, &ValueCache::new()), 0.0);
    }

    #[test]
    fn duplicate_chains_share_one_slot_and_one_computation() {
        let schema = city_schema();
        let rule: LinkageRule = aggregation(
            AggregationFunction::Max,
            vec![
                compare(
                    transform(TransformFunction::LowerCase, vec![property("label")]),
                    transform(TransformFunction::LowerCase, vec![property("label")]),
                    DistanceFunction::Levenshtein,
                    2.0,
                ),
                compare(
                    transform(TransformFunction::LowerCase, vec![property("label")]),
                    property("label"),
                    DistanceFunction::Equality,
                    0.5,
                ),
            ],
        )
        .into();
        let compiled = CompiledRule::compile(&rule, &schema, &schema);
        // lowerCase(label) and label each appear once per side
        assert_eq!(compiled.source.slots.len(), 2);
        let a = berlin(&schema);
        let b = berlin(&schema);
        let cache = ValueCache::new();
        let pair = EntityPair::new(&a, &b);
        compiled.evaluate(&pair, &cache);
        // one transform computation per entity, not per comparison
        assert_eq!(cache.misses(), 2);
        compiled.evaluate(&pair, &cache);
        assert_eq!(cache.misses(), 2);
    }

    #[test]
    fn unknown_properties_yield_zero_similarity() {
        let schema = city_schema();
        let rule: LinkageRule = compare(
            property("missing"),
            property("label"),
            DistanceFunction::Levenshtein,
            5.0,
        )
        .into();
        let compiled = CompiledRule::compile(&rule, &schema, &schema);
        let a = berlin(&schema);
        let pair = EntityPair::new(&a, &a);
        assert_eq!(compiled.evaluate(&pair, &ValueCache::new()), 0.0);
        assert_eq!(rule.evaluate(&pair), 0.0);
    }

    #[test]
    fn foreign_schema_entities_fall_back_to_name_lookup() {
        let schema = city_schema();
        let rule: LinkageRule = compare(
            property("label"),
            property("label"),
            DistanceFunction::Equality,
            0.5,
        )
        .into();
        let compiled = CompiledRule::compile(&rule, &schema, &schema);
        // entity with its own schema, where "label" sits at a different index
        let odd = EntityBuilder::new("odd")
            .value("extra", "x")
            .value("label", "Berlin")
            .build_with_own_schema();
        let a = berlin(&schema);
        let pair = EntityPair::new(&a, &odd);
        assert_eq!(compiled.evaluate(&pair, &ValueCache::new()), 1.0);
    }

    #[test]
    fn canonical_hash_distinguishes_structure_and_parameters() {
        let base: LinkageRule = compare(
            property("label"),
            property("label"),
            DistanceFunction::Levenshtein,
            1.0,
        )
        .into();
        let other_threshold: LinkageRule = compare(
            property("label"),
            property("label"),
            DistanceFunction::Levenshtein,
            2.0,
        )
        .into();
        let other_function: LinkageRule = compare(
            property("label"),
            property("label"),
            DistanceFunction::Jaccard,
            1.0,
        )
        .into();
        assert_eq!(base.canonical_hash(), base.clone().canonical_hash());
        assert_ne!(base.canonical_hash(), other_threshold.canonical_hash());
        assert_ne!(base.canonical_hash(), other_function.canonical_hash());
        assert_ne!(base.canonical_hash(), LinkageRule::empty().canonical_hash());
    }

    #[test]
    fn evict_drops_one_entity_without_touching_others() {
        let schema = city_schema();
        let rule: LinkageRule = compare(
            transform(TransformFunction::LowerCase, vec![property("label")]),
            transform(TransformFunction::LowerCase, vec![property("label")]),
            DistanceFunction::Levenshtein,
            2.0,
        )
        .into();
        let compiled = CompiledRule::compile(&rule, &schema, &schema);
        let a = berlin(&schema);
        let b = EntityBuilder::new("b")
            .value("label", "Paris")
            .build(schema.clone());
        let cache = ValueCache::new();
        compiled.evaluate(&EntityPair::new(&a, &b), &cache);
        assert_eq!(cache.len(), 2);
        let dropped = cache.evict(&b, compiled.target_slot_hashes());
        assert_eq!(dropped, 1, "b's lowerCase(label) entry is evicted");
        assert_eq!(cache.len(), 1);
        // evicting again is a no-op; the other entity's memo survives
        assert_eq!(cache.evict(&b, compiled.target_slot_hashes()), 0);
        let mut recomputed = false;
        cache.values(&b, compiled.target.hashes[1], || {
            recomputed = true;
            vec!["paris".to_string()]
        });
        assert!(recomputed, "evicted entry must recompute");
        cache.values(&a, compiled.source.hashes[1], || {
            unreachable!("a's memo must survive b's eviction")
        });
    }

    #[test]
    fn chain_hashes_are_structural_and_shared_with_the_rule() {
        let schema = city_schema();
        let chain = transform(TransformFunction::LowerCase, vec![property("label")]);
        let ValueOperator::Transformation(_) = &chain else {
            panic!("transform builder returns a transformation")
        };
        let compiled_chain = CompiledChain::compile(&chain, &schema);
        assert_eq!(
            compiled_chain.structural_hash(),
            value_operator_hash(&chain),
            "the chain hash is the root's structural hash"
        );
        assert!(compiled_chain
            .slot_hashes()
            .contains(&compiled_chain.structural_hash()));
        // the same chain compiled twice (or inside a rule) hashes equally
        let again = CompiledChain::compile(&chain, &schema);
        assert_eq!(compiled_chain.structural_hash(), again.structural_hash());
    }

    #[test]
    fn bounded_matches_exact_on_figure2() {
        let schema = city_schema();
        let rule = figure2_rule();
        let compiled = CompiledRule::compile(&rule, &schema, &schema);
        let cache = ValueCache::new();
        let a = berlin(&schema);
        let matching = EntityBuilder::new("b:berlin")
            .value("label", "BERLIN")
            .value("point", "52.52 13.40")
            .build(schema.clone());
        let differing = EntityBuilder::new("b:paris")
            .value("label", "Paris")
            .value("point", "48.85 2.35")
            .build(schema.clone());
        for other in [&matching, &differing] {
            let pair = EntityPair::new(&a, other);
            let exact = compiled.evaluate(&pair, &cache);
            let bounded = compiled.evaluate_bounded(&pair, &cache, crate::rule::LINK_THRESHOLD);
            assert_eq!(
                exact >= crate::rule::LINK_THRESHOLD,
                bounded >= crate::rule::LINK_THRESHOLD,
                "classification must match"
            );
            assert!(bounded >= exact, "bounded result is an upper bound");
            if bounded >= crate::rule::LINK_THRESHOLD {
                assert_eq!(bounded.to_bits(), exact.to_bits(), "links score exactly");
            }
        }
    }

    #[test]
    fn bounded_without_threshold_is_exhaustive() {
        let schema = city_schema();
        // weighted mean with a skippable expensive child
        let rule: LinkageRule = aggregation(
            AggregationFunction::WeightedMean,
            vec![
                compare(
                    property("label"),
                    property("label"),
                    DistanceFunction::Levenshtein,
                    2.0,
                ),
                compare(
                    property("point"),
                    property("point"),
                    DistanceFunction::Equality,
                    0.5,
                ),
            ],
        )
        .into();
        let compiled = CompiledRule::compile(&rule, &schema, &schema);
        let cache = ValueCache::new();
        let a = berlin(&schema);
        let b = EntityBuilder::new("b")
            .value("label", "Munich")
            .value("point", "48.13 11.58")
            .build(schema.clone());
        let pair = EntityPair::new(&a, &b);
        let exact = compiled.evaluate(&pair, &cache);
        let mut stats = EvalStats::default();
        let bounded = compiled.evaluate_bounded_two_stats(
            &a,
            &b,
            &cache,
            &cache,
            f64::NEG_INFINITY,
            &mut stats,
        );
        assert_eq!(bounded.to_bits(), exact.to_bits());
        assert_eq!(stats.comparisons_evaluated, 2, "no pruning at -inf");
        assert_eq!(stats.comparisons_skipped, 0);
        assert_eq!(stats.pairs_short_circuited, 0);
    }

    #[test]
    fn bounded_short_circuits_and_counts_skips() {
        let schema = city_schema();
        // min aggregation: the cheap equality comparison fails first and the
        // expensive geographic one is never evaluated
        let rule: LinkageRule = aggregation(
            AggregationFunction::Min,
            vec![
                compare(
                    property("point"),
                    property("point"),
                    DistanceFunction::Geographic,
                    50.0,
                ),
                compare(
                    property("label"),
                    property("label"),
                    DistanceFunction::Equality,
                    0.5,
                ),
            ],
        )
        .into();
        let compiled = CompiledRule::compile(&rule, &schema, &schema);
        assert_eq!(compiled.comparison_count(), 2);
        let cache = ValueCache::new();
        let a = berlin(&schema);
        let b = EntityBuilder::new("b")
            .value("label", "Paris")
            .value("point", "52.52 13.40")
            .build(schema.clone());
        let mut stats = EvalStats::default();
        let bounded = compiled.evaluate_bounded_two_stats(
            &a,
            &b,
            &cache,
            &cache,
            crate::rule::LINK_THRESHOLD,
            &mut stats,
        );
        assert!(bounded < crate::rule::LINK_THRESHOLD);
        assert_eq!(stats.pairs, 1);
        assert_eq!(
            stats.comparisons_evaluated, 1,
            "equality (cost 1) is visited before geographic (cost 4) and aborts the min"
        );
        assert_eq!(stats.comparisons_skipped, 1);
        assert_eq!(stats.pairs_short_circuited, 1);
        assert!(stats.skip_rate() > 0.49 && stats.skip_rate() < 0.51);
    }

    #[test]
    fn bounded_max_returns_exact_winner() {
        let schema = city_schema();
        let rule: LinkageRule = aggregation(
            AggregationFunction::Max,
            vec![
                compare(
                    property("label"),
                    property("label"),
                    DistanceFunction::Levenshtein,
                    4.0,
                ),
                compare(
                    property("point"),
                    property("point"),
                    DistanceFunction::Geographic,
                    50.0,
                ),
            ],
        )
        .into();
        let compiled = CompiledRule::compile(&rule, &schema, &schema);
        let cache = ValueCache::new();
        let a = berlin(&schema);
        // labels differ by 2 edits (similarity 0.5 < threshold), points match
        // (similarity 1.0): the max must carry the exact geographic score
        let b = EntityBuilder::new("b")
            .value("label", "Berlix!")
            .value("point", "52.52 13.40")
            .build(schema.clone());
        let pair = EntityPair::new(&a, &b);
        let exact = compiled.evaluate(&pair, &cache);
        let bounded = compiled.evaluate_bounded(&pair, &cache, crate::rule::LINK_THRESHOLD);
        assert!(exact >= crate::rule::LINK_THRESHOLD);
        assert_eq!(bounded.to_bits(), exact.to_bits());
    }

    #[test]
    fn token_id_path_matches_tree_walk() {
        let schema = Arc::new(Schema::new(["tags"]));
        let a = EntityBuilder::new("a")
            .value("tags", "jazz")
            .value("tags", "piano")
            .value("tags", "live")
            .build(schema.clone());
        let b = EntityBuilder::new("b")
            .value("tags", "jazz")
            .value("tags", "guitar")
            .build(schema.clone());
        for function in [DistanceFunction::Jaccard, DistanceFunction::Dice] {
            let rule: LinkageRule =
                compare(property("tags"), property("tags"), function, 0.9).into();
            let compiled = CompiledRule::compile(&rule, &schema, &schema);
            let cache = ValueCache::new();
            let pair = EntityPair::new(&a, &b);
            assert_eq!(
                compiled.evaluate(&pair, &cache).to_bits(),
                rule.evaluate(&pair).to_bits(),
                "{function} id-merge diverged from the tree walk"
            );
        }
        // size-ratio early exit: 1 shared token out of 1 vs 4 cannot pass a
        // tight threshold, so the similarity is exactly 0 either way
        let c = EntityBuilder::new("c")
            .value("tags", "jazz")
            .build(schema.clone());
        let d = EntityBuilder::new("d")
            .value("tags", "jazz")
            .value("tags", "bebop")
            .value("tags", "swing")
            .value("tags", "cool")
            .build(schema.clone());
        let rule: LinkageRule = compare(
            property("tags"),
            property("tags"),
            DistanceFunction::Jaccard,
            0.2,
        )
        .into();
        let compiled = CompiledRule::compile(&rule, &schema, &schema);
        let pair = EntityPair::new(&c, &d);
        assert_eq!(compiled.evaluate(&pair, &ValueCache::new()), 0.0);
        assert_eq!(rule.evaluate(&pair), 0.0);
    }

    #[test]
    fn value_cache_interns_identical_outputs() {
        let schema = city_schema();
        let rule: LinkageRule = compare(
            transform(TransformFunction::LowerCase, vec![property("label")]),
            transform(TransformFunction::LowerCase, vec![property("label")]),
            DistanceFunction::Equality,
            0.5,
        )
        .into();
        let compiled = CompiledRule::compile(&rule, &schema, &schema);
        // two distinct entities with the same label: outputs are interned to
        // one shared allocation
        let a = EntityBuilder::new("a")
            .value("label", "Berlin")
            .build(schema.clone());
        let b = EntityBuilder::new("b")
            .value("label", "BERLIN")
            .build(schema.clone());
        let cache = ValueCache::new();
        compiled.evaluate(&EntityPair::new(&a, &b), &cache);
        assert_eq!(cache.len(), 2, "one entry per entity");
        let va = cache.values(&a, compiled.source.hashes[1], || unreachable!("memoized"));
        let vb = cache.values(&b, compiled.target.hashes[1], || unreachable!("memoized"));
        assert!(
            Arc::ptr_eq(&va, &vb),
            "equal outputs share one interned slice"
        );
        cache.clear();
        assert!(cache.is_empty());
        assert_eq!(cache.hits(), 0);
    }
}
