//! A textual DSL for linkage rules with a parser and printer.
//!
//! Learned rules have to be inspectable and editable by humans — the paper
//! emphasises that the operator-tree representation "can be understood and
//! further improved by humans".  The DSL is an s-expression syntax:
//!
//! ```text
//! (min
//!   (compare levenshtein 1 (lowerCase (property "label")) (lowerCase (property "rdfs:label")))
//!   (compare geographic 50 (property "point") (property "coord")))
//! ```
//!
//! * aggregations: `(<max|min|wmean> [:w <weight>] <operator>+)`
//! * comparisons: `(compare <distance> <threshold> [:w <weight>] <source value> <target value>)`
//! * properties: `(property "<name>")`
//! * transformations: `(<transformation name> <value>+)`
//!
//! [`print_rule`] produces the canonical form and [`parse_rule`] accepts it
//! back; `parse_rule(print_rule(r)) == r` for every rule (covered by a
//! property test in the `genlink` crate which generates random rules).

use std::fmt::Write as _;

use linkdisc_similarity::DistanceFunction;
use linkdisc_transform::TransformFunction;

use crate::aggregation::AggregationFunction;
use crate::operators::{SimilarityOperator, ValueOperator};
use crate::rule::LinkageRule;

/// Errors produced by the DSL parser.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DslError {
    /// Byte offset in the input at which the error was detected.
    pub position: usize,
    /// Human-readable description of the problem.
    pub message: String,
}

impl std::fmt::Display for DslError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "parse error at byte {}: {}", self.position, self.message)
    }
}

impl std::error::Error for DslError {}

// ---------------------------------------------------------------------------
// printing
// ---------------------------------------------------------------------------

/// Prints a rule in canonical DSL form (single line).
pub fn print_rule(rule: &LinkageRule) -> String {
    match rule.root() {
        None => "(empty)".to_string(),
        Some(root) => {
            let mut out = String::new();
            print_similarity(root, &mut out);
            out
        }
    }
}

fn print_similarity(op: &SimilarityOperator, out: &mut String) {
    match op {
        SimilarityOperator::Comparison(c) => {
            let _ = write!(out, "(compare {} {}", c.function.name(), c.threshold);
            if c.weight != 1 {
                let _ = write!(out, " :w {}", c.weight);
            }
            out.push(' ');
            print_value(&c.source, out);
            out.push(' ');
            print_value(&c.target, out);
            out.push(')');
        }
        SimilarityOperator::Aggregation(a) => {
            let _ = write!(out, "({}", a.function.name());
            if a.weight != 1 {
                let _ = write!(out, " :w {}", a.weight);
            }
            for child in &a.operators {
                out.push(' ');
                print_similarity(child, out);
            }
            out.push(')');
        }
    }
}

fn print_value(op: &ValueOperator, out: &mut String) {
    match op {
        ValueOperator::Property(p) => {
            let _ = write!(out, "(property \"{}\")", escape(&p.property));
        }
        ValueOperator::Transformation(t) => {
            let _ = write!(out, "({}", t.function.name());
            for child in &t.inputs {
                out.push(' ');
                print_value(child, out);
            }
            out.push(')');
        }
    }
}

fn escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

// ---------------------------------------------------------------------------
// parsing
// ---------------------------------------------------------------------------

#[derive(Debug, Clone, PartialEq)]
enum Token {
    Open,
    Close,
    Symbol(String),
    Str(String),
    Number(f64),
}

struct Lexer<'a> {
    input: &'a str,
    position: usize,
}

impl<'a> Lexer<'a> {
    fn new(input: &'a str) -> Self {
        Lexer { input, position: 0 }
    }

    fn error(&self, message: impl Into<String>) -> DslError {
        DslError {
            position: self.position,
            message: message.into(),
        }
    }

    fn tokenize(mut self) -> Result<Vec<(usize, Token)>, DslError> {
        let mut tokens = Vec::new();
        let bytes = self.input.as_bytes();
        while self.position < bytes.len() {
            let c = bytes[self.position] as char;
            if c.is_whitespace() {
                self.position += 1;
            } else if c == '(' {
                tokens.push((self.position, Token::Open));
                self.position += 1;
            } else if c == ')' {
                tokens.push((self.position, Token::Close));
                self.position += 1;
            } else if c == '"' {
                let start = self.position;
                self.position += 1;
                let mut value = String::new();
                loop {
                    if self.position >= bytes.len() {
                        return Err(self.error("unterminated string"));
                    }
                    let c = bytes[self.position] as char;
                    self.position += 1;
                    if c == '\\' {
                        if self.position >= bytes.len() {
                            return Err(self.error("dangling escape"));
                        }
                        value.push(bytes[self.position] as char);
                        self.position += 1;
                    } else if c == '"' {
                        break;
                    } else {
                        value.push(c);
                    }
                }
                tokens.push((start, Token::Str(value)));
            } else {
                let start = self.position;
                while self.position < bytes.len() {
                    let c = bytes[self.position] as char;
                    if c.is_whitespace() || c == '(' || c == ')' || c == '"' {
                        break;
                    }
                    self.position += 1;
                }
                let text = &self.input[start..self.position];
                if let Ok(number) = text.parse::<f64>() {
                    tokens.push((start, Token::Number(number)));
                } else {
                    tokens.push((start, Token::Symbol(text.to_string())));
                }
            }
        }
        Ok(tokens)
    }
}

struct Parser {
    tokens: Vec<(usize, Token)>,
    index: usize,
}

impl Parser {
    fn error(&self, message: impl Into<String>) -> DslError {
        let position = self
            .tokens
            .get(self.index)
            .or_else(|| self.tokens.last())
            .map(|(p, _)| *p)
            .unwrap_or(0);
        DslError {
            position,
            message: message.into(),
        }
    }

    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.index).map(|(_, t)| t)
    }

    fn next(&mut self) -> Option<Token> {
        let token = self.tokens.get(self.index).map(|(_, t)| t.clone());
        if token.is_some() {
            self.index += 1;
        }
        token
    }

    fn expect_open(&mut self) -> Result<(), DslError> {
        match self.next() {
            Some(Token::Open) => Ok(()),
            _ => Err(self.error("expected '('")),
        }
    }

    fn expect_close(&mut self) -> Result<(), DslError> {
        match self.next() {
            Some(Token::Close) => Ok(()),
            _ => Err(self.error("expected ')'")),
        }
    }

    fn expect_symbol(&mut self) -> Result<String, DslError> {
        match self.next() {
            Some(Token::Symbol(s)) => Ok(s),
            _ => Err(self.error("expected a symbol")),
        }
    }

    fn parse_optional_weight(&mut self) -> Result<u32, DslError> {
        if matches!(self.peek(), Some(Token::Symbol(s)) if s == ":w") {
            self.next();
            match self.next() {
                Some(Token::Number(n)) if n >= 1.0 => Ok(n as u32),
                _ => Err(self.error("expected a weight after :w")),
            }
        } else {
            Ok(1)
        }
    }

    fn parse_similarity(&mut self) -> Result<SimilarityOperator, DslError> {
        self.expect_open()?;
        let head = self.expect_symbol()?;
        if head == "compare" {
            let function_name = self.expect_symbol()?;
            let function = DistanceFunction::from_name(&function_name)
                .ok_or_else(|| self.error(format!("unknown distance function {function_name}")))?;
            let threshold = match self.next() {
                Some(Token::Number(n)) if n >= 0.0 => n,
                _ => return Err(self.error("expected a non-negative threshold")),
            };
            let weight = self.parse_optional_weight()?;
            let source = self.parse_value()?;
            let target = self.parse_value()?;
            self.expect_close()?;
            let mut comparison =
                SimilarityOperator::comparison(source, target, function, threshold);
            comparison.set_weight(weight);
            Ok(comparison)
        } else if let Some(function) = AggregationFunction::from_name(&head) {
            let weight = self.parse_optional_weight()?;
            let mut operators = Vec::new();
            while !matches!(self.peek(), Some(Token::Close) | None) {
                operators.push(self.parse_similarity()?);
            }
            self.expect_close()?;
            let mut aggregation = SimilarityOperator::aggregation(function, operators);
            aggregation.set_weight(weight);
            Ok(aggregation)
        } else {
            Err(self.error(format!("unknown similarity operator {head}")))
        }
    }

    fn parse_value(&mut self) -> Result<ValueOperator, DslError> {
        self.expect_open()?;
        let head = self.expect_symbol()?;
        if head == "property" {
            let name = match self.next() {
                Some(Token::Str(s)) => s,
                Some(Token::Symbol(s)) => s,
                _ => return Err(self.error("expected a property name")),
            };
            self.expect_close()?;
            Ok(ValueOperator::property(name))
        } else if let Some(function) = TransformFunction::from_name(&head) {
            let mut inputs = Vec::new();
            while !matches!(self.peek(), Some(Token::Close) | None) {
                inputs.push(self.parse_value()?);
            }
            if inputs.is_empty() {
                return Err(self.error("transformation needs at least one input"));
            }
            self.expect_close()?;
            Ok(ValueOperator::transformation(function, inputs))
        } else {
            Err(self.error(format!("unknown value operator {head}")))
        }
    }
}

/// Parses a rule from its DSL form.
pub fn parse_rule(input: &str) -> Result<LinkageRule, DslError> {
    let trimmed = input.trim();
    if trimmed == "(empty)" {
        return Ok(LinkageRule::empty());
    }
    let tokens = Lexer::new(trimmed).tokenize()?;
    let mut parser = Parser { tokens, index: 0 };
    let root = parser.parse_similarity()?;
    if parser.index != parser.tokens.len() {
        return Err(parser.error("trailing input after rule"));
    }
    Ok(LinkageRule::new(root))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{aggregation, compare, property, transform};

    fn figure2() -> LinkageRule {
        aggregation(
            AggregationFunction::Min,
            vec![
                compare(
                    transform(TransformFunction::LowerCase, vec![property("label")]),
                    transform(TransformFunction::LowerCase, vec![property("rdfs:label")]),
                    DistanceFunction::Levenshtein,
                    1.0,
                ),
                compare(
                    property("point"),
                    property("coord"),
                    DistanceFunction::Geographic,
                    50.0,
                ),
            ],
        )
        .into()
    }

    #[test]
    fn prints_canonical_form() {
        let text = print_rule(&figure2());
        assert_eq!(
            text,
            "(min (compare levenshtein 1 (lowerCase (property \"label\")) (lowerCase (property \"rdfs:label\"))) (compare geographic 50 (property \"point\") (property \"coord\")))"
        );
    }

    #[test]
    fn round_trips_figure2() {
        let rule = figure2();
        let parsed = parse_rule(&print_rule(&rule)).unwrap();
        assert_eq!(parsed, rule);
    }

    #[test]
    fn round_trips_weights_and_nesting() {
        let mut inner = compare(
            property("a"),
            property("b"),
            DistanceFunction::Jaccard,
            0.25,
        );
        inner.set_weight(3);
        let mut outer = aggregation(AggregationFunction::WeightedMean, vec![inner]);
        outer.set_weight(2);
        let rule: LinkageRule = aggregation(AggregationFunction::Max, vec![outer]).into();
        let parsed = parse_rule(&print_rule(&rule)).unwrap();
        assert_eq!(parsed, rule);
    }

    #[test]
    fn round_trips_empty_rule() {
        let rule = LinkageRule::empty();
        assert_eq!(print_rule(&rule), "(empty)");
        assert_eq!(parse_rule("(empty)").unwrap(), rule);
    }

    #[test]
    fn parses_multiline_input() {
        let text = "(min\n  (compare levenshtein 1\n    (property \"label\") (property \"name\"))\n  (compare date 30 (property \"d\") (property \"d\")))";
        let rule = parse_rule(text).unwrap();
        assert_eq!(rule.stats().comparisons, 2);
    }

    #[test]
    fn property_names_with_special_characters_round_trip() {
        let rule: LinkageRule = compare(
            property("rdf:label \"quoted\""),
            property("http://xmlns.com/foaf/0.1/name"),
            DistanceFunction::Levenshtein,
            2.0,
        )
        .into();
        let parsed = parse_rule(&print_rule(&rule)).unwrap();
        assert_eq!(parsed, rule);
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(parse_rule("").is_err());
        assert!(parse_rule(
            "(unknownAgg (compare levenshtein 1 (property \"a\") (property \"b\")))"
        )
        .is_err());
        assert!(parse_rule("(compare levenshtein (property \"a\") (property \"b\"))").is_err());
        assert!(parse_rule("(compare levenshtein 1 (property \"a\"))").is_err());
        assert!(
            parse_rule("(min (compare levenshtein 1 (property \"a\") (property \"b\")").is_err()
        );
        assert!(parse_rule("(min) extra").is_err());
        assert!(parse_rule("(compare bogus 1 (property \"a\") (property \"b\"))").is_err());
        assert!(parse_rule("(min (tokenize (property \"a\")))").is_err());
        assert!(parse_rule("(compare levenshtein 1 (tokenize) (property \"b\"))").is_err());
        assert!(parse_rule("(compare levenshtein -1 (property \"a\") (property \"b\"))").is_err());
    }

    #[test]
    fn error_positions_point_into_the_input() {
        let err =
            parse_rule("(min (compare nope 1 (property \"a\") (property \"b\")))").unwrap_err();
        assert!(err.position > 0);
        assert!(err.to_string().contains("nope"));
    }

    #[test]
    fn unterminated_string_is_an_error() {
        assert!(parse_rule("(compare levenshtein 1 (property \"a) (property \"b\"))").is_err());
    }
}
