//! Lowering linkage rules into MultiBlock indexing plans.
//!
//! A rule does not only *evaluate* entity pairs — it also tells us which
//! pairs can possibly link.  A pair links when the root score reaches the
//! link threshold, and every operator propagates that requirement down the
//! tree:
//!
//! * a **comparison** scores `1 − d/θ`, so a required similarity `s` becomes
//!   a *distance bound* `d ≤ θ·(1 − s)` on its (transformed) value chains —
//!   exactly the bound [`DistanceFunction::block_keys`] guarantees overlap
//!   for,
//! * a **`min` aggregation** (conjunction) passes only if *every* child
//!   passes, so its candidates are the **intersection** of the children's
//!   candidate sets,
//! * a **`max` aggregation** (disjunction) passes if *any* child passes:
//!   the **union**,
//! * a **weighted mean** with total weight `W` can only reach `s` if every
//!   child `i` individually reaches `s_i = 1 − W·(1 − s)/w_i` (all other
//!   children scoring a perfect 1 is the best case), so each child is
//!   lowered at its own required similarity and the results are
//!   **intersected**.  Children whose `s_i` drops to 0 or below cannot
//!   prune anything and drop out of the intersection.
//!
//! The lowering is *conservative*: a [`PlanNode`] may admit extra candidate
//! pairs (the rule evaluation rejects them), but it never excludes a pair the
//! rule would link — the losslessness argument is spelled out per node in
//! DESIGN.md ("Candidate generation").  Measures that cannot prune at their
//! derived bound (e.g. Jaccard at bound ≥ 1, see
//! [`DistanceFunction::can_prune`]) lower to [`PlanNode::All`], which makes
//! the enclosing operators fall back appropriately — in the worst case the
//! whole plan is `All` and the engine evaluates the full cross product, the
//! same behaviour as disabling blocking.

use std::sync::Arc;

use linkdisc_entity::Schema;
use linkdisc_similarity::DistanceFunction;

use crate::compiled::CompiledChain;
use crate::operators::{Aggregation, Comparison, SimilarityOperator, ValueOperator};
use crate::rule::LinkageRule;

/// Absolute slack subtracted from derived child requirements so that
/// floating-point rounding in the weighted-mean evaluation can never tip a
/// true link just outside its derived bound.  Widening a bound only admits
/// extra candidates.
const REQUIRED_SLACK: f64 = 1e-9;

/// One comparison of the rule that participates in indexing: its two
/// compiled value chains and the distance bound derived from the link
/// threshold.
#[derive(Debug, Clone)]
pub struct IndexedComparison {
    /// The source-side value chain, compiled against the source schema.
    pub source: CompiledChain,
    /// The target-side value chain, compiled against the target schema.
    pub target: CompiledChain,
    /// The distance measure of the comparison.
    pub function: DistanceFunction,
    /// Derived distance bound: pairs farther apart than this cannot reach
    /// their required similarity, so they need not become candidates.
    pub bound: f64,
    /// Human-readable description (for block statistics and reports).
    pub label: String,
}

impl IndexedComparison {
    /// The identity of the *target-side leaf index* this comparison needs:
    /// `(target chain hash, measure, bound bucket)`.  Two comparisons with
    /// equal keys index any fixed target entity set identically — same
    /// transformed values (structural chain hash), same key scheme (measure)
    /// and same key derivation (the measure's
    /// [`DistanceFunction::key_bound_bucket`] guarantees identical block
    /// keys across the bucket) — so their inverted indexes are
    /// interchangeable and can be shared across the rules of a generation.
    /// The source side does not participate: it only affects probing, not
    /// index contents.
    pub fn leaf_reuse_key(&self) -> (u64, DistanceFunction, u64) {
        (
            self.target.structural_hash(),
            self.function,
            self.function.key_bound_bucket(self.bound),
        )
    }
}

/// A node of the candidate-generation plan.
///
/// After lowering, `All` and `Nothing` only occur at the root —
/// intersections and unions absorb or drop them during construction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PlanNode {
    /// Every pair is a candidate (the rule cannot be pruned by indexing).
    All,
    /// No pair can reach the link threshold (e.g. an empty aggregation).
    Nothing,
    /// Candidates sharing a block key of one comparison (index into
    /// [`IndexingPlan::comparisons`]).
    Leaf(usize),
    /// Pairs that are candidates of *every* child (`min` / weighted mean).
    Intersect(Vec<PlanNode>),
    /// Pairs that are candidates of *any* child (`max`).
    Union(Vec<PlanNode>),
}

/// A linkage rule lowered into a candidate-generation plan: the comparisons
/// to index and the set algebra combining their candidate sets.
#[derive(Debug, Clone)]
pub struct IndexingPlan {
    comparisons: Vec<IndexedComparison>,
    root: PlanNode,
}

impl IndexingPlan {
    /// Lowers a rule into an indexing plan against the two source schemas.
    /// `link_threshold` is the similarity a pair must reach to be reported as
    /// a link (0.5 per Definition 3 of the paper).
    pub fn lower(
        rule: &LinkageRule,
        source_schema: &Arc<Schema>,
        target_schema: &Arc<Schema>,
        link_threshold: f64,
    ) -> Self {
        let mut plan = IndexingPlan {
            comparisons: Vec::new(),
            root: PlanNode::Nothing,
        };
        plan.root = match rule.root() {
            // the empty rule scores every pair 0; it links pairs only when
            // the threshold is ≤ 0 (in which case *everything* links)
            None => {
                if link_threshold <= 0.0 {
                    PlanNode::All
                } else {
                    PlanNode::Nothing
                }
            }
            Some(root) => plan.lower_operator(root, link_threshold, source_schema, target_schema),
        };
        plan
    }

    /// The indexed comparisons, referenced by [`PlanNode::Leaf`] indices.
    pub fn comparisons(&self) -> &[IndexedComparison] {
        &self.comparisons
    }

    /// The root of the candidate-set algebra.
    pub fn root(&self) -> &PlanNode {
        &self.root
    }

    /// `true` when the plan cannot prune anything and the engine should fall
    /// back to the exhaustive cross product.
    pub fn is_exhaustive(&self) -> bool {
        self.root == PlanNode::All
    }

    /// `true` when no pair can reach the link threshold at all.
    pub fn is_empty_result(&self) -> bool {
        self.root == PlanNode::Nothing
    }

    /// Drops comparisons the root can never reference.  A degenerate root
    /// (`All` from a non-prunable branch of a union, or `Nothing`) leaves
    /// already-lowered sibling comparisons in the table; executors that
    /// index every comparison eagerly (the serving `LinkService`) would
    /// otherwise build dead leaf indexes.
    pub fn canonicalized(mut self) -> Self {
        if matches!(self.root, PlanNode::All | PlanNode::Nothing) {
            self.comparisons.clear();
        }
        self
    }

    fn lower_operator(
        &mut self,
        operator: &SimilarityOperator,
        required: f64,
        source_schema: &Arc<Schema>,
        target_schema: &Arc<Schema>,
    ) -> PlanNode {
        // similarities live in [0, 1]: a requirement above 1 is unsatisfiable
        // and a requirement of 0 or below is satisfied by every pair
        if required > 1.0 {
            return PlanNode::Nothing;
        }
        if required <= 0.0 {
            return PlanNode::All;
        }
        match operator {
            SimilarityOperator::Comparison(c) => {
                self.lower_comparison(c, required, source_schema, target_schema)
            }
            SimilarityOperator::Aggregation(a) => {
                self.lower_aggregation(a, required, source_schema, target_schema)
            }
        }
    }

    fn lower_comparison(
        &mut self,
        comparison: &Comparison,
        required: f64,
        source_schema: &Arc<Schema>,
        target_schema: &Arc<Schema>,
    ) -> PlanNode {
        // similarity ≥ s  ⟺  1 − d/θ ≥ s  ⟺  d ≤ θ·(1 − s);
        // θ = 0 degenerates to "exact match" (bound 0), matching
        // `threshold_similarity`
        let threshold = comparison.threshold.max(0.0);
        let bound = threshold * (1.0 - required);
        if !comparison.function.can_prune(bound) {
            return PlanNode::All;
        }
        let label = format!(
            "{}({} ~ {}) d≤{:.4}",
            comparison.function.name(),
            value_chain_label(&comparison.source),
            value_chain_label(&comparison.target),
            bound
        );
        let index = self.comparisons.len();
        self.comparisons.push(IndexedComparison {
            source: CompiledChain::compile(&comparison.source, source_schema),
            target: CompiledChain::compile(&comparison.target, target_schema),
            function: comparison.function,
            bound,
            label,
        });
        PlanNode::Leaf(index)
    }

    fn lower_aggregation(
        &mut self,
        aggregation: &Aggregation,
        required: f64,
        source_schema: &Arc<Schema>,
        target_schema: &Arc<Schema>,
    ) -> PlanNode {
        use crate::aggregation::AggregationFunction;
        // an empty aggregation always scores 0, below the (positive) requirement
        if aggregation.operators.is_empty() {
            return PlanNode::Nothing;
        }
        match aggregation.function {
            AggregationFunction::Min => {
                let children = aggregation
                    .operators
                    .iter()
                    .map(|child| self.lower_operator(child, required, source_schema, target_schema))
                    .collect();
                intersect(children)
            }
            AggregationFunction::Max => {
                let children = aggregation
                    .operators
                    .iter()
                    .map(|child| self.lower_operator(child, required, source_schema, target_schema))
                    .collect();
                union(children)
            }
            AggregationFunction::WeightedMean => {
                // weights are clamped to ≥ 1 exactly like
                // `AggregationFunction::evaluate` does
                let total: f64 = aggregation
                    .operators
                    .iter()
                    .map(|child| child.weight().max(1) as f64)
                    .sum();
                let children = aggregation
                    .operators
                    .iter()
                    .map(|child| {
                        let weight = child.weight().max(1) as f64;
                        // best case for child i: every other child scores 1,
                        // so w·s_i + (W − w) ≥ s·W must still hold
                        let child_required =
                            1.0 - total * (1.0 - required) / weight - REQUIRED_SLACK;
                        self.lower_operator(child, child_required, source_schema, target_schema)
                    })
                    .collect();
                intersect(children)
            }
        }
    }
}

/// Combines child candidate sets that must *all* contain a pair.  `All`
/// children never exclude anything and drop out; a `Nothing` child makes the
/// whole conjunction unsatisfiable.
fn intersect(children: Vec<PlanNode>) -> PlanNode {
    if children.contains(&PlanNode::Nothing) {
        return PlanNode::Nothing;
    }
    let mut kept: Vec<PlanNode> = children
        .into_iter()
        .filter(|c| *c != PlanNode::All)
        .collect();
    match kept.len() {
        0 => PlanNode::All,
        1 => kept.pop().expect("one child"),
        _ => PlanNode::Intersect(kept),
    }
}

/// Combines child candidate sets of which *any* may contain a pair.  An
/// `All` child admits everything; `Nothing` children contribute nothing.
fn union(children: Vec<PlanNode>) -> PlanNode {
    if children.contains(&PlanNode::All) {
        return PlanNode::All;
    }
    let mut kept: Vec<PlanNode> = children
        .into_iter()
        .filter(|c| *c != PlanNode::Nothing)
        .collect();
    match kept.len() {
        0 => PlanNode::Nothing,
        1 => kept.pop().expect("one child"),
        _ => PlanNode::Union(kept),
    }
}

/// Short textual form of a value chain for statistics labels, e.g.
/// `lowerCase(title)`.
fn value_chain_label(operator: &ValueOperator) -> String {
    match operator {
        ValueOperator::Property(p) => p.property.clone(),
        ValueOperator::Transformation(t) => {
            let inputs: Vec<String> = t.inputs.iter().map(value_chain_label).collect();
            format!("{}({})", t.function.name(), inputs.join(", "))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{aggregation, compare, property, transform};
    use crate::AggregationFunction;
    use linkdisc_transform::TransformFunction;

    fn schema() -> Arc<Schema> {
        Arc::new(Schema::new(["label", "year"]))
    }

    fn lev(threshold: f64) -> SimilarityOperator {
        compare(
            property("label"),
            property("label"),
            DistanceFunction::Levenshtein,
            threshold,
        )
    }

    fn num(threshold: f64) -> SimilarityOperator {
        compare(
            property("year"),
            property("year"),
            DistanceFunction::Numeric,
            threshold,
        )
    }

    #[test]
    fn comparison_bound_is_threshold_times_headroom() {
        let rule: LinkageRule = lev(4.0).into();
        let plan = IndexingPlan::lower(&rule, &schema(), &schema(), 0.5);
        assert_eq!(*plan.root(), PlanNode::Leaf(0));
        assert!((plan.comparisons()[0].bound - 2.0).abs() < 1e-9);
        // a stricter link threshold tightens the bound
        let strict = IndexingPlan::lower(&rule, &schema(), &schema(), 0.75);
        assert!((strict.comparisons()[0].bound - 1.0).abs() < 1e-9);
    }

    #[test]
    fn min_intersects_and_max_unions() {
        let conjunction: LinkageRule =
            aggregation(AggregationFunction::Min, vec![lev(2.0), num(10.0)]).into();
        let plan = IndexingPlan::lower(&conjunction, &schema(), &schema(), 0.5);
        assert_eq!(
            *plan.root(),
            PlanNode::Intersect(vec![PlanNode::Leaf(0), PlanNode::Leaf(1)])
        );
        let disjunction: LinkageRule =
            aggregation(AggregationFunction::Max, vec![lev(2.0), num(10.0)]).into();
        let plan = IndexingPlan::lower(&disjunction, &schema(), &schema(), 0.5);
        assert_eq!(
            *plan.root(),
            PlanNode::Union(vec![PlanNode::Leaf(0), PlanNode::Leaf(1)])
        );
    }

    #[test]
    fn weighted_mean_requires_each_child_individually() {
        let mut heavy = lev(2.0);
        heavy.set_weight(3);
        let light = num(10.0);
        let rule: LinkageRule =
            aggregation(AggregationFunction::WeightedMean, vec![heavy, light]).into();
        let plan = IndexingPlan::lower(&rule, &schema(), &schema(), 0.5);
        // W = 4; heavy child: s = 1 − 4·0.5/3 = 1/3 → bound 2·(2/3);
        // light child: s = 1 − 4·0.5/1 = −1 → cannot prune, drops out
        assert_eq!(*plan.root(), PlanNode::Leaf(0));
        assert!((plan.comparisons()[0].bound - 4.0 / 3.0).abs() < 1e-6);
    }

    #[test]
    fn equal_weight_mean_children_both_constrain() {
        let rule: LinkageRule =
            aggregation(AggregationFunction::WeightedMean, vec![lev(2.0), num(10.0)]).into();
        let plan = IndexingPlan::lower(&rule, &schema(), &schema(), 0.75);
        // W = 2, s_child = 1 − 2·0.25 = 0.5 → both children index at half
        // their threshold
        assert_eq!(
            *plan.root(),
            PlanNode::Intersect(vec![PlanNode::Leaf(0), PlanNode::Leaf(1)])
        );
        assert!((plan.comparisons()[0].bound - 1.0).abs() < 1e-6);
        assert!((plan.comparisons()[1].bound - 5.0).abs() < 1e-6);
    }

    #[test]
    fn non_prunable_measures_lower_to_all() {
        // Jaro at threshold 2 and link threshold 0.5: bound = 2·0.5 = 1, at
        // which every pair is admitted and no key scheme can rule anything out
        let loose_jaro = || {
            compare(
                property("label"),
                property("label"),
                DistanceFunction::Jaro,
                2.0,
            )
        };
        let rule: LinkageRule = loose_jaro().into();
        let plan = IndexingPlan::lower(&rule, &schema(), &schema(), 0.5);
        assert!(plan.is_exhaustive());
        // under a conjunction the non-prunable child simply drops out
        let mixed: LinkageRule =
            aggregation(AggregationFunction::Min, vec![lev(2.0), loose_jaro()]).into();
        let plan = IndexingPlan::lower(&mixed, &schema(), &schema(), 0.5);
        assert_eq!(*plan.root(), PlanNode::Leaf(0));
        // ... while under a disjunction it makes the whole plan exhaustive
        let either: LinkageRule =
            aggregation(AggregationFunction::Max, vec![lev(2.0), loose_jaro()]).into();
        let plan = IndexingPlan::lower(&either, &schema(), &schema(), 0.5);
        assert!(plan.is_exhaustive());
    }

    #[test]
    fn degenerate_thresholds_lower_to_all_or_nothing() {
        let rule: LinkageRule = lev(2.0).into();
        assert!(IndexingPlan::lower(&rule, &schema(), &schema(), 0.0).is_exhaustive());
        assert!(IndexingPlan::lower(&rule, &schema(), &schema(), 1.5).is_empty_result());
        assert!(
            IndexingPlan::lower(&LinkageRule::empty(), &schema(), &schema(), 0.5).is_empty_result()
        );
        assert!(
            IndexingPlan::lower(&LinkageRule::empty(), &schema(), &schema(), 0.0).is_exhaustive()
        );
    }

    #[test]
    fn empty_aggregations_poison_conjunctions_but_not_disjunctions() {
        let empty_min = aggregation(AggregationFunction::Min, vec![]);
        let conjunction: LinkageRule =
            aggregation(AggregationFunction::Min, vec![lev(2.0), empty_min.clone()]).into();
        let plan = IndexingPlan::lower(&conjunction, &schema(), &schema(), 0.5);
        assert!(plan.is_empty_result());
        let disjunction: LinkageRule =
            aggregation(AggregationFunction::Max, vec![lev(2.0), empty_min]).into();
        let plan = IndexingPlan::lower(&disjunction, &schema(), &schema(), 0.5);
        assert_eq!(*plan.root(), PlanNode::Leaf(0));
    }

    #[test]
    fn leaf_reuse_keys_identify_interchangeable_target_indexes() {
        let plan_for = |threshold: f64| {
            let rule: LinkageRule = lev(threshold).into();
            IndexingPlan::lower(&rule, &schema(), &schema(), 0.5)
        };
        // thresholds 2.0 and 3.0 derive bounds 1.0 and 1.5 — one Levenshtein
        // edit-budget bucket — while 6.0 (bound 3.0) keys differently
        let a = plan_for(2.0).comparisons()[0].leaf_reuse_key();
        let b = plan_for(3.0).comparisons()[0].leaf_reuse_key();
        let c = plan_for(6.0).comparisons()[0].leaf_reuse_key();
        assert_eq!(a, b);
        assert_ne!(a, c);
        // a different target chain breaks sharing even at an equal bound
        let other_chain: LinkageRule = compare(
            property("label"),
            transform(TransformFunction::LowerCase, vec![property("label")]),
            DistanceFunction::Levenshtein,
            2.0,
        )
        .into();
        let plan = IndexingPlan::lower(&other_chain, &schema(), &schema(), 0.5);
        assert_ne!(plan.comparisons()[0].leaf_reuse_key(), a);
        // ... and so does a different measure over the same chain
        let jaccard: LinkageRule = compare(
            property("label"),
            property("label"),
            DistanceFunction::Jaccard,
            0.5,
        )
        .into();
        let plan = IndexingPlan::lower(&jaccard, &schema(), &schema(), 0.5);
        assert_ne!(plan.comparisons()[0].leaf_reuse_key().1, a.1);
    }

    #[test]
    fn labels_show_transform_chains() {
        let rule: LinkageRule = compare(
            transform(TransformFunction::LowerCase, vec![property("label")]),
            property("label"),
            DistanceFunction::Levenshtein,
            2.0,
        )
        .into();
        let plan = IndexingPlan::lower(&rule, &schema(), &schema(), 0.5);
        assert!(plan.comparisons()[0].label.contains("lowerCase(label)"));
        assert!(plan.comparisons()[0].label.starts_with("levenshtein"));
    }

    #[test]
    fn nested_aggregations_compose() {
        // max(min(lev, num), lev2) → Union(Intersect(l0, l1), l2)
        let rule: LinkageRule = aggregation(
            AggregationFunction::Max,
            vec![
                aggregation(AggregationFunction::Min, vec![lev(2.0), num(10.0)]),
                lev(4.0),
            ],
        )
        .into();
        let plan = IndexingPlan::lower(&rule, &schema(), &schema(), 0.5);
        assert_eq!(
            *plan.root(),
            PlanNode::Union(vec![
                PlanNode::Intersect(vec![PlanNode::Leaf(0), PlanNode::Leaf(1)]),
                PlanNode::Leaf(2),
            ])
        );
    }
}
