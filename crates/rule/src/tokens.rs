//! Process-wide token interning for the set-based measures.
//!
//! The compiled evaluator lowers each entity's token set (its value set for
//! a given chain) to a sorted slice of `u32` ids, so Jaccard/Dice become
//! linear merge-intersections with no per-pair hashing or allocation.  For
//! the ids of *two* entities to be comparable they must come from one
//! interner — and the two sides of a pair are memoized in **separate**
//! [`ValueCache`](crate::ValueCache)s with independent lifetimes (streaming
//! chunks vs long-lived indexes), so the interner cannot live inside a
//! cache.  It is process-global instead: one lock-guarded map from token to
//! id.
//!
//! Growth is bounded by the number of *distinct* token strings ever seen,
//! which real workloads already bound (entity stores intern their values).
//! Ids are never recycled, so a cached id slice can never be invalidated by
//! concurrent interning — the id assigned to a token is stable for the
//! lifetime of the process.
//!
//! The interner is only consulted on a value-cache **miss** (ids are cached
//! per `(entity, chain)` next to the values); the per-pair hot path never
//! takes this lock.

use std::collections::HashMap;
use std::sync::{Mutex, OnceLock};

static INTERNER: OnceLock<Mutex<HashMap<Box<str>, u32>>> = OnceLock::new();

fn interner() -> &'static Mutex<HashMap<Box<str>, u32>> {
    INTERNER.get_or_init(|| Mutex::new(HashMap::new()))
}

/// The stable process-wide id of a token, assigning the next id on first
/// sight.  Equal tokens always map to equal ids, distinct tokens to
/// distinct ids.
pub(crate) fn intern_token(token: &str) -> u32 {
    let mut map = interner().lock().expect("token interner poisoned");
    if let Some(&id) = map.get(token) {
        return id;
    }
    let id = u32::try_from(map.len()).expect("token interner exhausted the u32 id space");
    map.insert(Box::from(token), id);
    id
}

/// Lowers a value set to its sorted, deduplicated token ids — the form the
/// merge kernels (`jaccard_ids`/`dice_ids`) consume.  Interning is
/// bijective, so deduplication by id equals deduplication by string and the
/// set sizes match the `HashSet` semantics exactly.
pub(crate) fn sorted_token_ids(values: &[String]) -> Vec<u32> {
    let mut ids: Vec<u32> = values.iter().map(|v| intern_token(v)).collect();
    ids.sort_unstable();
    ids.dedup();
    ids
}

/// Number of distinct tokens interned so far (diagnostics/tests).
pub fn interned_token_count() -> usize {
    interner().lock().expect("token interner poisoned").len()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_stable_and_injective() {
        let a1 = intern_token("tokens-test-alpha");
        let b = intern_token("tokens-test-beta");
        let a2 = intern_token("tokens-test-alpha");
        assert_eq!(a1, a2);
        assert_ne!(a1, b);
        assert!(interned_token_count() >= 2);
    }

    #[test]
    fn sorted_ids_dedup_like_sets() {
        let values: Vec<String> = ["x", "y", "x", "z", "y"]
            .iter()
            .map(|s| format!("tokens-test-{s}"))
            .collect();
        let ids = sorted_token_ids(&values);
        assert_eq!(ids.len(), 3, "duplicates collapse");
        assert!(ids.windows(2).all(|w| w[0] < w[1]), "strictly increasing");
    }
}
