//! Index-based tree navigation used by the genetic operators.
//!
//! The specialized crossover operators of GenLink (Section 5.3) need to pick
//! "a random comparison", "a random aggregation", "a random transformation" or
//! "a random aggregation-or-comparison" in a rule, inspect it, and possibly
//! replace it.  All of that is provided here through *pre-order indices*: each
//! node kind is numbered 0..count in depth-first order, and accessors either
//! return a reference to the `i`-th node of that kind or apply a closure to it.
//!
//! Index-based access keeps the borrow checker happy (only one path into the
//! tree is borrowed at a time) and makes random selection trivial: draw an
//! index uniformly from `0..count`.

use crate::operators::{
    Aggregation, Comparison, SimilarityOperator, TransformationOperator, ValueOperator,
};

// ---------------------------------------------------------------------------
// similarity-operator navigation
// ---------------------------------------------------------------------------

impl SimilarityOperator {
    /// Number of similarity operators (comparisons and aggregations) in this
    /// subtree, including the node itself.
    pub fn similarity_node_count(&self) -> usize {
        match self {
            SimilarityOperator::Comparison(_) => 1,
            SimilarityOperator::Aggregation(a) => {
                1 + a
                    .operators
                    .iter()
                    .map(SimilarityOperator::similarity_node_count)
                    .sum::<usize>()
            }
        }
    }

    /// Returns the `index`-th similarity operator in pre-order.
    pub fn similarity_node(&self, index: usize) -> Option<&SimilarityOperator> {
        if index == 0 {
            return Some(self);
        }
        match self {
            SimilarityOperator::Comparison(_) => None,
            SimilarityOperator::Aggregation(a) => {
                let mut remaining = index - 1;
                for child in &a.operators {
                    let count = child.similarity_node_count();
                    if remaining < count {
                        return child.similarity_node(remaining);
                    }
                    remaining -= count;
                }
                None
            }
        }
    }

    /// Replaces the `index`-th similarity operator (pre-order) with
    /// `replacement`, returning the removed subtree.  Replacing index 0
    /// replaces the whole tree.
    pub fn replace_similarity_node(
        &mut self,
        index: usize,
        replacement: SimilarityOperator,
    ) -> Option<SimilarityOperator> {
        if index == 0 {
            return Some(std::mem::replace(self, replacement));
        }
        match self {
            SimilarityOperator::Comparison(_) => None,
            SimilarityOperator::Aggregation(a) => {
                let mut remaining = index - 1;
                for child in &mut a.operators {
                    let count = child.similarity_node_count();
                    if remaining < count {
                        return child.replace_similarity_node(remaining, replacement);
                    }
                    remaining -= count;
                }
                None
            }
        }
    }

    /// Returns the `index`-th comparison (pre-order).
    pub fn comparison_at(&self, index: usize) -> Option<&Comparison> {
        self.comparisons().into_iter().nth(index)
    }

    /// All comparisons in pre-order.
    pub fn comparisons(&self) -> Vec<&Comparison> {
        let mut result = Vec::new();
        self.collect_comparisons(&mut result);
        result
    }

    fn collect_comparisons<'a>(&'a self, out: &mut Vec<&'a Comparison>) {
        match self {
            SimilarityOperator::Comparison(c) => out.push(c),
            SimilarityOperator::Aggregation(a) => {
                for child in &a.operators {
                    child.collect_comparisons(out);
                }
            }
        }
    }

    /// Applies `f` to the `index`-th comparison (pre-order).  Returns `true`
    /// if the comparison existed.
    pub fn with_comparison_mut<F: FnOnce(&mut Comparison)>(&mut self, index: usize, f: F) -> bool {
        fn walk<F: FnOnce(&mut Comparison)>(
            node: &mut SimilarityOperator,
            remaining: &mut usize,
            f: F,
        ) -> Option<F> {
            match node {
                SimilarityOperator::Comparison(c) => {
                    if *remaining == 0 {
                        f(c);
                        None
                    } else {
                        *remaining -= 1;
                        Some(f)
                    }
                }
                SimilarityOperator::Aggregation(a) => {
                    let mut f = Some(f);
                    for child in &mut a.operators {
                        if let Some(pending) = f.take() {
                            f = walk(child, remaining, pending);
                        } else {
                            break;
                        }
                    }
                    f
                }
            }
        }
        let mut remaining = index;
        walk(self, &mut remaining, f).is_none()
    }

    /// Returns the `index`-th aggregation (pre-order).
    pub fn aggregation_node(&self, index: usize) -> Option<&Aggregation> {
        self.aggregations().into_iter().nth(index)
    }

    /// All aggregations in pre-order.
    pub fn aggregations(&self) -> Vec<&Aggregation> {
        let mut result = Vec::new();
        self.collect_aggregations(&mut result);
        result
    }

    fn collect_aggregations<'a>(&'a self, out: &mut Vec<&'a Aggregation>) {
        if let SimilarityOperator::Aggregation(a) = self {
            out.push(a);
            for child in &a.operators {
                child.collect_aggregations(out);
            }
        }
    }

    /// Applies `f` to the `index`-th aggregation (pre-order).  Returns `true`
    /// if the aggregation existed.
    pub fn with_aggregation_mut<F: FnOnce(&mut Aggregation)>(
        &mut self,
        index: usize,
        f: F,
    ) -> bool {
        fn walk<F: FnOnce(&mut Aggregation)>(
            node: &mut SimilarityOperator,
            remaining: &mut usize,
            f: F,
        ) -> Option<F> {
            match node {
                SimilarityOperator::Comparison(_) => Some(f),
                SimilarityOperator::Aggregation(a) => {
                    if *remaining == 0 {
                        f(a);
                        return None;
                    }
                    *remaining -= 1;
                    let mut f = Some(f);
                    for child in &mut a.operators {
                        if let Some(pending) = f.take() {
                            f = walk(child, remaining, pending);
                        } else {
                            break;
                        }
                    }
                    f
                }
            }
        }
        let mut remaining = index;
        walk(self, &mut remaining, f).is_none()
    }

    /// Applies `f` to the `index`-th similarity node (pre-order).
    pub fn with_similarity_node_mut<F: FnOnce(&mut SimilarityOperator)>(
        &mut self,
        index: usize,
        f: F,
    ) -> bool {
        fn walk<F: FnOnce(&mut SimilarityOperator)>(
            node: &mut SimilarityOperator,
            remaining: &mut usize,
            f: F,
        ) -> Option<F> {
            if *remaining == 0 {
                f(node);
                return None;
            }
            *remaining -= 1;
            match node {
                SimilarityOperator::Comparison(_) => Some(f),
                SimilarityOperator::Aggregation(a) => {
                    let mut f = Some(f);
                    for child in &mut a.operators {
                        if let Some(pending) = f.take() {
                            f = walk(child, remaining, pending);
                        } else {
                            break;
                        }
                    }
                    f
                }
            }
        }
        let mut remaining = index;
        walk(self, &mut remaining, f).is_none()
    }

    /// All transformation operators anywhere below this similarity operator,
    /// in pre-order (source value trees before target value trees).
    pub fn transformations(&self) -> Vec<&TransformationOperator> {
        let mut result = Vec::new();
        self.collect_transformations(&mut result);
        result
    }

    fn collect_transformations<'a>(&'a self, out: &mut Vec<&'a TransformationOperator>) {
        match self {
            SimilarityOperator::Comparison(c) => {
                c.source.collect_transformations(out);
                c.target.collect_transformations(out);
            }
            SimilarityOperator::Aggregation(a) => {
                for child in &a.operators {
                    child.collect_transformations(out);
                }
            }
        }
    }

    /// Applies `f` to the `index`-th value operator that is a transformation.
    pub fn with_transformation_mut<F: FnOnce(&mut TransformationOperator)>(
        &mut self,
        index: usize,
        f: F,
    ) -> bool {
        fn walk_value<F: FnOnce(&mut TransformationOperator)>(
            node: &mut ValueOperator,
            remaining: &mut usize,
            f: F,
        ) -> Option<F> {
            match node {
                ValueOperator::Property(_) => Some(f),
                ValueOperator::Transformation(t) => {
                    if *remaining == 0 {
                        f(t);
                        return None;
                    }
                    *remaining -= 1;
                    let mut f = Some(f);
                    for child in &mut t.inputs {
                        if let Some(pending) = f.take() {
                            f = walk_value(child, remaining, pending);
                        } else {
                            break;
                        }
                    }
                    f
                }
            }
        }
        fn walk_sim<F: FnOnce(&mut TransformationOperator)>(
            node: &mut SimilarityOperator,
            remaining: &mut usize,
            f: F,
        ) -> Option<F> {
            match node {
                SimilarityOperator::Comparison(c) => {
                    let f = walk_value(&mut c.source, remaining, f)?;
                    walk_value(&mut c.target, remaining, f)
                }
                SimilarityOperator::Aggregation(a) => {
                    let mut f = Some(f);
                    for child in &mut a.operators {
                        if let Some(pending) = f.take() {
                            f = walk_sim(child, remaining, pending);
                        } else {
                            break;
                        }
                    }
                    f
                }
            }
        }
        let mut remaining = index;
        walk_sim(self, &mut remaining, f).is_none()
    }

    /// Applies `f` to every value operator root (the source/target slots of
    /// every comparison).  Used to attach or strip transformations.
    pub fn for_each_value_root_mut<F: FnMut(&mut ValueOperator)>(&mut self, f: &mut F) {
        match self {
            SimilarityOperator::Comparison(c) => {
                f(&mut c.source);
                f(&mut c.target);
            }
            SimilarityOperator::Aggregation(a) => {
                for child in &mut a.operators {
                    child.for_each_value_root_mut(f);
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// value-operator navigation
// ---------------------------------------------------------------------------

impl ValueOperator {
    /// All transformation operators in this value subtree, pre-order.
    pub fn transformations(&self) -> Vec<&TransformationOperator> {
        let mut result = Vec::new();
        self.collect_transformations(&mut result);
        result
    }

    pub(crate) fn collect_transformations<'a>(&'a self, out: &mut Vec<&'a TransformationOperator>) {
        if let ValueOperator::Transformation(t) = self {
            out.push(t);
            for child in &t.inputs {
                child.collect_transformations(out);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aggregation::AggregationFunction;
    use linkdisc_similarity::DistanceFunction;
    use linkdisc_transform::TransformFunction;

    fn sample() -> SimilarityOperator {
        SimilarityOperator::aggregation(
            AggregationFunction::Min,
            vec![
                SimilarityOperator::comparison(
                    ValueOperator::transformation(
                        TransformFunction::LowerCase,
                        vec![ValueOperator::property("label")],
                    ),
                    ValueOperator::property("name"),
                    DistanceFunction::Levenshtein,
                    1.0,
                ),
                SimilarityOperator::aggregation(
                    AggregationFunction::Max,
                    vec![
                        SimilarityOperator::comparison(
                            ValueOperator::property("date"),
                            ValueOperator::transformation(
                                TransformFunction::Tokenize,
                                vec![ValueOperator::property("released")],
                            ),
                            DistanceFunction::Date,
                            30.0,
                        ),
                        SimilarityOperator::comparison(
                            ValueOperator::property("director"),
                            ValueOperator::property("director"),
                            DistanceFunction::Jaccard,
                            0.5,
                        ),
                    ],
                ),
            ],
        )
    }

    #[test]
    fn node_counts_are_consistent() {
        let tree = sample();
        assert_eq!(tree.similarity_node_count(), 5);
        assert_eq!(tree.comparisons().len(), 3);
        assert_eq!(tree.aggregations().len(), 2);
        assert_eq!(tree.transformations().len(), 2);
    }

    #[test]
    fn preorder_indexing_is_stable() {
        let tree = sample();
        assert!(matches!(
            tree.similarity_node(0),
            Some(SimilarityOperator::Aggregation(_))
        ));
        assert!(matches!(
            tree.similarity_node(1),
            Some(SimilarityOperator::Comparison(_))
        ));
        assert!(matches!(
            tree.similarity_node(2),
            Some(SimilarityOperator::Aggregation(_))
        ));
        assert!(matches!(
            tree.similarity_node(3),
            Some(SimilarityOperator::Comparison(_))
        ));
        assert!(matches!(
            tree.similarity_node(4),
            Some(SimilarityOperator::Comparison(_))
        ));
        assert!(tree.similarity_node(5).is_none());
        assert_eq!(
            tree.comparison_at(0).unwrap().function,
            DistanceFunction::Levenshtein
        );
        assert_eq!(
            tree.comparison_at(1).unwrap().function,
            DistanceFunction::Date
        );
        assert_eq!(
            tree.comparison_at(2).unwrap().function,
            DistanceFunction::Jaccard
        );
        assert!(tree.comparison_at(3).is_none());
    }

    #[test]
    fn with_comparison_mut_targets_the_right_node() {
        let mut tree = sample();
        assert!(tree.with_comparison_mut(1, |c| c.threshold = 99.0));
        assert_eq!(tree.comparison_at(1).unwrap().threshold, 99.0);
        assert_eq!(tree.comparison_at(0).unwrap().threshold, 1.0);
        assert!(!tree.with_comparison_mut(7, |c| c.threshold = 0.0));
    }

    #[test]
    fn with_aggregation_mut_targets_the_right_node() {
        let mut tree = sample();
        assert!(tree.with_aggregation_mut(1, |a| a.function = AggregationFunction::WeightedMean));
        assert_eq!(
            tree.aggregation_node(1).unwrap().function,
            AggregationFunction::WeightedMean
        );
        assert_eq!(
            tree.aggregation_node(0).unwrap().function,
            AggregationFunction::Min
        );
        assert!(!tree.with_aggregation_mut(2, |_| {}));
    }

    #[test]
    fn with_transformation_mut_targets_the_right_node() {
        let mut tree = sample();
        assert!(tree.with_transformation_mut(1, |t| t.function = TransformFunction::Stem));
        assert_eq!(tree.transformations()[1].function, TransformFunction::Stem);
        assert_eq!(
            tree.transformations()[0].function,
            TransformFunction::LowerCase
        );
        assert!(!tree.with_transformation_mut(2, |_| {}));
    }

    #[test]
    fn replace_similarity_node_swaps_subtrees() {
        let mut tree = sample();
        let replacement = SimilarityOperator::comparison(
            ValueOperator::property("x"),
            ValueOperator::property("y"),
            DistanceFunction::Equality,
            0.5,
        );
        let removed = tree.replace_similarity_node(2, replacement).unwrap();
        assert!(matches!(removed, SimilarityOperator::Aggregation(_)));
        assert_eq!(tree.similarity_node_count(), 3);
        assert_eq!(tree.comparisons().len(), 2);
    }

    #[test]
    fn replace_root_via_index_zero() {
        let mut tree = sample();
        let replacement = SimilarityOperator::comparison(
            ValueOperator::property("x"),
            ValueOperator::property("y"),
            DistanceFunction::Equality,
            0.5,
        );
        tree.replace_similarity_node(0, replacement).unwrap();
        assert_eq!(tree.similarity_node_count(), 1);
    }

    #[test]
    fn out_of_range_replacement_returns_none() {
        let mut tree = sample();
        let replacement = SimilarityOperator::comparison(
            ValueOperator::property("x"),
            ValueOperator::property("y"),
            DistanceFunction::Equality,
            0.5,
        );
        assert!(tree.replace_similarity_node(99, replacement).is_none());
        assert_eq!(tree.similarity_node_count(), 5);
    }

    #[test]
    fn for_each_value_root_visits_every_comparison_side() {
        let mut tree = sample();
        let mut count = 0;
        tree.for_each_value_root_mut(&mut |_| count += 1);
        assert_eq!(count, 6);
    }
}
