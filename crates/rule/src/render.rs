//! ASCII tree rendering of linkage rules.
//!
//! The paper illustrates rules as operator trees (Figures 2, 7 and 8).  The
//! experiment harness regenerates those figures by printing learned rules with
//! [`render_rule`].

use std::fmt::Write as _;

use crate::operators::{SimilarityOperator, ValueOperator};
use crate::rule::LinkageRule;

/// Renders a rule as an indented ASCII tree.
pub fn render_rule(rule: &LinkageRule) -> String {
    match rule.root() {
        None => "(empty rule)\n".to_string(),
        Some(root) => {
            let mut out = String::new();
            render_similarity(root, "", true, true, &mut out);
            out
        }
    }
}

fn render_similarity(
    op: &SimilarityOperator,
    prefix: &str,
    is_last: bool,
    is_root: bool,
    out: &mut String,
) {
    let (connector, child_prefix) = branch(prefix, is_last, is_root);
    match op {
        SimilarityOperator::Comparison(c) => {
            let _ = writeln!(
                out,
                "{connector}Comparison: {} (threshold {}, weight {})",
                c.function.name(),
                c.threshold,
                c.weight
            );
            render_value(&c.source, &child_prefix, false, "source", out);
            render_value(&c.target, &child_prefix, true, "target", out);
        }
        SimilarityOperator::Aggregation(a) => {
            let _ = writeln!(
                out,
                "{connector}Aggregation: {} (weight {})",
                a.function.name(),
                a.weight
            );
            let count = a.operators.len();
            for (i, child) in a.operators.iter().enumerate() {
                render_similarity(child, &child_prefix, i + 1 == count, false, out);
            }
        }
    }
}

fn render_value(op: &ValueOperator, prefix: &str, is_last: bool, role: &str, out: &mut String) {
    let (connector, child_prefix) = branch(prefix, is_last, false);
    match op {
        ValueOperator::Property(p) => {
            let _ = writeln!(out, "{connector}{role}: property \"{}\"", p.property);
        }
        ValueOperator::Transformation(t) => {
            let _ = writeln!(out, "{connector}{role}: transform {}", t.function.name());
            let count = t.inputs.len();
            for (i, child) in t.inputs.iter().enumerate() {
                render_value(child, &child_prefix, i + 1 == count, "input", out);
            }
        }
    }
}

fn branch(prefix: &str, is_last: bool, is_root: bool) -> (String, String) {
    if is_root {
        (String::new(), String::new())
    } else if is_last {
        (format!("{prefix}└─ "), format!("{prefix}   "))
    } else {
        (format!("{prefix}├─ "), format!("{prefix}│  "))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aggregation::AggregationFunction;
    use crate::builder::{aggregation, compare, property, transform};
    use linkdisc_similarity::DistanceFunction;
    use linkdisc_transform::TransformFunction;

    #[test]
    fn renders_empty_rule() {
        assert_eq!(render_rule(&LinkageRule::empty()), "(empty rule)\n");
    }

    #[test]
    fn renders_figure2_like_tree() {
        let rule: LinkageRule = aggregation(
            AggregationFunction::Min,
            vec![
                compare(
                    transform(TransformFunction::LowerCase, vec![property("label")]),
                    property("rdfs:label"),
                    DistanceFunction::Levenshtein,
                    1.0,
                ),
                compare(
                    property("point"),
                    property("coord"),
                    DistanceFunction::Geographic,
                    50.0,
                ),
            ],
        )
        .into();
        let text = render_rule(&rule);
        assert!(text.starts_with("Aggregation: min"));
        assert!(text.contains("Comparison: levenshtein (threshold 1, weight 1)"));
        assert!(text.contains("source: transform lowerCase"));
        assert!(text.contains("input: property \"label\""));
        assert!(text.contains("target: property \"coord\""));
        // every line after the root is indented with tree glyphs
        for line in text.lines().skip(1) {
            assert!(
                line.starts_with("├─")
                    || line.starts_with("└─")
                    || line.starts_with("│")
                    || line.starts_with("   ")
            );
        }
    }

    #[test]
    fn single_comparison_renders_without_aggregation() {
        let rule: LinkageRule = compare(
            property("title"),
            property("title"),
            DistanceFunction::Levenshtein,
            2.0,
        )
        .into();
        let text = render_rule(&rule);
        assert!(text.starts_with("Comparison: levenshtein"));
        assert_eq!(text.lines().count(), 3);
    }
}
