//! Structural statistics of linkage rules.
//!
//! Section 6.2 of the paper reports the size of learned rules (e.g. for
//! DBpediaDrugBank: "the generated linkage rules on average only use 5.6
//! comparisons and 3.2 transformations"); these statistics are what the
//! experiment harness aggregates.

use crate::rule::LinkageRule;

/// Structural statistics of a linkage rule.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct RuleStats {
    /// Total number of operators of any kind.
    pub operators: usize,
    /// Number of comparison operators.
    pub comparisons: usize,
    /// Number of aggregation operators.
    pub aggregations: usize,
    /// Number of transformation operators.
    pub transformations: usize,
    /// Depth of the similarity-operator tree.
    pub depth: usize,
    /// Whether the rule nests aggregations (is non-linear).
    pub non_linear: bool,
    /// Whether the rule uses any transformation.
    pub uses_transformations: bool,
}

impl RuleStats {
    /// Computes the statistics of a rule.
    pub fn of(rule: &LinkageRule) -> Self {
        match rule.root() {
            None => RuleStats::default(),
            Some(root) => RuleStats {
                operators: root.operator_count(),
                comparisons: root.comparison_count(),
                aggregations: root.aggregation_count(),
                transformations: root.transformation_count(),
                depth: root.depth(),
                non_linear: root.has_nested_aggregation(),
                uses_transformations: root.has_transformations(),
            },
        }
    }

    /// Averages a collection of statistics (used to report population-level
    /// rule sizes per iteration).
    pub fn mean<'a, I: IntoIterator<Item = &'a RuleStats>>(stats: I) -> MeanRuleStats {
        let mut count = 0usize;
        let mut sums = MeanRuleStats::default();
        for s in stats {
            count += 1;
            sums.operators += s.operators as f64;
            sums.comparisons += s.comparisons as f64;
            sums.aggregations += s.aggregations as f64;
            sums.transformations += s.transformations as f64;
            sums.depth += s.depth as f64;
        }
        if count > 0 {
            let n = count as f64;
            sums.operators /= n;
            sums.comparisons /= n;
            sums.aggregations /= n;
            sums.transformations /= n;
            sums.depth /= n;
        }
        sums
    }
}

/// Mean structural statistics over a set of rules.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct MeanRuleStats {
    /// Mean operator count.
    pub operators: f64,
    /// Mean number of comparisons.
    pub comparisons: f64,
    /// Mean number of aggregations.
    pub aggregations: f64,
    /// Mean number of transformations.
    pub transformations: f64,
    /// Mean tree depth.
    pub depth: f64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aggregation::AggregationFunction;
    use crate::operators::{SimilarityOperator, ValueOperator};
    use linkdisc_similarity::DistanceFunction;
    use linkdisc_transform::TransformFunction;

    fn sample_rule() -> LinkageRule {
        LinkageRule::new(SimilarityOperator::aggregation(
            AggregationFunction::Min,
            vec![
                SimilarityOperator::comparison(
                    ValueOperator::transformation(
                        TransformFunction::LowerCase,
                        vec![ValueOperator::property("label")],
                    ),
                    ValueOperator::property("name"),
                    DistanceFunction::Levenshtein,
                    1.0,
                ),
                SimilarityOperator::aggregation(
                    AggregationFunction::Max,
                    vec![SimilarityOperator::comparison(
                        ValueOperator::property("date"),
                        ValueOperator::property("date"),
                        DistanceFunction::Date,
                        30.0,
                    )],
                ),
            ],
        ))
    }

    #[test]
    fn stats_count_every_operator_kind() {
        let stats = sample_rule().stats();
        assert_eq!(stats.comparisons, 2);
        assert_eq!(stats.aggregations, 2);
        assert_eq!(stats.transformations, 1);
        assert_eq!(stats.operators, 2 + 2 + 1 + 4);
        assert_eq!(stats.depth, 3);
        assert!(stats.non_linear);
        assert!(stats.uses_transformations);
    }

    #[test]
    fn stats_of_empty_rule_are_zero() {
        let stats = LinkageRule::empty().stats();
        assert_eq!(stats, RuleStats::default());
    }

    #[test]
    fn mean_aggregates_multiple_rules() {
        let a = sample_rule().stats();
        let b = LinkageRule::empty().stats();
        let mean = RuleStats::mean([&a, &b]);
        assert!((mean.comparisons - 1.0).abs() < 1e-12);
        assert!((mean.operators - a.operators as f64 / 2.0).abs() < 1e-12);
    }

    #[test]
    fn mean_of_nothing_is_zero() {
        let mean = RuleStats::mean(std::iter::empty());
        assert_eq!(mean.operators, 0.0);
    }
}
