//! Expressive linkage rule representation (Section 3 of the paper).
//!
//! A linkage rule is a strongly typed operator tree built from four operators:
//!
//! * **Property operator** — retrieves all values of a property of an entity,
//! * **Transformation operator** — transforms the values of child value
//!   operators with a transformation function; transformations may be nested
//!   into chains,
//! * **Comparison operator** — evaluates the similarity of two entities based
//!   on two value operators, a distance measure and a threshold,
//! * **Aggregation operator** — combines the scores of several similarity
//!   operators with an aggregation function and per-operator weights;
//!   aggregations may be nested, which makes the representation non-linear.
//!
//! The rule assigns a similarity in `[0, 1]` to every entity pair; pairs with
//! a similarity of at least `0.5` are considered links (Definition 3).
//!
//! Besides the representation itself this crate provides evaluation
//! ([`LinkageRule::evaluate`]), index-based tree navigation used by the
//! genetic operators ([`navigate`]), a textual DSL with parser and printer
//! ([`dsl`]), an ASCII tree renderer used to regenerate the paper's rule
//! figures ([`render`]), and structural statistics ([`stats`]).

pub mod aggregation;
pub mod builder;
pub mod compiled;
pub mod dsl;
pub mod indexing;
pub mod navigate;
pub mod operators;
pub mod render;
pub mod rule;
pub mod stats;
pub mod tokens;

pub use aggregation::AggregationFunction;
pub use builder::{aggregation, compare, property, transform, RuleBuilder};
pub use compiled::{
    ChainValues, CompiledChain, CompiledRule, EvalStats, PinnedValueCache, ValueCache,
};
pub use dsl::{parse_rule, print_rule, DslError};
pub use indexing::{IndexedComparison, IndexingPlan, PlanNode};
pub use operators::{
    Aggregation, Comparison, PropertyOperator, SimilarityOperator, TransformationOperator,
    ValueOperator,
};
pub use render::render_rule;
pub use rule::{LinkageRule, LINK_THRESHOLD};
pub use stats::RuleStats;

// Re-export the function enums so downstream crates only need `linkdisc-rule`.
pub use linkdisc_similarity::DistanceFunction;
pub use linkdisc_transform::TransformFunction;
