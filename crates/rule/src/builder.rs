//! Ergonomic constructors for linkage rules.
//!
//! Examples and tests build rules by hand (as a rule author would in Silk);
//! these helpers keep that concise:
//!
//! ```
//! use linkdisc_rule::{aggregation, compare, property, transform, AggregationFunction,
//!                     DistanceFunction, TransformFunction, LinkageRule};
//!
//! let rule: LinkageRule = aggregation(
//!     AggregationFunction::Min,
//!     vec![
//!         compare(
//!             transform(TransformFunction::LowerCase, vec![property("label")]),
//!             transform(TransformFunction::LowerCase, vec![property("rdfs:label")]),
//!             DistanceFunction::Levenshtein,
//!             1.0,
//!         ),
//!         compare(property("point"), property("coord"), DistanceFunction::Geographic, 50.0),
//!     ],
//! )
//! .into();
//! assert_eq!(rule.operator_count(), 9);
//! ```

use linkdisc_similarity::DistanceFunction;
use linkdisc_transform::TransformFunction;

use crate::aggregation::AggregationFunction;
use crate::operators::{SimilarityOperator, ValueOperator};
use crate::rule::LinkageRule;

/// Creates a property operator.
pub fn property(name: impl Into<String>) -> ValueOperator {
    ValueOperator::property(name)
}

/// Creates a transformation operator.
pub fn transform(function: TransformFunction, inputs: Vec<ValueOperator>) -> ValueOperator {
    ValueOperator::transformation(function, inputs)
}

/// Creates a comparison operator with weight 1.
pub fn compare(
    source: ValueOperator,
    target: ValueOperator,
    function: DistanceFunction,
    threshold: f64,
) -> SimilarityOperator {
    SimilarityOperator::comparison(source, target, function, threshold)
}

/// Creates an aggregation operator with weight 1.
pub fn aggregation(
    function: AggregationFunction,
    operators: Vec<SimilarityOperator>,
) -> SimilarityOperator {
    SimilarityOperator::aggregation(function, operators)
}

/// A fluent builder for the common "one aggregation of several comparisons"
/// rule shape.
#[derive(Debug, Default)]
pub struct RuleBuilder {
    function: Option<AggregationFunction>,
    comparisons: Vec<SimilarityOperator>,
}

impl RuleBuilder {
    /// Starts a new builder (defaults to weighted-mean aggregation).
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the aggregation function.
    pub fn aggregate_with(mut self, function: AggregationFunction) -> Self {
        self.function = Some(function);
        self
    }

    /// Adds a comparison of the same property on both sides.
    pub fn compare_property(
        self,
        property_name: &str,
        function: DistanceFunction,
        threshold: f64,
    ) -> Self {
        self.compare_properties(property_name, property_name, function, threshold)
    }

    /// Adds a comparison of a source property against a target property.
    pub fn compare_properties(
        mut self,
        source_property: &str,
        target_property: &str,
        function: DistanceFunction,
        threshold: f64,
    ) -> Self {
        self.comparisons.push(compare(
            property(source_property),
            property(target_property),
            function,
            threshold,
        ));
        self
    }

    /// Adds an arbitrary similarity operator.
    pub fn operator(mut self, operator: SimilarityOperator) -> Self {
        self.comparisons.push(operator);
        self
    }

    /// Builds the rule.  A single comparison becomes the root directly; zero
    /// comparisons produce the empty rule.
    pub fn build(self) -> LinkageRule {
        match self.comparisons.len() {
            0 => LinkageRule::empty(),
            1 if self.function.is_none() => {
                LinkageRule::new(self.comparisons.into_iter().next().expect("one comparison"))
            }
            _ => LinkageRule::new(aggregation(
                self.function.unwrap_or(AggregationFunction::WeightedMean),
                self.comparisons,
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use linkdisc_entity::{EntityBuilder, EntityPair};

    #[test]
    fn builder_produces_single_comparison_rules() {
        let rule = RuleBuilder::new()
            .compare_property("label", DistanceFunction::Levenshtein, 1.0)
            .build();
        assert_eq!(rule.operator_count(), 3);
        assert_eq!(rule.stats().aggregations, 0);
    }

    #[test]
    fn builder_produces_aggregated_rules() {
        let rule = RuleBuilder::new()
            .aggregate_with(AggregationFunction::Min)
            .compare_property("label", DistanceFunction::Levenshtein, 1.0)
            .compare_properties("date", "released", DistanceFunction::Date, 31.0)
            .build();
        assert_eq!(rule.stats().comparisons, 2);
        assert_eq!(rule.stats().aggregations, 1);
    }

    #[test]
    fn empty_builder_gives_empty_rule() {
        assert!(RuleBuilder::new().build().is_empty());
    }

    #[test]
    fn built_rule_evaluates() {
        let rule = RuleBuilder::new()
            .aggregate_with(AggregationFunction::Min)
            .compare_property("label", DistanceFunction::Levenshtein, 2.0)
            .build();
        let a = EntityBuilder::new("a")
            .value("label", "Casablanca")
            .build_with_own_schema();
        let b = EntityBuilder::new("b")
            .value("label", "casablanca")
            .build_with_own_schema();
        assert!(rule.is_link(&EntityPair::new(&a, &b)));
    }

    #[test]
    fn free_function_builders_compose() {
        let op = aggregation(
            AggregationFunction::Max,
            vec![compare(
                transform(TransformFunction::Tokenize, vec![property("title")]),
                property("name"),
                DistanceFunction::Jaccard,
                0.4,
            )],
        );
        let rule: LinkageRule = op.into();
        assert!(rule.stats().uses_transformations);
    }
}
