//! Minimal vendored subset of the `rand` crate API.
//!
//! The build environment has no crates.io access, so this shim provides the
//! exact surface the workspace uses: [`rngs::StdRng`], [`SeedableRng`],
//! [`Rng::gen`], [`Rng::gen_bool`], [`Rng::gen_range`] and
//! [`seq::SliceRandom`].  The generator is xoshiro256++ seeded through
//! SplitMix64 — deterministic per seed, but *not* stream-compatible with
//! upstream rand's ChaCha12-based `StdRng`.

pub mod rngs;
pub mod seq;

/// A source of random 64-bit words.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction of a generator from a seed.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Convenience sampling methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Samples a value of a type with a standard distribution (`f64` in
    /// `[0, 1)`, uniform integers, fair `bool`).
    fn gen<T: SampleStandard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        debug_assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool probability {p} out of range"
        );
        f64::sample_standard(self) < p
    }

    /// Samples uniformly from a range (`a..b` or `a..=b`).
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }
}

impl<R: RngCore> Rng for R {}

/// Types samplable without parameters (the `Standard` distribution).
pub trait SampleStandard {
    /// Samples one value.
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self;
}

impl SampleStandard for f64 {
    fn sample_standard<R: RngCore>(rng: &mut R) -> f64 {
        // 53 random mantissa bits -> uniform in [0, 1)
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl SampleStandard for f32 {
    fn sample_standard<R: RngCore>(rng: &mut R) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl SampleStandard for bool {
    fn sample_standard<R: RngCore>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl SampleStandard for u64 {
    fn sample_standard<R: RngCore>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl SampleStandard for u32 {
    fn sample_standard<R: RngCore>(rng: &mut R) -> u32 {
        rng.next_u32()
    }
}

/// Types with uniform sampling over an interval.  Implemented per type;
/// [`SampleRange`] stays generic over `T` so integer-literal ranges infer
/// their type from the call site, exactly like upstream rand.
pub trait SampleUniform: Sized + Copy + PartialOrd {
    /// A uniform value in `[low, high)` (`high` itself included when
    /// `inclusive` is set).
    fn sample_uniform<R: RngCore>(rng: &mut R, low: Self, high: Self, inclusive: bool) -> Self;
}

macro_rules! int_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_uniform<R: RngCore>(rng: &mut R, low: $t, high: $t, inclusive: bool) -> $t {
                let span = (high as i128 - low as i128) as u128 + u128::from(inclusive);
                assert!(span > 0, "cannot sample from empty range");
                let value = (rng.next_u64() as u128) % span;
                (low as i128 + value as i128) as $t
            }
        }
    )*};
}

int_sample_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample_uniform<R: RngCore>(rng: &mut R, low: f64, high: f64, _inclusive: bool) -> f64 {
        assert!(low <= high, "cannot sample from empty range");
        low + f64::sample_standard(rng) * (high - low)
    }
}

impl SampleUniform for f32 {
    fn sample_uniform<R: RngCore>(rng: &mut R, low: f32, high: f32, _inclusive: bool) -> f32 {
        assert!(low <= high, "cannot sample from empty range");
        low + f32::sample_standard(rng) * (high - low)
    }
}

/// Ranges a uniform value can be drawn from.
pub trait SampleRange<T> {
    /// Samples one value from the range.
    fn sample_from<R: RngCore>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for std::ops::Range<T> {
    fn sample_from<R: RngCore>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "cannot sample from empty range");
        T::sample_uniform(rng, self.start, self.end, false)
    }
}

impl<T: SampleUniform> SampleRange<T> for std::ops::RangeInclusive<T> {
    fn sample_from<R: RngCore>(self, rng: &mut R) -> T {
        let (start, end) = (*self.start(), *self.end());
        assert!(start <= end, "cannot sample from empty range");
        T::sample_uniform(rng, start, end, true)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;
    use crate::seq::SliceRandom;

    #[test]
    fn seeded_runs_are_deterministic() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..16).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4);
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(3..17);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(0..=5u32);
            assert!(w <= 5);
            let f = rng.gen_range(-2.0f64..2.0);
            assert!((-2.0..2.0).contains(&f));
            let neg = rng.gen_range(-10i32..-5);
            assert!((-10..-5).contains(&neg));
        }
    }

    #[test]
    fn standard_f64_is_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut sum = 0.0;
        for _ in 0..1000 {
            let v: f64 = rng.gen();
            assert!((0.0..1.0).contains(&v));
            sum += v;
        }
        let mean = sum / 1000.0;
        assert!((0.35..0.65).contains(&mean), "mean was {mean}");
    }

    #[test]
    fn gen_bool_matches_probability_roughly() {
        let mut rng = StdRng::seed_from_u64(11);
        let hits = (0..2000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((300..700).contains(&hits), "hits were {hits}");
    }

    #[test]
    fn choose_and_shuffle_cover_the_slice() {
        let mut rng = StdRng::seed_from_u64(13);
        let items = [1, 2, 3, 4, 5];
        let mut seen = std::collections::HashSet::new();
        for _ in 0..200 {
            seen.insert(*items.choose(&mut rng).unwrap());
        }
        assert_eq!(seen.len(), items.len());
        let empty: [i32; 0] = [];
        assert!(empty.choose(&mut rng).is_none());

        let mut shuffled = vec![1, 2, 3, 4, 5, 6, 7, 8];
        shuffled.shuffle(&mut rng);
        let mut sorted = shuffled.clone();
        sorted.sort();
        assert_eq!(sorted, vec![1, 2, 3, 4, 5, 6, 7, 8]);
    }
}
