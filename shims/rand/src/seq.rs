//! Slice sampling helpers, mirroring `rand::seq::SliceRandom`.

use crate::{Rng, SampleRange, SampleStandard};

/// Why a weighted choice failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WeightedError {
    /// The slice was empty or all weights were zero/negative.
    NoItem,
}

impl std::fmt::Display for WeightedError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("no item with positive weight to choose from")
    }
}

impl std::error::Error for WeightedError {}

/// Random selection and shuffling on slices.
pub trait SliceRandom {
    /// The element type.
    type Item;

    /// A uniformly chosen element, or `None` on an empty slice.
    fn choose<R: Rng>(&self, rng: &mut R) -> Option<&Self::Item>;

    /// An element chosen with probability proportional to `weight`.
    fn choose_weighted<R: Rng, F>(
        &self,
        rng: &mut R,
        weight: F,
    ) -> Result<&Self::Item, WeightedError>
    where
        F: Fn(&Self::Item) -> f64;

    /// Shuffles the slice in place (Fisher-Yates).
    fn shuffle<R: Rng>(&mut self, rng: &mut R);
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn choose<R: Rng>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            let index = (0..self.len()).sample_from(rng);
            self.get(index)
        }
    }

    fn choose_weighted<R: Rng, F>(&self, rng: &mut R, weight: F) -> Result<&T, WeightedError>
    where
        F: Fn(&T) -> f64,
    {
        let total: f64 = self.iter().map(|item| weight(item).max(0.0)).sum();
        // NaN totals (a NaN weight) must also bail out, so compare explicitly
        if total.partial_cmp(&0.0) != Some(std::cmp::Ordering::Greater) {
            return Err(WeightedError::NoItem);
        }
        let mut remaining = f64::sample_standard(rng) * total;
        for item in self {
            remaining -= weight(item).max(0.0);
            if remaining <= 0.0 {
                return Ok(item);
            }
        }
        self.last().ok_or(WeightedError::NoItem)
    }

    fn shuffle<R: Rng>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            let j = (0..=i).sample_from(rng);
            self.swap(i, j);
        }
    }
}
