//! Minimal vendored subset of the `proptest` API.
//!
//! Supports the subset this workspace's property tests use: the
//! [`proptest!`], [`prop_assert!`] and [`prop_assert_eq!`] macros, integer
//! and float range strategies, a small regex-pattern string strategy
//! (`.`/`[...]` atoms with `{m,n}` repetition) and [`collection::vec`].
//!
//! Each property runs `PROPTEST_CASES` cases (default 128) with an RNG
//! seeded deterministically from the test name, so failures are
//! reproducible.  There is no shrinking; the failing inputs are printed via
//! the standard assertion message instead.

pub mod collection;
pub mod strategy;

pub use strategy::{PatternStrategy, Strategy, TestRng};

/// Common imports, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::strategy::{Strategy, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, proptest, ProptestConfig};
}

/// Number of cases every property runs (`PROPTEST_CASES` overrides).
pub fn cases() -> usize {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(128)
}

/// Per-block configuration, set with `#![proptest_config(...)]`.
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of cases each property in the block runs.
    pub cases: usize,
}

impl ProptestConfig {
    /// A configuration running `cases` cases per property.
    pub fn with_cases(cases: usize) -> Self {
        ProptestConfig {
            cases: cases.max(1),
        }
    }
}

/// Defines property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` that samples the strategies [`cases`] times (or the
/// count from a leading `#![proptest_config(...)]`).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)]
     $($(#[$meta:meta])* fn $name:ident($($arg:ident in $strategy:expr),* $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let mut proptest_rng = $crate::TestRng::for_test(stringify!($name));
                for proptest_case in 0..$config.cases {
                    let _ = proptest_case;
                    $(let $arg = $crate::Strategy::sample(&$strategy, &mut proptest_rng);)*
                    $body
                }
            }
        )*
    };
    ($($(#[$meta:meta])* fn $name:ident($($arg:ident in $strategy:expr),* $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let mut proptest_rng = $crate::TestRng::for_test(stringify!($name));
                for proptest_case in 0..$crate::cases() {
                    let _ = proptest_case;
                    $(let $arg = $crate::Strategy::sample(&$strategy, &mut proptest_rng);)*
                    $body
                }
            }
        )*
    };
}

/// Asserts a condition inside a property (no shrinking; plain `assert!`).
#[macro_export]
macro_rules! prop_assert {
    ($($tokens:tt)*) => { assert!($($tokens)*) };
}

/// Asserts equality inside a property (no shrinking; plain `assert_eq!`).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tokens:tt)*) => { assert_eq!($($tokens)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn pattern_strategy_respects_length_and_class() {
        let mut rng = TestRng::for_test("pattern");
        for _ in 0..200 {
            let s = Strategy::sample(&"[a-c]{1,2}", &mut rng);
            assert!((1..=2).contains(&s.chars().count()), "{s:?}");
            assert!(s.chars().all(|c| ('a'..='c').contains(&c)), "{s:?}");
            let any = Strategy::sample(&".{0,5}", &mut rng);
            assert!(any.chars().count() <= 5);
        }
    }

    #[test]
    fn vec_strategy_respects_size_range() {
        let mut rng = TestRng::for_test("vec");
        for _ in 0..100 {
            let v = Strategy::sample(&crate::collection::vec(0usize..5, 2..4), &mut rng);
            assert!((2..4).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 5));
        }
    }

    proptest! {
        #[test]
        fn macro_generates_runnable_tests(a in 0usize..10, b in 0.0f64..1.0) {
            prop_assert!(a < 10);
            prop_assert!((0.0..1.0).contains(&b));
            prop_assert_eq!(a, a);
        }

        #[test]
        fn class_with_literals_parses(s in "[a-zA-Z0-9 ,.-]{0,16}") {
            for c in s.chars() {
                prop_assert!(
                    c.is_ascii_alphanumeric() || c == ' ' || c == ',' || c == '.' || c == '-',
                    "unexpected char {c:?}"
                );
            }
        }
    }
}
