//! Collection strategies (`proptest::collection::vec`).

use rand::Rng;

use crate::strategy::{Strategy, TestRng};

/// A strategy producing vectors of values from an element strategy.
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    min: usize,
    max_exclusive: usize,
}

/// Builds a vector strategy with lengths drawn from `size` (a `a..b` range,
/// exclusive upper bound, matching proptest's `vec(strategy, range)`).
pub fn vec<S: Strategy>(element: S, size: std::ops::Range<usize>) -> VecStrategy<S> {
    assert!(size.start < size.end, "empty vec size range");
    VecStrategy {
        element,
        min: size.start,
        max_exclusive: size.end,
    }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = rng.rng().gen_range(self.min..self.max_exclusive);
        (0..len).map(|_| self.element.sample(rng)).collect()
    }
}
