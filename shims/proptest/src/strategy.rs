//! Strategies: deterministic samplers for property inputs.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The RNG driving property tests, seeded from the test name so every run of
/// a given test sees the same case sequence.
#[derive(Debug, Clone)]
pub struct TestRng {
    inner: StdRng,
}

impl TestRng {
    /// A generator seeded from the test name (FNV-1a of the bytes).
    pub fn for_test(name: &str) -> Self {
        let mut hash = 0xcbf2_9ce4_8422_2325u64;
        for byte in name.bytes() {
            hash ^= byte as u64;
            hash = hash.wrapping_mul(0x1000_0000_01b3);
        }
        TestRng {
            inner: StdRng::seed_from_u64(hash),
        }
    }

    /// The underlying generator.
    pub fn rng(&mut self) -> &mut StdRng {
        &mut self.inner
    }
}

/// A sampler of values for one property input.
pub trait Strategy {
    /// The value type produced.
    type Value;

    /// Samples one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.rng().gen_range(self.clone())
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.rng().gen_range(self.clone())
            }
        }
    )*};
}

range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f64);

macro_rules! tuple_strategy {
    ($($name:ident),*) => {
        impl<$($name: Strategy),*> Strategy for ($($name,)*) {
            type Value = ($($name::Value,)*);
            #[allow(non_snake_case)]
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)*) = self;
                ($($name.sample(rng),)*)
            }
        }
    };
}

tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);
tuple_strategy!(A, B, C, D, E, F);

/// One parsed atom of a string pattern.
#[derive(Debug, Clone, PartialEq)]
enum Atom {
    /// `.` — any printable character.
    Any,
    /// `[...]` — ranges and literal characters.
    Class(Vec<(char, char)>),
}

/// A piece of a pattern: an atom with a `{min,max}` repetition.
#[derive(Debug, Clone, PartialEq)]
struct Piece {
    atom: Atom,
    min: usize,
    max: usize,
}

/// A compiled string pattern covering the `.`/`[...]`/`{m,n}` regex subset.
#[derive(Debug, Clone, PartialEq)]
pub struct PatternStrategy {
    pieces: Vec<Piece>,
}

/// Characters `.` samples from: printable ASCII plus a few non-ASCII code
/// points so Unicode handling gets exercised.
const ANY_EXTRAS: [char; 6] = ['é', 'ü', 'ß', 'Ω', '中', '€'];

impl PatternStrategy {
    /// Parses a pattern; panics on syntax outside the supported subset so a
    /// typo in a test fails loudly.
    pub fn parse(pattern: &str) -> Self {
        let mut chars = pattern.chars().peekable();
        let mut pieces = Vec::new();
        while let Some(c) = chars.next() {
            let atom = match c {
                '.' => Atom::Any,
                '[' => {
                    let mut members = Vec::new();
                    let mut class_chars: Vec<char> = Vec::new();
                    for member in chars.by_ref() {
                        if member == ']' {
                            break;
                        }
                        class_chars.push(member);
                    }
                    let mut i = 0;
                    while i < class_chars.len() {
                        if i + 2 < class_chars.len() && class_chars[i + 1] == '-' {
                            members.push((class_chars[i], class_chars[i + 2]));
                            i += 3;
                        } else {
                            members.push((class_chars[i], class_chars[i]));
                            i += 1;
                        }
                    }
                    assert!(
                        !members.is_empty(),
                        "empty character class in pattern {pattern:?}"
                    );
                    Atom::Class(members)
                }
                other => Atom::Class(vec![(other, other)]),
            };
            let (min, max) = if chars.peek() == Some(&'{') {
                chars.next();
                let mut spec = String::new();
                for digit in chars.by_ref() {
                    if digit == '}' {
                        break;
                    }
                    spec.push(digit);
                }
                match spec.split_once(',') {
                    Some((lo, hi)) => (
                        lo.parse()
                            .unwrap_or_else(|_| panic!("bad repetition in {pattern:?}")),
                        hi.parse()
                            .unwrap_or_else(|_| panic!("bad repetition in {pattern:?}")),
                    ),
                    None => {
                        let n = spec
                            .parse()
                            .unwrap_or_else(|_| panic!("bad repetition in {pattern:?}"));
                        (n, n)
                    }
                }
            } else {
                (1, 1)
            };
            assert!(min <= max, "inverted repetition in pattern {pattern:?}");
            pieces.push(Piece { atom, min, max });
        }
        PatternStrategy { pieces }
    }

    fn sample_char(atom: &Atom, rng: &mut TestRng) -> char {
        match atom {
            Atom::Any => {
                // mostly printable ASCII, occasionally beyond
                if rng.rng().gen_bool(0.9) {
                    rng.rng().gen_range(0x20u32..0x7f) as u8 as char
                } else {
                    ANY_EXTRAS[rng.rng().gen_range(0..ANY_EXTRAS.len())]
                }
            }
            Atom::Class(members) => {
                let (lo, hi) = members[rng.rng().gen_range(0..members.len())];
                char::from_u32(rng.rng().gen_range(lo as u32..=hi as u32))
                    .expect("class ranges stay within valid scalar values")
            }
        }
    }
}

impl Strategy for PatternStrategy {
    type Value = String;

    fn sample(&self, rng: &mut TestRng) -> String {
        let mut out = String::new();
        for piece in &self.pieces {
            let count = rng.rng().gen_range(piece.min..=piece.max);
            for _ in 0..count {
                out.push(Self::sample_char(&piece.atom, rng));
            }
        }
        out
    }
}

impl Strategy for &str {
    type Value = String;

    fn sample(&self, rng: &mut TestRng) -> String {
        PatternStrategy::parse(self).sample(rng)
    }
}

impl Strategy for String {
    type Value = String;

    fn sample(&self, rng: &mut TestRng) -> String {
        PatternStrategy::parse(self).sample(rng)
    }
}
