//! Minimal vendored subset of the `criterion` benchmarking API.
//!
//! Provides [`Criterion`], [`black_box`], benchmark groups and the
//! [`criterion_group!`]/[`criterion_main!`] macros.  Each benchmark is warmed
//! up briefly, then timed in batches until a wall-clock budget is spent; the
//! mean time per iteration is printed.  There is no statistical analysis or
//! HTML report — the numbers are for tracking relative changes.
//!
//! Set `CRITERION_JSON=<path>` to additionally append one JSON object per
//! benchmark (`{"name": ..., "ns_per_iter": ..., "iters": ...}`) to a file,
//! which is how `BENCH_eval.json` style artifacts are produced.

use std::io::Write as _;
use std::time::{Duration, Instant};

/// Opaque value barrier preventing the optimizer from deleting benchmark
/// bodies.
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// One measured benchmark.
#[derive(Debug, Clone)]
pub struct BenchResult {
    /// Full benchmark name (`group/function`).
    pub name: String,
    /// Mean nanoseconds per iteration.
    pub ns_per_iter: f64,
    /// Number of timed iterations behind the mean.
    pub iters: u64,
}

/// The benchmark driver.
#[derive(Debug)]
pub struct Criterion {
    sample_size: usize,
    measurement: Duration,
    results: Vec<BenchResult>,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 20,
            measurement: Duration::from_millis(300),
            results: Vec::new(),
        }
    }
}

impl Criterion {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(mut self, samples: usize) -> Self {
        self.sample_size = samples.max(1);
        self
    }

    /// Sets the wall-clock budget per benchmark.
    pub fn measurement_time(mut self, duration: Duration) -> Self {
        self.measurement = duration;
        self
    }

    /// Runs one benchmark function.
    pub fn bench_function<F>(&mut self, name: impl Into<String>, mut body: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let name = name.into();
        let mut bencher = Bencher {
            budget: self.measurement,
            samples: self.sample_size,
            measured: None,
        };
        body(&mut bencher);
        let (ns_per_iter, iters) = bencher.measured.unwrap_or((0.0, 0));
        println!("bench {name:<50} {ns_per_iter:>14.1} ns/iter ({iters} iters)");
        let result = BenchResult {
            name,
            ns_per_iter,
            iters,
        };
        if let Ok(path) = std::env::var("CRITERION_JSON") {
            if let Ok(mut file) = std::fs::OpenOptions::new()
                .create(true)
                .append(true)
                .open(path)
            {
                let _ = writeln!(
                    file,
                    "{{\"name\": \"{}\", \"ns_per_iter\": {:.1}, \"iters\": {}}}",
                    result.name, result.ns_per_iter, result.iters
                );
            }
        }
        self.results.push(result);
        self
    }

    /// Opens a named group; benchmarks inside are reported as `group/name`.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            prefix: name.into(),
        }
    }

    /// All results measured so far.
    pub fn results(&self) -> &[BenchResult] {
        &self.results
    }
}

/// A named group of benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    prefix: String,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples for the following benchmarks.
    pub fn sample_size(&mut self, samples: usize) -> &mut Self {
        self.criterion.sample_size = samples.max(1);
        self
    }

    /// Runs one benchmark inside the group.
    pub fn bench_function<F>(&mut self, name: impl Into<String>, body: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.prefix, name.into());
        self.criterion.bench_function(full, body);
        self
    }

    /// Ends the group (kept for API compatibility; nothing to flush).
    pub fn finish(self) {}
}

/// Times a closure.
#[derive(Debug)]
pub struct Bencher {
    budget: Duration,
    samples: usize,
    measured: Option<(f64, u64)>,
}

impl Bencher {
    /// Benchmarks the closure: short warm-up, then `samples` timed batches
    /// within the wall-clock budget.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut body: F) {
        // warm-up: determine a batch size that takes roughly budget/samples
        let warmup_start = Instant::now();
        let mut warmup_iters = 0u64;
        while warmup_start.elapsed() < Duration::from_millis(20) && warmup_iters < 1_000_000 {
            black_box(body());
            warmup_iters += 1;
        }
        let per_iter = warmup_start.elapsed().as_nanos() as f64 / warmup_iters.max(1) as f64;
        let batch_budget = self.budget.as_nanos() as f64 / self.samples.max(1) as f64;
        let batch = ((batch_budget / per_iter.max(1.0)) as u64).clamp(1, 10_000_000);

        let mut total_ns = 0.0f64;
        let mut total_iters = 0u64;
        let run_start = Instant::now();
        for _ in 0..self.samples {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(body());
            }
            total_ns += start.elapsed().as_nanos() as f64;
            total_iters += batch;
            if run_start.elapsed() > self.budget * 2 {
                break;
            }
        }
        self.measured = Some((total_ns / total_iters.max(1) as f64, total_iters));
    }
}

/// Declares a benchmark group function, mirroring criterion's two forms.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),* $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $($target(&mut criterion);)*
        }
    };
    ($name:ident, $($target:path),* $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),*
        }
    };
}

/// Declares the benchmark `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),* $(,)?) => {
        fn main() {
            $($group();)*
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> Criterion {
        Criterion::default()
            .sample_size(3)
            .measurement_time(Duration::from_millis(10))
    }

    #[test]
    fn bench_function_records_a_result() {
        let mut criterion = quick();
        criterion.bench_function("sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
        assert_eq!(criterion.results().len(), 1);
        assert!(criterion.results()[0].ns_per_iter > 0.0);
        assert!(criterion.results()[0].iters > 0);
    }

    #[test]
    fn groups_prefix_names() {
        let mut criterion = quick();
        let mut group = criterion.benchmark_group("g");
        group.sample_size(2);
        group.bench_function("f", |b| b.iter(|| black_box(1 + 1)));
        group.finish();
        assert_eq!(criterion.results()[0].name, "g/f");
    }
}
