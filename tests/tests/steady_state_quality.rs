//! Quality-at-budget: the asynchronous steady-state pipeline must match the
//! generational loop's learning quality when both spend the same evaluation
//! budget (`population_size * max_iterations`).
//!
//! The two schedules walk different trajectories through the search space —
//! the pipeline folds offspring back one at a time under a replacement rule
//! instead of swapping whole generations — so the learned rules differ, but
//! the *quality* must not: on the record-linkage benchmarks the training F1
//! of the steady-state run lands within a small tolerance of (or above) the
//! generational run's.  Replacement is implicitly elitist (an offspring only
//! displaces a victim it does not undercut), so the best fitness can never
//! regress within a run either.

use genlink::{GenLink, GenLinkConfig};
use linkdisc_datasets::{Dataset, DatasetKind};

/// |F1(generational) - F1(steady-state)| allowed at equal budget.
const TOLERANCE: f64 = 0.05;

fn budget_config(steady: bool) -> GenLinkConfig {
    let mut config = GenLinkConfig::fast();
    config.gp.population_size = 60;
    config.gp.max_iterations = 10;
    // fixed budget: never stop early, so both schedules spend exactly
    // population_size * max_iterations evaluations
    config.gp.stop_f_measure = 2.0;
    config.gp.threads = 1;
    if steady {
        config = config.steady_state();
    }
    config
}

fn compare_on(dataset: &Dataset, seed: u64) {
    let generational = GenLink::new(budget_config(false)).learn(
        &dataset.source,
        &dataset.target,
        &dataset.links,
        seed,
    );
    let steady = GenLink::new(budget_config(true)).learn(
        &dataset.source,
        &dataset.target,
        &dataset.links,
        seed,
    );

    let generational_f1 = generational.training.f_measure();
    let steady_f1 = steady.training.f_measure();
    assert!(
        steady_f1 >= generational_f1 - TOLERANCE,
        "steady-state F1 {steady_f1:.3} fell more than {TOLERANCE} below the \
         generational {generational_f1:.3} at the same budget"
    );

    // both spent the same budget: the pipeline reports its evaluation count,
    // the generational loop its iteration count
    let report = steady.pipeline.expect("steady state reports throughput");
    let budget = budget_config(false).gp.population_size * budget_config(false).gp.max_iterations;
    assert_eq!(report.evaluations, budget);
    assert_eq!(generational.iterations, 10);

    // within the steady-state run, the best fitness never regresses across
    // windows (replacement is implicitly elitist)
    let mut previous = f64::NEG_INFINITY;
    for stats in &steady.history {
        assert!(
            stats.best_fitness >= previous,
            "best fitness regressed from {previous} to {} in window {}",
            stats.best_fitness,
            stats.iteration
        );
        previous = stats.best_fitness;
    }
}

#[test]
fn steady_state_matches_generational_quality_on_restaurant() {
    let dataset = DatasetKind::Restaurant.generate(0.25, 7);
    compare_on(&dataset, 42);
}

#[test]
fn steady_state_matches_generational_quality_on_cora() {
    let dataset = DatasetKind::Cora.generate(0.15, 7);
    compare_on(&dataset, 42);
}

#[test]
fn island_mode_matches_generational_quality_on_restaurant() {
    let dataset = DatasetKind::Restaurant.generate(0.25, 7);
    let generational = GenLink::new(budget_config(false)).learn(
        &dataset.source,
        &dataset.target,
        &dataset.links,
        21,
    );
    let mut config = budget_config(true);
    config.mode = genlink::LearningMode::SteadyState(genlink::SteadyStateConfig {
        islands: 4,
        migrants: 2,
        ..genlink::SteadyStateConfig::default()
    });
    let islands = GenLink::new(config).learn(&dataset.source, &dataset.target, &dataset.links, 21);
    let generational_f1 = generational.training.f_measure();
    let island_f1 = islands.training.f_measure();
    assert!(
        island_f1 >= generational_f1 - TOLERANCE,
        "island F1 {island_f1:.3} fell more than {TOLERANCE} below the \
         generational {generational_f1:.3} at the same budget"
    );
    assert!(!islands.migrations.is_empty());
}
