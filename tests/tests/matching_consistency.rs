//! Consistency between the matching engine and brute-force rule evaluation,
//! and between the engine's output and the reference links of a dataset.

use linkdisc_datasets::DatasetKind;
use linkdisc_entity::EntityPair;
use linkdisc_matching::{MatchingEngine, MatchingOptions};
use linkdisc_rule::{
    compare, property, transform, DistanceFunction, LinkageRule, TransformFunction,
};
use std::collections::HashSet;

fn title_rule() -> LinkageRule {
    compare(
        transform(TransformFunction::LowerCase, vec![property("movie:title")]),
        transform(TransformFunction::LowerCase, vec![property("rdfs:label")]),
        DistanceFunction::Levenshtein,
        0.5,
    )
    .into()
}

#[test]
fn engine_without_blocking_agrees_with_brute_force() {
    let dataset = DatasetKind::LinkedMdb.generate(0.3, 3);
    let rule = title_rule();
    let report = MatchingEngine::new(rule.clone())
        .with_options(MatchingOptions {
            use_blocking: false,
            threads: 2,
            ..MatchingOptions::default()
        })
        .run(&dataset.source, &dataset.target);
    let mut expected = HashSet::new();
    for source_entity in dataset.source.entities() {
        for target_entity in dataset.target.entities() {
            if rule.is_link(&EntityPair::new(source_entity, target_entity)) {
                expected.insert((
                    source_entity.id().to_string(),
                    target_entity.id().to_string(),
                ));
            }
        }
    }
    let produced: HashSet<(String, String)> = report
        .links
        .iter()
        .map(|l| (l.source.clone(), l.target.clone()))
        .collect();
    assert_eq!(produced, expected);
    assert_eq!(report.evaluated_pairs, report.cross_product);
}

#[test]
fn blocking_is_lossless_and_adds_no_links() {
    let dataset = DatasetKind::Restaurant.generate(0.3, 5);
    let rule: LinkageRule = compare(
        transform(TransformFunction::LowerCase, vec![property("name")]),
        transform(TransformFunction::LowerCase, vec![property("name")]),
        DistanceFunction::Levenshtein,
        0.5,
    )
    .into();
    let full = MatchingEngine::new(rule.clone())
        .with_options(MatchingOptions {
            use_blocking: false,
            ..MatchingOptions::default()
        })
        .run(&dataset.source, &dataset.target);
    let blocked = MatchingEngine::new(rule).run(&dataset.source, &dataset.target);
    let full_set: HashSet<_> = full
        .links
        .iter()
        .map(|l| (l.source.clone(), l.target.clone()))
        .collect();
    let blocked_set: HashSet<_> = blocked
        .links
        .iter()
        .map(|l| (l.source.clone(), l.target.clone()))
        .collect();
    assert!(blocked_set.is_subset(&full_set));
    // MultiBlock candidate generation is lossless by construction, so the
    // indexed run reproduces the exhaustive link set exactly
    assert_eq!(blocked_set, full_set);
    assert!(blocked.evaluated_pairs <= full.evaluated_pairs);
}

#[test]
fn engine_recovers_most_reference_links_with_a_good_rule() {
    // titles alone are ambiguous on LinkedMDB (same title, different year), so
    // the rule combines the title with the release date — the shape of the
    // manually written rule the paper describes for this data set
    let dataset = DatasetKind::LinkedMdb.generate(0.4, 9);
    let mut title = compare(
        transform(TransformFunction::LowerCase, vec![property("movie:title")]),
        transform(TransformFunction::LowerCase, vec![property("rdfs:label")]),
        DistanceFunction::Levenshtein,
        0.5,
    );
    title.set_weight(2);
    let date = compare(
        property("movie:initial_release_date"),
        property("dbpedia:released"),
        DistanceFunction::Date,
        400.0,
    );
    let rule: LinkageRule = linkdisc_rule::aggregation(
        linkdisc_rule::AggregationFunction::WeightedMean,
        vec![title, date],
    )
    .into();
    let report = MatchingEngine::new(rule)
        .with_options(MatchingOptions {
            best_match_only: true,
            ..MatchingOptions::default()
        })
        .run(&dataset.source, &dataset.target);
    let produced: HashSet<(String, String)> = report
        .links
        .iter()
        .map(|l| (l.source.clone(), l.target.clone()))
        .collect();
    let recovered = dataset
        .links
        .positive()
        .iter()
        .filter(|l| produced.contains(&(l.source.clone(), l.target.clone())))
        .count();
    let recall = recovered as f64 / dataset.links.positive().len() as f64;
    assert!(recall > 0.8, "recall was {recall}");
}
