//! Property-based parity for the score-bounded evaluator: short-circuit
//! evaluation never changes a classification, and every pair that classifies
//! as a link scores bit-identically to exhaustive evaluation.
//!
//! The bounded contract (see `crates/rule/src/compiled.rs` and DESIGN.md) is
//! that `evaluate_bounded(pair, cache, θ)` returns an upper bound of the
//! exhaustive score which is *exact* whenever it lands at or above θ.  Scores
//! are therefore allowed to differ only for pairs both sides classify as
//! "no link" — which is precisely what these tests pin down over random
//! GP-shaped rules on the Cora and Restaurant datasets.

use genlink::random::RandomRuleGenerator;
use genlink::{CompatiblePair, CrossoverOperator, RepresentationMode};
use linkdisc_datasets::DatasetKind;
use linkdisc_entity::EntityPair;
use linkdisc_evaluation::{evaluate_compiled, evaluate_compiled_stats, evaluate_rule};
use linkdisc_rule::{
    CompiledRule, DistanceFunction, EvalStats, LinkageRule, ValueCache, LINK_THRESHOLD,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Compatible pairs over the Cora schema, mirroring `compiled_parity.rs` so
/// the rule sample exercises every distance function the generator offers.
fn cora_pairs() -> Vec<CompatiblePair> {
    let functions = [
        DistanceFunction::Levenshtein,
        DistanceFunction::Jaccard,
        DistanceFunction::Numeric,
        DistanceFunction::Date,
        DistanceFunction::Dice,
        DistanceFunction::Equality,
    ];
    ["title", "author", "venue", "date"]
        .iter()
        .enumerate()
        .map(|(i, property)| CompatiblePair {
            source_property: property.to_string(),
            target_property: property.to_string(),
            function: functions[i % functions.len()],
            support: 0.5,
        })
        .collect()
}

#[test]
fn bounded_classification_matches_exhaustive_on_1000_cora_combinations() {
    let dataset = DatasetKind::Cora.generate(0.1, 17);
    let source_entities = dataset.source.entities();
    let target_entities = dataset.target.entities();
    let resolved = linkdisc_entity::ResolvedReferenceLinks::resolve(
        &dataset.links,
        &dataset.source,
        &dataset.target,
    );
    let positives = resolved.positive();
    assert!(!positives.is_empty());

    let mut generator = RandomRuleGenerator::new(cora_pairs(), RepresentationMode::Full);
    generator.transformation_probability = 0.6;
    let mut rng = StdRng::seed_from_u64(90125);

    let cache = ValueCache::new();
    let mut stats = EvalStats::default();
    let mut combinations = 0usize;
    let mut links = 0usize;
    for rule_index in 0..60 {
        // every third rule is a crossover offspring of two random rules, so
        // the sample includes deeper aggregation trees (the only place
        // short-circuiting can fire) than the generator alone produces
        let rule: LinkageRule = if rule_index % 3 == 2 {
            let a = generator.generate(&mut rng);
            let b = generator.generate(&mut rng);
            let operator =
                CrossoverOperator::SPECIALIZED[rule_index % CrossoverOperator::SPECIALIZED.len()];
            operator.apply(&a, &b, &mut rng)
        } else {
            generator.generate(&mut rng)
        };
        let compiled =
            CompiledRule::compile(&rule, dataset.source.schema(), dataset.target.schema());
        for pair_index in 0..20 {
            // half resolved matches, half random cross-product pairs, so both
            // the link and the (prunable) no-link paths are exercised
            let pair = if pair_index % 2 == 0 {
                positives[rng.gen_range(0..positives.len())]
            } else {
                EntityPair::new(
                    &source_entities[rng.gen_range(0..source_entities.len())],
                    &target_entities[rng.gen_range(0..target_entities.len())],
                )
            };
            let exhaustive = compiled.evaluate(&pair, &cache);
            let bounded = compiled.evaluate_bounded_two_stats(
                pair.source,
                pair.target,
                &cache,
                &cache,
                LINK_THRESHOLD,
                &mut stats,
            );
            // classification is identical...
            assert_eq!(
                exhaustive >= LINK_THRESHOLD,
                bounded >= LINK_THRESHOLD,
                "classification flipped for {rule:?} on ({}, {}): exhaustive {exhaustive} vs bounded {bounded}",
                pair.source.id(),
                pair.target.id(),
            );
            // ...the bounded score never underestimates...
            assert!(
                bounded >= exhaustive,
                "bounded score {bounded} below exhaustive {exhaustive} for {rule:?}"
            );
            // ...and every link scores bit-for-bit like the exhaustive path
            if bounded >= LINK_THRESHOLD {
                assert_eq!(
                    exhaustive.to_bits(),
                    bounded.to_bits(),
                    "linked score not exact for {rule:?} on ({}, {})",
                    pair.source.id(),
                    pair.target.id(),
                );
                links += 1;
            }
            combinations += 1;
        }
    }
    assert!(combinations >= 1000, "only {combinations} combinations");
    assert!(
        links > 50,
        "only {links} links exercised the exactness path"
    );
    assert_eq!(stats.pairs, combinations as u64);
    assert!(
        stats.comparisons_skipped > 0,
        "the random-rule sample never short-circuited — pruning is dead"
    );
    assert!(stats.comparisons_evaluated > 0);
}

#[test]
fn disabled_bound_reproduces_exhaustive_bit_for_bit() {
    // θ = -∞ disables every prune, so the bounded evaluator must *be* the
    // exhaustive evaluator, not merely agree with it at the threshold
    let dataset = DatasetKind::Restaurant.generate(0.2, 5);
    let source_entities = dataset.source.entities();
    let target_entities = dataset.target.entities();
    let mut generator = RandomRuleGenerator::new(cora_restaurant_pairs(), RepresentationMode::Full);
    generator.transformation_probability = 0.5;
    let mut rng = StdRng::seed_from_u64(7);
    let cache = ValueCache::new();
    for _ in 0..40 {
        let rule = generator.generate(&mut rng);
        let compiled =
            CompiledRule::compile(&rule, dataset.source.schema(), dataset.target.schema());
        for _ in 0..10 {
            let pair = EntityPair::new(
                &source_entities[rng.gen_range(0..source_entities.len())],
                &target_entities[rng.gen_range(0..target_entities.len())],
            );
            let exhaustive = compiled.evaluate(&pair, &cache);
            let bounded = compiled.evaluate_bounded(&pair, &cache, f64::NEG_INFINITY);
            assert_eq!(
                exhaustive.to_bits(),
                bounded.to_bits(),
                "θ=-∞ diverged for {rule:?}"
            );
        }
    }
}

/// Compatible pairs over the Restaurant schema (name/address/city/type).
fn cora_restaurant_pairs() -> Vec<CompatiblePair> {
    let functions = [
        DistanceFunction::Levenshtein,
        DistanceFunction::Jaccard,
        DistanceFunction::JaroWinkler,
        DistanceFunction::Dice,
    ];
    ["name", "address", "city", "type"]
        .iter()
        .enumerate()
        .map(|(i, property)| CompatiblePair {
            source_property: property.to_string(),
            target_property: property.to_string(),
            function: functions[i % functions.len()],
            support: 0.5,
        })
        .collect()
}

#[test]
fn bounded_confusion_matrices_match_oracle_on_restaurant_links() {
    let dataset = DatasetKind::Restaurant.generate(0.2, 5);
    let resolved = linkdisc_entity::ResolvedReferenceLinks::resolve(
        &dataset.links,
        &dataset.source,
        &dataset.target,
    );
    let mut generator = RandomRuleGenerator::new(cora_restaurant_pairs(), RepresentationMode::Full);
    generator.transformation_probability = 0.5;
    let mut rng = StdRng::seed_from_u64(11);
    let cache = ValueCache::new();
    let mut stats = EvalStats::default();
    for _ in 0..25 {
        let rule = generator.generate(&mut rng);
        let compiled =
            CompiledRule::compile(&rule, dataset.source.schema(), dataset.target.schema());
        let oracle = evaluate_rule(&rule, &resolved);
        let bounded = evaluate_compiled_stats(&compiled, &resolved, &cache, &mut stats);
        assert_eq!(oracle, bounded, "matrices diverged for {rule:?}");
        // evaluate_compiled now routes through the bounded path too
        assert_eq!(oracle, evaluate_compiled(&compiled, &resolved, &cache));
    }
    assert!(stats.pairs > 0);
    assert!(
        stats.skip_rate() > 0.0,
        "reference-link scoring never short-circuited"
    );
}

#[test]
fn learned_restaurant_rule_short_circuits_without_changing_links() {
    // end-to-end: learn a rule the way the experiments do, then check the
    // bounded evaluator agrees with the exhaustive one on every pair of the
    // full cross product while skipping a meaningful share of comparisons
    let dataset = DatasetKind::Restaurant.generate(0.1, 3);
    let config = genlink::GenLinkConfig {
        gp: {
            let mut gp = genlink::GenLinkConfig::paper().gp;
            gp.population_size = 40;
            gp.max_iterations = 6;
            gp.threads = 1;
            gp
        },
        ..genlink::GenLinkConfig::paper()
    };
    let learner = genlink::GenLink::new(config);
    let outcome = learner.learn(&dataset.source, &dataset.target, &dataset.links, 42);
    let rule = &outcome.rule;
    assert!(!rule.is_empty(), "learning produced an empty rule");
    let compiled = CompiledRule::compile(rule, dataset.source.schema(), dataset.target.schema());
    let cache = ValueCache::new();
    let mut stats = EvalStats::default();
    let mut links = 0usize;
    for source in dataset.source.entities() {
        for target in dataset.target.entities() {
            let pair = EntityPair::new(source, target);
            let exhaustive = compiled.evaluate(&pair, &cache);
            let bounded = compiled.evaluate_bounded_two_stats(
                source,
                target,
                &cache,
                &cache,
                LINK_THRESHOLD,
                &mut stats,
            );
            assert_eq!(exhaustive >= LINK_THRESHOLD, bounded >= LINK_THRESHOLD);
            if bounded >= LINK_THRESHOLD {
                assert_eq!(exhaustive.to_bits(), bounded.to_bits());
                links += 1;
            }
        }
    }
    assert!(links > 0, "the learned rule linked nothing");
    // learned rules aggregate several comparisons, so the cross product —
    // overwhelmingly non-matches — must short-circuit often; the >20%
    // performance gate lives in bench_eval, this only pins the mechanism
    if compiled.comparison_count() > 1 {
        assert!(
            stats.comparisons_skipped > 0,
            "no comparison skipped across the whole cross product"
        );
    }
}
