//! Property test: the serving subsystem is equivalent to the batch path.
//!
//! For random rules (drawn from the same generator the GP learner uses)
//! over noisy datasets, three layers of equivalence must hold:
//!
//! 1. **Chunked streaming == batch** — the engine's streamed runs produce
//!    exactly the batch links and evaluated-pair counts at every chunk size
//!    (the candidate-set algebra distributes over a target partition),
//! 2. **Incremental == batch build** — a `LinkService` populated by any
//!    interleaving of chunked ingestion, removes and re-inserts answers
//!    every query exactly like a service batch-built from the same final
//!    entity set, with identical (exact) index statistics,
//! 3. **Service == engine** — the per-entity `LinkService::query` results,
//!    concatenated over all source entities, are the batch
//!    `MatchingEngine` link set.

use genlink::random::RandomRuleGenerator;
use genlink::seeding::SeedingConfig;
use genlink::{find_compatible_properties, RepresentationMode};
use linkdisc_datasets::DatasetKind;
use linkdisc_matching::{LinkService, MatchingEngine, MatchingOptions, ScoredLink, ServiceOptions};
use linkdisc_rule::LinkageRule;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

struct RuleWorkload {
    dataset: linkdisc_datasets::Dataset,
    rules: Vec<LinkageRule>,
}

fn random_rules(kind: DatasetKind, scale: f64, seed: u64, count: usize) -> RuleWorkload {
    let dataset = kind.generate(scale, seed);
    let pairs = find_compatible_properties(
        &dataset.source,
        &dataset.target,
        &dataset.links,
        &SeedingConfig::default(),
    );
    assert!(!pairs.is_empty(), "seeding found no compatible properties");
    let generator = RandomRuleGenerator::new(pairs, RepresentationMode::Full);
    let mut rng = StdRng::seed_from_u64(seed.wrapping_add(4177));
    let rules = (0..count).map(|_| generator.generate(&mut rng)).collect();
    RuleWorkload { dataset, rules }
}

fn sort_links(mut links: Vec<ScoredLink>) -> Vec<ScoredLink> {
    links.sort_by(|a, b| {
        a.source
            .cmp(&b.source)
            .then_with(|| b.score.total_cmp(&a.score))
            .then_with(|| a.target.cmp(&b.target))
    });
    links
}

/// Streamed (chunked) engine runs must be indistinguishable from the batch
/// run: same links, same number of rule evaluations.
fn assert_streaming_matches_batch(workload: &RuleWorkload) {
    for rule in &workload.rules {
        let batch = MatchingEngine::new(rule.clone())
            .with_options(MatchingOptions {
                threads: 2,
                ..MatchingOptions::default()
            })
            .run(&workload.dataset.source, &workload.dataset.target);
        for chunk_size in [1, 7, 64] {
            let chunked = MatchingEngine::new(rule.clone())
                .with_options(MatchingOptions {
                    threads: 2,
                    chunk_size,
                    ..MatchingOptions::default()
                })
                .run(&workload.dataset.source, &workload.dataset.target);
            assert_eq!(
                chunked.links,
                batch.links,
                "links diverge at chunk size {chunk_size} for rule {}",
                linkdisc_rule::print_rule(rule),
            );
            assert_eq!(
                chunked.evaluated_pairs,
                batch.evaluated_pairs,
                "evaluated pairs diverge at chunk size {chunk_size} for rule {}",
                linkdisc_rule::print_rule(rule),
            );
            assert!(chunked.peak_chunk_entities <= chunk_size);
            assert_eq!(chunked.target_entities, workload.dataset.target.len());
        }
    }
}

/// A `LinkService` built incrementally — chunked ingestion interleaved with
/// removes and re-inserts in a seed-driven order — must be query-equivalent
/// to one batch-built from the final entity set, with identical statistics.
fn assert_incremental_matches_batch_build(workload: &RuleWorkload, seed: u64) {
    let source = &workload.dataset.source;
    let target = &workload.dataset.target;
    let mut rng = StdRng::seed_from_u64(seed.wrapping_add(271));
    for rule in &workload.rules {
        let batch = LinkService::build(
            rule.clone(),
            source.schema(),
            target,
            ServiceOptions::default(),
        )
        .unwrap();
        let mut service = LinkService::empty(
            rule.clone(),
            source.schema(),
            target.schema(),
            ServiceOptions::default(),
        );
        // ingest in random-sized chunks, occasionally removing an
        // already-ingested entity to be re-inserted later
        let mut pending_reinserts = Vec::new();
        let mut cursor = 0;
        while cursor < target.len() {
            let span = rng.gen_range(1..=16).min(target.len() - cursor);
            service
                .ingest(&target.entities()[cursor..cursor + span])
                .unwrap();
            cursor += span;
            if rng.gen_bool(0.4) {
                let victim = &target.entities()[rng.gen_range(0..cursor)];
                if service.remove(victim.id()) {
                    pending_reinserts.push(victim);
                }
            }
        }
        for entity in pending_reinserts {
            service.insert(entity).unwrap();
        }
        assert_eq!(service.len(), target.len());
        assert_eq!(
            service.stats(),
            batch.stats(),
            "index statistics diverge for rule {}",
            linkdisc_rule::print_rule(rule),
        );
        for entity in source.entities() {
            assert_eq!(
                service.query(entity),
                batch.query(entity),
                "query {} diverges for rule {}",
                entity.id(),
                linkdisc_rule::print_rule(rule),
            );
        }
    }
}

/// Single-entity queries, concatenated over the whole source, must
/// reproduce the batch engine's link set.
fn assert_service_matches_engine(workload: &RuleWorkload) {
    let source = &workload.dataset.source;
    let target = &workload.dataset.target;
    for rule in &workload.rules {
        let engine_links = MatchingEngine::new(rule.clone())
            .with_options(MatchingOptions {
                threads: 2,
                ..MatchingOptions::default()
            })
            .run(source, target)
            .links;
        let service = LinkService::build(
            rule.clone(),
            source.schema(),
            target,
            ServiceOptions::default(),
        )
        .unwrap();
        let service_links = sort_links(
            source
                .entities()
                .iter()
                .flat_map(|entity| service.query(entity))
                .collect(),
        );
        assert_eq!(
            service_links,
            engine_links,
            "service and engine links diverge for rule {}",
            linkdisc_rule::print_rule(rule),
        );
    }
}

#[test]
fn streamed_runs_are_equivalent_to_batch_runs() {
    for seed in 0..3 {
        let workload = random_rules(DatasetKind::Restaurant, 0.08, seed, 5);
        assert_streaming_matches_batch(&workload);
    }
    let workload = random_rules(DatasetKind::Cora, 0.04, 1, 4);
    assert_streaming_matches_batch(&workload);
}

#[test]
fn incremental_ingestion_is_equivalent_to_batch_builds() {
    for seed in 0..3 {
        let workload = random_rules(DatasetKind::Restaurant, 0.08, seed, 5);
        assert_incremental_matches_batch_build(&workload, seed);
    }
    let workload = random_rules(DatasetKind::LinkedMdb, 0.05, 2, 4);
    assert_incremental_matches_batch_build(&workload, 2);
}

#[test]
fn service_queries_reproduce_engine_links() {
    for seed in 0..3 {
        let workload = random_rules(DatasetKind::Restaurant, 0.08, seed, 5);
        assert_service_matches_engine(&workload);
    }
    let workload = random_rules(DatasetKind::Cora, 0.04, 3, 4);
    assert_service_matches_engine(&workload);
}
