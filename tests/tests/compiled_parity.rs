//! Property-based parity: the compiled evaluation plan is bit-identical to
//! the tree-walking reference oracle.
//!
//! Random rules (drawn from the same generator the GP search uses, plus
//! crossover offspring for deeper trees) are evaluated on random entity
//! pairs from a generated dataset; every score must match
//! [`LinkageRule::evaluate`] exactly — not approximately — because the
//! learner's selection decisions depend on exact fitness comparisons.

use genlink::random::RandomRuleGenerator;
use genlink::{CompatiblePair, CrossoverOperator, RepresentationMode};
use linkdisc_datasets::DatasetKind;
use linkdisc_entity::EntityPair;
use linkdisc_evaluation::{evaluate_compiled, evaluate_rule};
use linkdisc_rule::{CompiledRule, DistanceFunction, LinkageRule, ValueCache};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Compatible pairs over the Cora schema (title/author/venue/date on both
/// sides), giving the generator realistic properties to draw from.
fn cora_pairs() -> Vec<CompatiblePair> {
    let functions = [
        DistanceFunction::Levenshtein,
        DistanceFunction::Jaccard,
        DistanceFunction::Numeric,
        DistanceFunction::Date,
        DistanceFunction::Dice,
        DistanceFunction::Equality,
    ];
    ["title", "author", "venue", "date"]
        .iter()
        .enumerate()
        .map(|(i, property)| CompatiblePair {
            source_property: property.to_string(),
            target_property: property.to_string(),
            function: functions[i % functions.len()],
            support: 0.5,
        })
        .collect()
}

#[test]
fn compiled_scores_match_tree_walk_on_1000_random_rule_pair_combinations() {
    let dataset = DatasetKind::Cora.generate(0.1, 17);
    let source_entities = dataset.source.entities();
    let target_entities = dataset.target.entities();
    assert!(!source_entities.is_empty() && !target_entities.is_empty());
    let resolved = linkdisc_entity::ResolvedReferenceLinks::resolve(
        &dataset.links,
        &dataset.source,
        &dataset.target,
    );
    let positives = resolved.positive();
    assert!(!positives.is_empty());

    let mut generator = RandomRuleGenerator::new(cora_pairs(), RepresentationMode::Full);
    generator.transformation_probability = 0.6;
    let mut rng = StdRng::seed_from_u64(2024);

    let mut combinations = 0usize;
    let mut nonzero_scores = 0usize;
    let cache = ValueCache::new();
    for rule_index in 0..60 {
        // every third rule is a crossover offspring of two random rules, so
        // the sample includes deeper trees than the generator alone produces
        let rule: LinkageRule = if rule_index % 3 == 2 {
            let a = generator.generate(&mut rng);
            let b = generator.generate(&mut rng);
            let operator =
                CrossoverOperator::SPECIALIZED[rule_index % CrossoverOperator::SPECIALIZED.len()];
            operator.apply(&a, &b, &mut rng)
        } else {
            generator.generate(&mut rng)
        };
        let compiled =
            CompiledRule::compile(&rule, dataset.source.schema(), dataset.target.schema());
        for pair_index in 0..20 {
            // half the pairs are actual matches (resolved positive links),
            // half are random cross-product pairs, so both the high- and
            // low-similarity code paths are exercised
            let pair = if pair_index % 2 == 0 {
                positives[rng.gen_range(0..positives.len())]
            } else {
                EntityPair::new(
                    &source_entities[rng.gen_range(0..source_entities.len())],
                    &target_entities[rng.gen_range(0..target_entities.len())],
                )
            };
            let tree_walk = rule.evaluate(&pair);
            let fast = compiled.evaluate(&pair, &cache);
            assert!(
                tree_walk.to_bits() == fast.to_bits(),
                "score mismatch for rule {rule:?} on ({}, {}): tree walk {tree_walk} vs compiled {fast}",
                pair.source.id(),
                pair.target.id(),
            );
            combinations += 1;
            if tree_walk > 0.0 {
                nonzero_scores += 1;
            }
        }
    }
    assert!(
        combinations >= 1000,
        "only {combinations} combinations exercised"
    );
    // the sample must exercise real similarity paths, not just all-zero rules
    assert!(nonzero_scores > 50, "only {nonzero_scores} non-zero scores");
    // transformation chains repeat across rules, so the shared cache must hit
    assert!(cache.hits() > 0, "value cache never warmed up");
    assert!(!cache.is_empty());
}

#[test]
fn compiled_confusion_matrices_match_on_reference_links() {
    let dataset = DatasetKind::Restaurant.generate(0.2, 5);
    let resolved = linkdisc_entity::ResolvedReferenceLinks::resolve(
        &dataset.links,
        &dataset.source,
        &dataset.target,
    );
    let mut generator = RandomRuleGenerator::new(
        vec![CompatiblePair {
            source_property: "name".into(),
            target_property: "name".into(),
            function: DistanceFunction::Levenshtein,
            support: 1.0,
        }],
        RepresentationMode::Full,
    );
    generator.transformation_probability = 0.5;
    let mut rng = StdRng::seed_from_u64(7);
    let cache = ValueCache::new();
    for _ in 0..25 {
        let rule = generator.generate(&mut rng);
        let compiled =
            CompiledRule::compile(&rule, dataset.source.schema(), dataset.target.schema());
        let oracle = evaluate_rule(&rule, &resolved);
        let fast = evaluate_compiled(&compiled, &resolved, &cache);
        assert_eq!(oracle, fast, "matrices diverged for {rule:?}");
    }
}
