//! Parallel-learning determinism: the same seed, data and configuration
//! produce the same `LearnOutcome` at every thread count.
//!
//! The evolution loop breeds each offspring from its own RNG stream (seeded
//! by one master-RNG draw) and scores generations through an
//! order-preserving batch evaluator, so neither breeding nor evaluation can
//! observe thread scheduling.  These tests pin that guarantee end-to-end
//! through the GenLink learner on a real dataset, across sequential (1),
//! parallel (2, 4) and oversubscribed (host cores + 3) configurations.

use genlink::{GenLink, GenLinkConfig, LearnOutcome, LearningMode, SteadyStateConfig};
use linkdisc_datasets::DatasetKind;

fn parity_config(threads: usize) -> GenLinkConfig {
    let mut config = GenLinkConfig::fast();
    config.gp.population_size = 60;
    config.gp.max_iterations = 8;
    // never stop early: every run executes the same number of generations
    // even if a perfect rule appears, exercising elitism + cache interplay
    config.gp.stop_f_measure = 2.0;
    config.gp.threads = threads;
    config
}

/// One iteration's semantic statistics, bit-exact (fitness and F-measure
/// fields as raw bits).
type IterationPrint = (usize, u64, u64, u64, u64);

/// Everything observable about a learning run except wall-clock times and
/// the cache occupancy counters that legitimately depend on interleaving
/// (concurrent value-cache misses may both compute; the *results* cannot
/// differ, only the bookkeeping).
fn fingerprint(outcome: &LearnOutcome) -> (String, Vec<IterationPrint>, usize, bool) {
    let history = outcome
        .history
        .iter()
        .map(|stats| {
            (
                stats.iteration,
                stats.best_fitness.to_bits(),
                stats.mean_fitness.to_bits(),
                stats.best_f_measure.to_bits(),
                stats.mean_f_measure.to_bits(),
            )
        })
        .collect();
    (
        format!("{:?}", outcome.rule),
        history,
        outcome.iterations,
        outcome.stopped_early,
    )
}

#[test]
fn learning_is_bit_identical_across_thread_counts() {
    let dataset = DatasetKind::Restaurant.generate(0.25, 7);
    let oversubscribed = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        + 3;
    let mut reference = None;
    for threads in [1, 2, 4, oversubscribed] {
        let outcome = GenLink::new(parity_config(threads)).learn(
            &dataset.source,
            &dataset.target,
            &dataset.links,
            42,
        );
        assert_eq!(
            outcome.history.len(),
            9,
            "iteration 0 plus 8 generations at {threads} threads"
        );
        let print = fingerprint(&outcome);
        match &reference {
            None => reference = Some(print),
            Some(expected) => {
                assert_eq!(
                    expected.0, print.0,
                    "learned rule diverged at {threads} threads"
                );
                assert_eq!(
                    expected.1, print.1,
                    "iteration history diverged at {threads} threads"
                );
                assert_eq!(expected.2, print.2);
                assert_eq!(expected.3, print.3);
            }
        }
    }
}

#[test]
fn steady_state_learning_is_bit_identical_across_evaluator_counts() {
    // same contract as the generational loop, but for the asynchronous
    // pipeline: the coordinator's strict breed/fold schedule makes the
    // trajectory a pure function of the seed at any evaluator count
    let dataset = DatasetKind::Restaurant.generate(0.25, 7);
    let oversubscribed = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        + 3;
    let mut reference = None;
    for threads in [1, 2, 4, oversubscribed] {
        let config = parity_config(threads).steady_state();
        let outcome =
            GenLink::new(config).learn(&dataset.source, &dataset.target, &dataset.links, 42);
        assert_eq!(
            outcome.history.len(),
            9,
            "window 0 plus 8 full windows at {threads} evaluators"
        );
        assert!(
            outcome.pipeline.is_some(),
            "steady-state runs report throughput"
        );
        let print = fingerprint(&outcome);
        match &reference {
            None => reference = Some(print),
            Some(expected) => {
                assert_eq!(
                    expected.0, print.0,
                    "learned rule diverged at {threads} evaluators"
                );
                assert_eq!(
                    expected.1, print.1,
                    "window history diverged at {threads} evaluators"
                );
                assert_eq!(expected.2, print.2);
                assert_eq!(expected.3, print.3);
            }
        }
    }
}

#[test]
fn island_migrant_sequence_is_identical_across_evaluator_counts() {
    let dataset = DatasetKind::Restaurant.generate(0.2, 11);
    let mut reference = None;
    for threads in [1, 3] {
        let mut config = parity_config(threads);
        config.mode = LearningMode::SteadyState(SteadyStateConfig {
            islands: 4,
            migrants: 1,
            ..SteadyStateConfig::default()
        });
        let outcome =
            GenLink::new(config).learn(&dataset.source, &dataset.target, &dataset.links, 13);
        assert!(
            !outcome.migrations.is_empty(),
            "a full island run must migrate"
        );
        // the ring topology is honoured on every logged migration
        for record in &outcome.migrations {
            assert_eq!(record.to, (record.from + 1) % 4);
        }
        let print = (fingerprint(&outcome), outcome.migrations.clone());
        match &reference {
            None => reference = Some(print),
            Some(expected) => {
                assert_eq!(
                    expected.1, print.1,
                    "migrant sequence diverged at {threads} evaluators"
                );
                assert_eq!(
                    expected.0, print.0,
                    "outcome diverged at {threads} evaluators"
                );
            }
        }
    }
}

#[test]
fn deterministic_cache_counters_are_thread_count_invariant() {
    // fitness-cache and shared-leaf counters are resolved on one thread per
    // generation by design, so unlike the value cache they must agree too
    let dataset = DatasetKind::Restaurant.generate(0.2, 3);
    let mut reference = None;
    for threads in [1, 4] {
        let outcome = GenLink::new(parity_config(threads)).learn(
            &dataset.source,
            &dataset.target,
            &dataset.links,
            5,
        );
        let counters: Vec<(u64, u64, u64, u64)> = outcome
            .history
            .iter()
            .map(|stats| {
                let cache = stats.cache.expect("GenLink reports cache stats");
                (
                    cache.fitness_hits,
                    cache.fitness_misses,
                    cache.leaf_reuse_hits,
                    cache.leaf_reuse_misses,
                )
            })
            .collect();
        let last = counters.last().expect("non-empty history");
        assert!(last.2 > 0, "leaf reuse must occur: {last:?}");
        match &reference {
            None => reference = Some(counters),
            Some(expected) => assert_eq!(expected, &counters, "threads={threads}"),
        }
    }
}
