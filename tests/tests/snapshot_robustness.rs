//! Hostile-input robustness of the snapshot codec: `LinkService::restore`
//! fed truncated, bit-flipped and length-field-inflated snapshots must
//! always return a `SnapshotError` — never panic, and never allocate
//! unboundedly on the say-so of a corrupt length prefix (the reader caps
//! preallocation and fills strings in bounded chunks).
//!
//! The allocation claim is enforced for real: this test binary installs a
//! counting global allocator and asserts the high-water mark of every
//! hostile restore stays far below what the corrupt length fields demand.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;

use linkdisc_datasets::DatasetKind;
use linkdisc_matching::{LinkService, ServiceOptions};
use linkdisc_rule::{
    aggregation, compare, property, transform, AggregationFunction, DistanceFunction, LinkageRule,
    TransformFunction,
};
use proptest::prelude::*;

struct CountingAllocator;

static CURRENT: AtomicUsize = AtomicUsize::new(0);
static PEAK: AtomicUsize = AtomicUsize::new(0);

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let now = CURRENT.fetch_add(layout.size(), Ordering::Relaxed) + layout.size();
        PEAK.fetch_max(now, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        CURRENT.fetch_sub(layout.size(), Ordering::Relaxed);
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static ALLOCATOR: CountingAllocator = CountingAllocator;

/// Upper bound on the allocation high-water mark any hostile restore may
/// reach.  Generous (the valid snapshot is well under 8 MiB; concurrent
/// tests in this binary share the counter) yet far below the gigabytes a
/// trusted corrupt length field would demand.
const ALLOC_CEILING: usize = 64 << 20;

fn rule() -> LinkageRule {
    aggregation(
        AggregationFunction::Min,
        vec![
            compare(
                transform(TransformFunction::LowerCase, vec![property("name")]),
                transform(TransformFunction::LowerCase, vec![property("name")]),
                DistanceFunction::Levenshtein,
                2.0,
            ),
            compare(
                transform(TransformFunction::DigitsOnly, vec![property("phone")]),
                transform(TransformFunction::DigitsOnly, vec![property("phone")]),
                DistanceFunction::Levenshtein,
                1.0,
            ),
        ],
    )
    .into()
}

struct Fixture {
    dataset: linkdisc_datasets::Dataset,
    bytes: Vec<u8>,
}

fn fixture() -> &'static Fixture {
    static FIXTURE: OnceLock<Fixture> = OnceLock::new();
    FIXTURE.get_or_init(|| {
        let dataset = DatasetKind::Restaurant.generate(0.15, 4);
        let service = LinkService::build(
            rule(),
            dataset.source.schema(),
            &dataset.target,
            ServiceOptions::default(),
        )
        .unwrap();
        let mut bytes = Vec::new();
        service.save_snapshot(&mut bytes).unwrap();
        Fixture { dataset, bytes }
    })
}

/// Restores hostile bytes, asserting clean typed failure and a bounded
/// allocation high-water mark.
fn assert_rejected(bytes: &[u8], what: &str) {
    let fixture = fixture();
    let baseline = CURRENT.load(Ordering::Relaxed);
    PEAK.store(baseline, Ordering::Relaxed);
    let outcome = LinkService::restore(rule(), fixture.dataset.source.schema(), bytes);
    let peak = PEAK.load(Ordering::Relaxed).saturating_sub(baseline);
    assert!(
        outcome.is_err(),
        "{what}: hostile snapshot must be rejected"
    );
    assert!(
        peak < ALLOC_CEILING,
        "{what}: restore allocated {peak} bytes on hostile input"
    );
}

#[test]
fn the_pristine_snapshot_restores() {
    let fixture = fixture();
    let restored =
        LinkService::restore(rule(), fixture.dataset.source.schema(), &fixture.bytes[..]).unwrap();
    assert_eq!(restored.len(), fixture.dataset.target.entities().len());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Every proper prefix fails cleanly (a snapshot, unlike the log, has
    /// no tolerated torn state: it is written to a tmp file and renamed).
    #[test]
    fn truncated_snapshots_error_cleanly(fraction in 0usize..10_000) {
        let bytes = &fixture().bytes;
        let cut = fraction * bytes.len() / 10_000;
        assert_rejected(&bytes[..cut], &format!("truncated to {cut}"));
    }

    /// A single flipped bit anywhere is detected — every byte sits under
    /// the magic check, the version compare, or the payload checksum.
    #[test]
    fn bit_flipped_snapshots_error_cleanly(fraction in 0usize..10_000, bit in 0usize..8) {
        let bytes = &fixture().bytes;
        let at = fraction * (bytes.len() - 1) / 10_000;
        let mut hostile = bytes.clone();
        hostile[at] ^= 1 << bit;
        assert_rejected(&hostile, &format!("bit {bit} flipped at {at}"));
    }

    /// Inflated length prefixes (the classic decompression-bomb shape) are
    /// rejected without honouring the demanded allocation: u32 fields
    /// overwritten with up-to-4GiB values cost at most a bounded chunk.
    #[test]
    fn inflated_length_fields_error_cleanly(
        fraction in 0usize..10_000,
        huge_index in 0usize..4,
    ) {
        let bytes = &fixture().bytes;
        let at = fraction * (bytes.len() - 4) / 10_000;
        let huge: u32 = [u32::MAX, i32::MAX as u32, 1 << 24, 0xdead_beef][huge_index];
        let mut hostile = bytes.clone();
        hostile[at..at + 4].copy_from_slice(&huge.to_le_bytes());
        assert_rejected(&hostile, &format!("u32 {huge:#x} written at {at}"));
    }

    /// Truncation and inflation combined: a huge length prefix right at
    /// the cut can demand far more than the remaining input holds.
    #[test]
    fn truncated_and_inflated_snapshots_error_cleanly(fraction in 0usize..10_000) {
        let bytes = &fixture().bytes;
        let cut = (fraction * bytes.len() / 10_000).max(16);
        let mut hostile = bytes[..cut].to_vec();
        let at = cut - 4;
        hostile[at..].copy_from_slice(&u32::MAX.to_le_bytes());
        assert_rejected(&hostile, &format!("cut {cut} with inflated tail"));
    }
}
