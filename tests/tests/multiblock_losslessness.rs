//! Property test: MultiBlock candidate generation is lossless.
//!
//! For random rules (drawn from the same generator the GP learner uses, so
//! transforms, all distance measures and nested aggregations are exercised)
//! over random noisy datasets:
//!
//! 1. the candidate set of every source entity is a **superset of its true
//!    matches** under the rule (pairs the full cross product links are never
//!    pruned), and
//! 2. the engine's indexed run produces **exactly** the links of the
//!    exhaustive run.

use genlink::random::RandomRuleGenerator;
use genlink::seeding::SeedingConfig;
use genlink::{find_compatible_properties, RepresentationMode};
use linkdisc_datasets::DatasetKind;
use linkdisc_entity::EntityPair;
use linkdisc_matching::{MatchingEngine, MatchingOptions, MultiBlockIndex};
use linkdisc_rule::{IndexingPlan, LinkageRule, ValueCache};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn random_rules(kind: DatasetKind, scale: f64, seed: u64, count: usize) -> RuleWorkload {
    let dataset = kind.generate(scale, seed);
    let pairs = find_compatible_properties(
        &dataset.source,
        &dataset.target,
        &dataset.links,
        &SeedingConfig::default(),
    );
    assert!(!pairs.is_empty(), "seeding found no compatible properties");
    let generator = RandomRuleGenerator::new(pairs, RepresentationMode::Full);
    let mut rng = StdRng::seed_from_u64(seed.wrapping_add(991));
    let rules = (0..count).map(|_| generator.generate(&mut rng)).collect();
    RuleWorkload { dataset, rules }
}

struct RuleWorkload {
    dataset: linkdisc_datasets::Dataset,
    rules: Vec<LinkageRule>,
}

/// Direct superset check against the index: every pair the rule links must
/// survive candidate generation.
fn assert_candidates_cover_links(workload: &RuleWorkload, link_threshold: f64) {
    for rule in &workload.rules {
        let plan = IndexingPlan::lower(
            rule,
            workload.dataset.source.schema(),
            workload.dataset.target.schema(),
            link_threshold,
        );
        let cache = ValueCache::new();
        let index = MultiBlockIndex::build(plan, &workload.dataset.target, &cache);
        for source_entity in workload.dataset.source.entities() {
            let candidates = index.candidate_positions(source_entity, &cache);
            for (position, target_entity) in workload.dataset.target.entities().iter().enumerate() {
                let score = rule.evaluate(&EntityPair::new(source_entity, target_entity));
                if score >= link_threshold {
                    assert!(
                        candidates.binary_search(&position).is_ok(),
                        "true match {} -> {} (score {score:.4} ≥ {link_threshold}) was pruned \
                         by rule {}",
                        source_entity.id(),
                        target_entity.id(),
                        linkdisc_rule::print_rule(rule),
                    );
                }
            }
        }
    }
}

/// End-to-end check through the engine: indexed and exhaustive runs agree
/// exactly (same links, same scores).
fn assert_engine_paths_agree(workload: &RuleWorkload, link_threshold: f64) {
    for rule in &workload.rules {
        let blocked = MatchingEngine::new(rule.clone())
            .with_options(MatchingOptions {
                threads: 2,
                link_threshold,
                ..MatchingOptions::default()
            })
            .run(&workload.dataset.source, &workload.dataset.target);
        let full = MatchingEngine::new(rule.clone())
            .with_options(MatchingOptions {
                use_blocking: false,
                threads: 2,
                link_threshold,
                ..MatchingOptions::default()
            })
            .run(&workload.dataset.source, &workload.dataset.target);
        assert_eq!(
            blocked.links,
            full.links,
            "indexed and exhaustive links diverge for rule {}",
            linkdisc_rule::print_rule(rule),
        );
        assert!(blocked.evaluated_pairs <= full.evaluated_pairs);
    }
}

#[test]
fn multiblock_candidates_cover_all_true_matches() {
    for seed in 0..4 {
        let workload = random_rules(DatasetKind::Restaurant, 0.08, seed, 6);
        assert_candidates_cover_links(&workload, 0.5);
    }
    for seed in 0..2 {
        let workload = random_rules(DatasetKind::Cora, 0.04, seed, 6);
        assert_candidates_cover_links(&workload, 0.5);
    }
}

#[test]
fn indexed_and_exhaustive_links_are_identical() {
    for seed in 0..4 {
        let workload = random_rules(DatasetKind::Restaurant, 0.08, seed, 6);
        assert_engine_paths_agree(&workload, 0.5);
    }
    for seed in 0..2 {
        let workload = random_rules(DatasetKind::LinkedMdb, 0.05, seed, 4);
        assert_engine_paths_agree(&workload, 0.5);
    }
}

#[test]
fn losslessness_holds_for_non_default_link_thresholds() {
    let workload = random_rules(DatasetKind::Restaurant, 0.08, 11, 5);
    for link_threshold in [0.3, 0.7, 0.9] {
        assert_candidates_cover_links(&workload, link_threshold);
        assert_engine_paths_agree(&workload, link_threshold);
    }
}
