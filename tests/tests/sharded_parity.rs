//! Parity of the sharded serving store with the unsharded one: the router
//! sends every id to exactly one stable shard, `shards = 1` is
//! byte-identical to the unsharded path (snapshots, versions, recovery),
//! `shards = N` answers every query identically on real datasets, and the
//! parallel batch ingest is invariant in the worker thread count.

use std::path::PathBuf;

use linkdisc_datasets::DatasetKind;
use linkdisc_entity::Entity;
use linkdisc_matching::{
    DurabilityOptions, DurableService, ServiceOptions, ServiceWriter, ShardRouter,
    ShardedDurableService, ShardedService,
};
use linkdisc_rule::{
    aggregation, compare, property, transform, AggregationFunction, DistanceFunction, LinkageRule,
    TransformFunction,
};

fn restaurant_rule() -> LinkageRule {
    aggregation(
        AggregationFunction::Min,
        vec![
            compare(
                transform(TransformFunction::LowerCase, vec![property("name")]),
                transform(TransformFunction::LowerCase, vec![property("name")]),
                DistanceFunction::Levenshtein,
                2.0,
            ),
            compare(
                transform(TransformFunction::DigitsOnly, vec![property("phone")]),
                transform(TransformFunction::DigitsOnly, vec![property("phone")]),
                DistanceFunction::Levenshtein,
                1.0,
            ),
        ],
    )
    .into()
}

fn cora_rule() -> LinkageRule {
    compare(
        transform(TransformFunction::LowerCase, vec![property("title")]),
        transform(TransformFunction::LowerCase, vec![property("title")]),
        DistanceFunction::Levenshtein,
        3.0,
    )
    .into()
}

/// Single-threaded build so snapshots are comparable across runs without
/// depending on the host's core count.
fn options() -> ServiceOptions {
    ServiceOptions {
        threads: 1,
        ..ServiceOptions::default()
    }
}

fn fresh_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("linkdisc-sharded-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn snapshot(writer: &ServiceWriter) -> Vec<u8> {
    let mut bytes = Vec::new();
    writer.save_snapshot(&mut bytes).unwrap();
    bytes
}

/// Deterministic churn over the target ids: remove a stride of entities,
/// re-insert every other one (slot recycling), then batch-ingest the rest
/// back.
fn churn_ops(removes: usize) -> Vec<(u8, usize)> {
    let mut ops: Vec<(u8, usize)> = (0..removes).map(|at| (0, at)).collect();
    ops.extend((0..removes).step_by(2).map(|at| (1, at)));
    ops.push((2, removes));
    ops
}

fn apply_sharded(service: &mut ShardedService, target: &[Entity], op: (u8, usize)) {
    match op {
        (0, at) => assert!(service.remove(target[at].id())),
        (1, at) => {
            service.insert(&target[at]).unwrap();
        }
        (_, removes) => {
            let leftovers: Vec<Entity> = (0..removes)
                .skip(1)
                .step_by(2)
                .map(|at| target[at].clone())
                .collect();
            assert_eq!(service.ingest(&leftovers).unwrap(), leftovers.len());
        }
    }
}

fn apply_plain(writer: &mut ServiceWriter, target: &[Entity], op: (u8, usize)) {
    match op {
        (0, at) => assert!(writer.remove(target[at].id())),
        (1, at) => {
            writer.insert(&target[at]).unwrap();
        }
        (_, removes) => {
            let leftovers: Vec<Entity> = (0..removes)
                .skip(1)
                .step_by(2)
                .map(|at| target[at].clone())
                .collect();
            assert_eq!(writer.ingest(&leftovers).unwrap(), leftovers.len());
        }
    }
}

#[test]
fn every_id_maps_to_exactly_one_shard_and_routing_is_stable() {
    let dataset = DatasetKind::Restaurant.generate(0.2, 11);
    for shards in [1, 2, 4, 7] {
        let router = ShardRouter::new(shards);
        for entity in dataset.target.entities() {
            let routed = router.route(entity.id());
            assert!(routed < shards, "route must land inside the shard range");
            // a fresh router with the same count agrees: routing is a pure
            // function of (id, shards), never of construction history
            assert_eq!(ShardRouter::new(shards).route(entity.id()), routed);
        }
    }
}

#[test]
fn routing_is_stable_across_insert_remove_and_recycle() {
    let dataset = DatasetKind::Restaurant.generate(0.25, 3);
    let target = dataset.target.entities().to_vec();
    let mut service = ShardedService::build(
        restaurant_rule(),
        dataset.source.schema(),
        &dataset.target,
        4,
        options(),
    )
    .unwrap();
    let router = service.router();
    let homes: Vec<usize> = target.iter().map(|e| router.route(e.id())).collect();

    for round in 0..3 {
        for (at, entity) in target.iter().enumerate().take(10) {
            assert!(service.remove(entity.id()), "round {round}");
            // after the remove, no shard serves the id
            assert!(!service.contains(entity.id()));
            let slot = service.insert(entity).unwrap();
            assert_eq!(
                slot.shard as usize, homes[at],
                "recycled insert must land on the same shard"
            );
            assert!(service.contains(entity.id()));
        }
    }
    // every served id is found in exactly one shard
    let reader = service.reader();
    for (at, entity) in target.iter().enumerate() {
        let holding: Vec<usize> = (0..4)
            .filter(|&shard| {
                let shard_reader = reader.shard(shard);
                (0..shard_reader.len() as u32 + 16)
                    .filter_map(|position| shard_reader.at(position))
                    .any(|held| held.id() == entity.id())
            })
            .collect();
        assert_eq!(holding, vec![homes[at]], "entity {}", entity.id());
    }
}

#[test]
fn one_shard_is_byte_identical_to_the_unsharded_writer() {
    let dataset = DatasetKind::Restaurant.generate(0.25, 7);
    let target = dataset.target.entities().to_vec();
    let mut sharded = ShardedService::build(
        restaurant_rule(),
        dataset.source.schema(),
        &dataset.target,
        1,
        options(),
    )
    .unwrap();
    let mut plain = ServiceWriter::build(
        restaurant_rule(),
        dataset.source.schema(),
        &dataset.target,
        options(),
    )
    .unwrap();
    assert_eq!(
        snapshot(&sharded.shards()[0]),
        snapshot(&plain),
        "construction must be identical"
    );
    for &op in &churn_ops(12) {
        apply_sharded(&mut sharded, &target, op);
        apply_plain(&mut plain, &target, op);
        assert_eq!(
            snapshot(&sharded.shards()[0]),
            snapshot(&plain),
            "snapshots diverged after op {op:?}"
        );
        assert_eq!(sharded.versions(), vec![plain.version()]);
    }
    for probe in dataset.source.entities().iter().take(20) {
        assert_eq!(sharded.query(probe), plain.reader().query(probe));
    }
}

#[test]
fn sharded_queries_equal_unsharded_on_restaurant_and_cora() {
    let workloads = [
        (DatasetKind::Restaurant, restaurant_rule(), 0.3, 5),
        (DatasetKind::Cora, cora_rule(), 0.05, 17),
    ];
    for (kind, rule, scale, seed) in workloads {
        let dataset = kind.generate(scale, seed);
        let target = dataset.target.entities().to_vec();
        for shards in [2, 4] {
            let mut unsharded = ShardedService::build(
                rule.clone(),
                dataset.source.schema(),
                &dataset.target,
                1,
                options(),
            )
            .unwrap();
            let mut sharded = ShardedService::build(
                rule.clone(),
                dataset.source.schema(),
                &dataset.target,
                shards,
                options(),
            )
            .unwrap();
            assert_eq!(sharded.len(), unsharded.len());
            for probe in dataset.source.entities() {
                assert_eq!(
                    sharded.query(probe),
                    unsharded.query(probe),
                    "{kind:?} shards={shards} probe={}",
                    probe.id()
                );
            }
            // …and still equal after identical churn on both
            for &op in &churn_ops(8) {
                apply_sharded(&mut sharded, &target, op);
                apply_sharded(&mut unsharded, &target, op);
            }
            for probe in dataset.source.entities().iter().take(30) {
                assert_eq!(
                    sharded.query(probe),
                    unsharded.query(probe),
                    "{kind:?} shards={shards} post-churn probe={}",
                    probe.id()
                );
            }
        }
    }
}

#[test]
fn parallel_ingest_is_invariant_in_the_thread_count() {
    let dataset = DatasetKind::Restaurant.generate(0.3, 29);
    let mut per_thread_snapshots: Vec<Vec<Vec<u8>>> = Vec::new();
    for threads in [1, 2, 8] {
        let mut service = ShardedService::empty(
            restaurant_rule(),
            dataset.source.schema(),
            dataset.target.schema(),
            4,
            ServiceOptions {
                threads,
                ..ServiceOptions::default()
            },
        );
        assert_eq!(
            service.ingest(dataset.target.entities()).unwrap(),
            dataset.target.len()
        );
        per_thread_snapshots.push(service.shards().iter().map(snapshot).collect());
    }
    assert_eq!(
        per_thread_snapshots[0], per_thread_snapshots[1],
        "1 vs 2 ingest threads"
    );
    assert_eq!(
        per_thread_snapshots[1], per_thread_snapshots[2],
        "2 vs 8 ingest threads"
    );
}

#[test]
fn sharded_durable_round_trip_recovers_every_shard() {
    let dataset = DatasetKind::Restaurant.generate(0.25, 13);
    let target = dataset.target.entities().to_vec();
    let dir = fresh_dir("roundtrip");
    let mut durable = ShardedDurableService::create(
        &dir,
        restaurant_rule(),
        dataset.source.schema(),
        &dataset.target,
        3,
        options(),
        DurabilityOptions::default(),
    )
    .unwrap();
    assert!(
        matches!(
            ShardedDurableService::create(
                &dir,
                restaurant_rule(),
                dataset.source.schema(),
                &dataset.target,
                3,
                options(),
                DurabilityOptions::default(),
            ),
            Err(linkdisc_matching::DurableError::AlreadyDurable(_))
        ),
        "creating over existing shard state must be refused"
    );
    for entity in target.iter().take(8) {
        assert!(durable.remove(entity.id()).unwrap());
    }
    let reinserts: Vec<Entity> = (0..8).step_by(2).map(|at| target[at].clone()).collect();
    assert_eq!(durable.ingest(&reinserts).unwrap(), reinserts.len());
    let live: Vec<Vec<u8>> = durable
        .shards()
        .iter()
        .map(|shard| snapshot(shard.writer()))
        .collect();
    drop(durable); // crash

    let (recovered, reports) = ShardedDurableService::recover(
        &dir,
        restaurant_rule(),
        dataset.source.schema(),
        DurabilityOptions::default(),
    )
    .unwrap();
    assert_eq!(reports.len(), 3, "one recovery report per shard");
    let replayed: u64 = reports.iter().map(|report| report.replayed_epochs).sum();
    // 8 removes + per-shard ingest records (one per shard the batch touched)
    assert!(replayed >= 8, "acknowledged epochs replay: {reports:?}");
    let back: Vec<Vec<u8>> = recovered
        .shards()
        .iter()
        .map(|shard| snapshot(shard.writer()))
        .collect();
    assert_eq!(live, back, "recovered shards must match the live state");

    // the recovered store keeps serving and mutating
    let reader = recovered.reader();
    let in_memory = ShardedService::build(
        restaurant_rule(),
        dataset.source.schema(),
        &dataset.target,
        3,
        options(),
    )
    .map(|mut service| {
        for entity in target.iter().take(8) {
            assert!(service.remove(entity.id()));
        }
        service.ingest(&reinserts).unwrap();
        service
    })
    .unwrap();
    for probe in dataset.source.entities().iter().take(25) {
        assert_eq!(reader.query(probe), in_memory.query(probe));
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn one_shard_durable_recovery_is_byte_identical_to_unsharded() {
    let dataset = DatasetKind::Restaurant.generate(0.2, 19);
    let target = dataset.target.entities().to_vec();
    let sharded_dir = fresh_dir("one-shard");
    let plain_dir = fresh_dir("plain");

    let mut sharded = ShardedDurableService::create(
        &sharded_dir,
        restaurant_rule(),
        dataset.source.schema(),
        &dataset.target,
        1,
        options(),
        DurabilityOptions::default(),
    )
    .unwrap();
    let mut plain = DurableService::create(
        &plain_dir,
        restaurant_rule(),
        dataset.source.schema(),
        &dataset.target,
        options(),
        DurabilityOptions::default(),
    )
    .unwrap();
    for entity in target.iter().take(6) {
        assert!(sharded.remove(entity.id()).unwrap());
        assert!(plain.remove(entity.id()).unwrap());
    }
    drop(sharded);
    drop(plain); // crash both

    let (sharded_back, reports) = ShardedDurableService::recover(
        &sharded_dir,
        restaurant_rule(),
        dataset.source.schema(),
        DurabilityOptions::default(),
    )
    .unwrap();
    let (plain_back, plain_report) = DurableService::recover(
        &plain_dir,
        restaurant_rule(),
        dataset.source.schema(),
        DurabilityOptions::default(),
    )
    .unwrap();
    assert_eq!(reports, vec![plain_report], "identical recovery reports");
    assert_eq!(
        snapshot(sharded_back.shards()[0].writer()),
        snapshot(plain_back.writer()),
        "one-shard recovery must be byte-identical to the unsharded service"
    );
    let _ = std::fs::remove_dir_all(&sharded_dir);
    let _ = std::fs::remove_dir_all(&plain_dir);
}
