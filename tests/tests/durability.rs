//! Recovery semantics of the crash-safe serving layer, without fault
//! injection: these tests damage the on-disk files directly (truncation,
//! bit flips, deleted checkpoints) and assert the documented damage model —
//! torn tails are tolerated, bit rot surfaces as a typed error naming the
//! salvageable prefix, a corrupt checkpoint falls back one generation, and
//! a clean recovery is bit-identical to a sequential rebuild.
//!
//! (The kill-at-every-failpoint harness lives in the matching crate's
//! `fault_injection` test, behind the `failpoints` feature.)

use std::path::{Path, PathBuf};

use genlink::random::RandomRuleGenerator;
use genlink::seeding::SeedingConfig;
use genlink::{find_compatible_properties, RepresentationMode};
use linkdisc_datasets::DatasetKind;
use linkdisc_entity::Entity;
use linkdisc_matching::{
    DurabilityOptions, DurableService, RecoveryError, ServiceOptions, ServiceWriter,
};
use linkdisc_rule::{
    aggregation, compare, property, transform, AggregationFunction, DistanceFunction, LinkageRule,
    TransformFunction,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn restaurant_rule() -> LinkageRule {
    aggregation(
        AggregationFunction::Min,
        vec![
            compare(
                transform(TransformFunction::LowerCase, vec![property("name")]),
                transform(TransformFunction::LowerCase, vec![property("name")]),
                DistanceFunction::Levenshtein,
                2.0,
            ),
            compare(
                transform(TransformFunction::DigitsOnly, vec![property("phone")]),
                transform(TransformFunction::DigitsOnly, vec![property("phone")]),
                DistanceFunction::Levenshtein,
                1.0,
            ),
        ],
    )
    .into()
}

/// Single-threaded build so snapshots are comparable across runs without
/// depending on the host's core count.
fn options() -> ServiceOptions {
    ServiceOptions {
        threads: 1,
        ..ServiceOptions::default()
    }
}

fn fresh_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("linkdisc-durable-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn copy_dir(from: &Path, to: &Path) {
    let _ = std::fs::remove_dir_all(to);
    std::fs::create_dir_all(to).unwrap();
    for entry in std::fs::read_dir(from).unwrap() {
        let entry = entry.unwrap();
        std::fs::copy(entry.path(), to.join(entry.file_name())).unwrap();
    }
}

/// The newest `wal-*.log` in a durable directory.
fn newest_wal(dir: &Path) -> PathBuf {
    let mut wals: Vec<PathBuf> = std::fs::read_dir(dir)
        .unwrap()
        .map(|entry| entry.unwrap().path())
        .filter(|path| {
            let name = path.file_name().unwrap().to_str().unwrap();
            name.starts_with("wal-") && name.ends_with(".log")
        })
        .collect();
    wals.sort();
    wals.pop().expect("a durable directory always has a log")
}

fn newest_checkpoint(dir: &Path) -> PathBuf {
    let mut checkpoints: Vec<PathBuf> = std::fs::read_dir(dir)
        .unwrap()
        .map(|entry| entry.unwrap().path())
        .filter(|path| {
            let name = path.file_name().unwrap().to_str().unwrap();
            name.starts_with("checkpoint-") && name.ends_with(".snap")
        })
        .collect();
    checkpoints.sort();
    checkpoints.pop().expect("a checkpoint exists")
}

fn snapshot(writer: &ServiceWriter) -> Vec<u8> {
    let mut bytes = Vec::new();
    writer.save_snapshot(&mut bytes).unwrap();
    bytes
}

/// A deterministic churn script over the target ids: remove the first
/// `removes` entities, then re-insert every other one (slot recycling).
fn churn(removes: usize) -> Vec<(bool, usize)> {
    let mut script: Vec<(bool, usize)> = (0..removes).map(|at| (false, at)).collect();
    script.extend((0..removes).step_by(2).map(|at| (true, at)));
    script
}

fn apply_durable(service: &mut DurableService, target: &[Entity], op: (bool, usize)) {
    match op {
        (false, at) => {
            assert!(service.remove(target[at].id()).unwrap());
        }
        (true, at) => {
            service.insert(&target[at]).unwrap();
        }
    }
}

fn apply_plain(writer: &mut ServiceWriter, target: &[Entity], op: (bool, usize)) {
    match op {
        (false, at) => {
            assert!(writer.remove(target[at].id()));
        }
        (true, at) => {
            writer.insert(&target[at]).unwrap();
        }
    }
}

#[test]
fn recovery_is_bit_identical_to_a_sequential_rebuild() {
    let dataset = DatasetKind::Restaurant.generate(0.25, 9);
    let target = dataset.target.entities().to_vec();
    let script = churn(12);
    let dir = fresh_dir("replay");

    let mut service = DurableService::create(
        &dir,
        restaurant_rule(),
        dataset.source.schema(),
        &dataset.target,
        options(),
        DurabilityOptions::default(),
    )
    .unwrap();
    assert!(
        matches!(
            DurableService::create(
                &dir,
                restaurant_rule(),
                dataset.source.schema(),
                &dataset.target,
                options(),
                DurabilityOptions::default(),
            ),
            Err(linkdisc_matching::DurableError::AlreadyDurable(_))
        ),
        "creating over existing durable state must be refused"
    );
    for &op in &script {
        apply_durable(&mut service, &target, op);
    }
    let live = snapshot(service.writer());
    drop(service); // crash

    // the oracle: a fresh writer applying the same acknowledged sequence
    let mut shadow = ServiceWriter::build(
        restaurant_rule(),
        dataset.source.schema(),
        &dataset.target,
        options(),
    )
    .unwrap();
    for &op in &script {
        apply_plain(&mut shadow, &target, op);
    }
    assert_eq!(live, snapshot(&shadow), "durable writer drifted from plain");

    let (recovered, report) = DurableService::recover(
        &dir,
        restaurant_rule(),
        dataset.source.schema(),
        DurabilityOptions::default(),
    )
    .unwrap();
    assert_eq!(report.replayed_epochs, script.len() as u64);
    assert_eq!(report.fallback_generations, 0);
    assert_eq!(report.torn_tail_bytes, 0);
    assert_eq!(
        snapshot(recovered.writer()),
        snapshot(&shadow),
        "recovered state must be bit-identical to the sequential rebuild"
    );
    // and behaviourally identical: every probe query agrees
    let reader = recovered.reader();
    let shadow_reader = shadow.reader();
    for probe in dataset.source.entities().iter().take(20) {
        assert_eq!(reader.query(probe), shadow_reader.query(probe));
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn recovering_an_empty_directory_is_a_typed_error() {
    let dir = fresh_dir("empty");
    std::fs::create_dir_all(&dir).unwrap();
    let dataset = DatasetKind::Restaurant.generate(0.1, 3);
    let outcome = DurableService::recover(
        &dir,
        restaurant_rule(),
        dataset.source.schema(),
        DurabilityOptions::default(),
    );
    assert!(matches!(outcome, Err(RecoveryError::NoCheckpoint(_))));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn torn_log_tails_are_tolerated_at_every_cut() {
    let dataset = DatasetKind::Restaurant.generate(0.15, 5);
    let target = dataset.target.entities().to_vec();
    let script = churn(4);
    let dir = fresh_dir("torn-base");

    // build the baseline: a durable run plus the oracle snapshot after
    // every prefix of the script
    let mut oracle = Vec::new();
    {
        let mut service = DurableService::create(
            &dir,
            restaurant_rule(),
            dataset.source.schema(),
            &dataset.target,
            options(),
            DurabilityOptions::default(),
        )
        .unwrap();
        let mut shadow = ServiceWriter::build(
            restaurant_rule(),
            dataset.source.schema(),
            &dataset.target,
            options(),
        )
        .unwrap();
        oracle.push(snapshot(&shadow));
        for &op in &script {
            apply_durable(&mut service, &target, op);
            apply_plain(&mut shadow, &target, op);
            oracle.push(snapshot(&shadow));
        }
    }

    let wal = newest_wal(&dir);
    let bytes = std::fs::read(&wal).unwrap();
    let work = fresh_dir("torn-cut");
    // cut the log at every byte of its back half: recovery must never
    // panic, never error, and always land on some acknowledged prefix
    let mut prefixes_seen = std::collections::HashSet::new();
    for cut in (bytes.len() / 2..=bytes.len()).rev() {
        copy_dir(&dir, &work);
        let cut_wal = newest_wal(&work);
        std::fs::write(&cut_wal, &bytes[..cut]).unwrap();
        let (recovered, report) = DurableService::recover(
            &work,
            restaurant_rule(),
            dataset.source.schema(),
            DurabilityOptions::default(),
        )
        .unwrap_or_else(|err| panic!("cut at {cut}/{} must recover: {err}", bytes.len()));
        let got = snapshot(recovered.writer());
        let matched = oracle
            .iter()
            .position(|expected| *expected == got)
            .unwrap_or_else(|| panic!("cut at {cut} recovered to a state outside the history"));
        assert_eq!(
            report.replayed_epochs, matched as u64,
            "cut at {cut}: replay count must match the recovered prefix"
        );
        prefixes_seen.insert(matched);
    }
    assert!(
        prefixes_seen.len() > 2,
        "the cuts must actually produce different acknowledged prefixes"
    );
    let _ = std::fs::remove_dir_all(&dir);
    let _ = std::fs::remove_dir_all(&work);
}

#[test]
fn mid_log_bit_flips_surface_as_typed_errors_never_panics() {
    let dataset = DatasetKind::Restaurant.generate(0.15, 6);
    let target = dataset.target.entities().to_vec();
    let script = churn(6);
    let dir = fresh_dir("flip-base");
    {
        let mut service = DurableService::create(
            &dir,
            restaurant_rule(),
            dataset.source.schema(),
            &dataset.target,
            options(),
            DurabilityOptions::default(),
        )
        .unwrap();
        for &op in &script {
            apply_durable(&mut service, &target, op);
        }
    }
    let wal = newest_wal(&dir);
    let bytes = std::fs::read(&wal).unwrap();
    let work = fresh_dir("flip-work");
    for at in (0..bytes.len()).step_by(13) {
        for bit in [0, 5] {
            copy_dir(&dir, &work);
            let mut flipped = bytes.clone();
            flipped[at] ^= 1 << bit;
            std::fs::write(newest_wal(&work), &flipped).unwrap();
            let outcome = DurableService::recover(
                &work,
                restaurant_rule(),
                dataset.source.schema(),
                DurabilityOptions::default(),
            );
            // every byte of the log is covered by a check: a flip may never
            // be absorbed silently
            match outcome {
                Err(
                    RecoveryError::CorruptLog { .. }
                    | RecoveryError::CorruptCheckpoint { .. }
                    | RecoveryError::Mismatch(_),
                ) => {}
                Err(other) => panic!("flip at {at}.{bit}: unexpected error class {other}"),
                Ok(_) => panic!("flip at {at} bit {bit} was silently absorbed"),
            }
        }
    }
    let _ = std::fs::remove_dir_all(&dir);
    let _ = std::fs::remove_dir_all(&work);
}

#[test]
fn a_corrupt_latest_checkpoint_falls_back_one_generation() {
    let dataset = DatasetKind::Restaurant.generate(0.15, 7);
    let target = dataset.target.entities().to_vec();
    let script = churn(10);
    let dir = fresh_dir("fallback");
    // a tiny budget forces several compactions, so the directory holds a
    // current and a previous generation
    let budget = DurabilityOptions {
        log_budget_bytes: 512,
    };
    let generations = {
        let mut service = DurableService::create(
            &dir,
            restaurant_rule(),
            dataset.source.schema(),
            &dataset.target,
            options(),
            budget,
        )
        .unwrap();
        for &op in &script {
            apply_durable(&mut service, &target, op);
        }
        service.generation()
    };
    assert!(generations >= 2, "the budget must have forced compactions");

    // rot the newest checkpoint: recovery falls back to the previous
    // generation and replays its logs forward — losing nothing
    let checkpoint = newest_checkpoint(&dir);
    let mut bytes = std::fs::read(&checkpoint).unwrap();
    let at = bytes.len() / 2;
    bytes[at] ^= 0x10;
    std::fs::write(&checkpoint, &bytes).unwrap();

    let (recovered, report) =
        DurableService::recover(&dir, restaurant_rule(), dataset.source.schema(), budget).unwrap();
    assert_eq!(report.fallback_generations, 1);

    let mut shadow = ServiceWriter::build(
        restaurant_rule(),
        dataset.source.schema(),
        &dataset.target,
        options(),
    )
    .unwrap();
    for &op in &script {
        apply_plain(&mut shadow, &target, op);
    }
    assert_eq!(
        snapshot(recovered.writer()),
        snapshot(&shadow),
        "fallback recovery must still reproduce every acknowledged epoch"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn recovery_matches_rebuild_for_random_learned_rule_shapes() {
    let dataset = DatasetKind::Restaurant.generate(0.15, 11);
    let target = dataset.target.entities().to_vec();
    let pairs = find_compatible_properties(
        &dataset.source,
        &dataset.target,
        &dataset.links,
        &SeedingConfig::default(),
    );
    assert!(!pairs.is_empty(), "seeding found no compatible properties");
    let generator = RandomRuleGenerator::new(pairs, RepresentationMode::Full);
    for seed in [21u64, 22] {
        let mut rng = StdRng::seed_from_u64(seed);
        let rule = generator.generate(&mut rng);
        let dir = fresh_dir(&format!("random-{seed}"));
        let script = churn(8);
        {
            let mut service = match DurableService::create(
                &dir,
                rule.clone(),
                dataset.source.schema(),
                &dataset.target,
                options(),
                DurabilityOptions::default(),
            ) {
                Ok(service) => service,
                // a degenerate random rule (no indexable comparison) is not
                // this test's concern
                Err(err) => panic!("create failed for seed {seed}: {err}"),
            };
            for &op in &script {
                apply_durable(&mut service, &target, op);
            }
        }
        let (recovered, _) = DurableService::recover(
            &dir,
            rule.clone(),
            dataset.source.schema(),
            DurabilityOptions::default(),
        )
        .unwrap();
        let mut shadow =
            ServiceWriter::build(rule, dataset.source.schema(), &dataset.target, options())
                .unwrap();
        for &op in &script {
            apply_plain(&mut shadow, &target, op);
        }
        assert_eq!(
            snapshot(recovered.writer()),
            snapshot(&shadow),
            "seed {seed}: recovery must equal rebuild"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}

#[test]
fn recovering_with_the_wrong_rule_is_a_mismatch() {
    let dataset = DatasetKind::Restaurant.generate(0.1, 8);
    let dir = fresh_dir("wrong-rule");
    {
        DurableService::create(
            &dir,
            restaurant_rule(),
            dataset.source.schema(),
            &dataset.target,
            options(),
            DurabilityOptions::default(),
        )
        .unwrap();
    }
    let other: LinkageRule = compare(
        property("name"),
        property("name"),
        DistanceFunction::Jaccard,
        0.4,
    )
    .into();
    let outcome = DurableService::recover(
        &dir,
        other,
        dataset.source.schema(),
        DurabilityOptions::default(),
    );
    assert!(matches!(outcome, Err(RecoveryError::Mismatch(_))));
    let _ = std::fs::remove_dir_all(&dir);
}
