//! Cross-crate invariants of the rule representation: learned rules round-trip
//! through the DSL and evaluate identically, and their scores stay in [0, 1].

use genlink::{GenLink, GenLinkConfig};
use linkdisc_datasets::DatasetKind;
use linkdisc_entity::{EntityPair, ResolvedReferenceLinks};
use linkdisc_rule::{parse_rule, print_rule, render_rule};
use proptest::prelude::*;

fn learned_rule(seed: u64) -> (linkdisc_datasets::Dataset, linkdisc_rule::LinkageRule) {
    let dataset = DatasetKind::Restaurant.generate(0.2, seed);
    let mut config = GenLinkConfig::fast();
    config.gp.population_size = 50;
    config.gp.max_iterations = 8;
    let outcome =
        GenLink::new(config).learn(&dataset.source, &dataset.target, &dataset.links, seed);
    (dataset, outcome.rule)
}

#[test]
fn learned_rules_round_trip_through_the_dsl() {
    for seed in [1u64, 2, 3] {
        let (dataset, rule) = learned_rule(seed);
        let text = print_rule(&rule);
        let parsed = parse_rule(&text).unwrap_or_else(|e| panic!("cannot parse {text}: {e}"));
        assert_eq!(parsed, rule, "round trip changed the rule for seed {seed}");
        // and the re-parsed rule evaluates identically on every reference pair
        let resolved =
            ResolvedReferenceLinks::resolve(&dataset.links, &dataset.source, &dataset.target);
        for pair in resolved.positive().iter().chain(resolved.negative()) {
            assert_eq!(rule.evaluate(pair), parsed.evaluate(pair));
        }
    }
}

#[test]
fn learned_rules_render_without_panicking() {
    let (_, rule) = learned_rule(4);
    let rendered = render_rule(&rule);
    assert!(rendered.contains("Comparison"));
    assert!(rendered.lines().count() >= 3);
}

#[test]
fn rule_scores_stay_in_the_unit_interval() {
    let (dataset, rule) = learned_rule(5);
    for source_entity in dataset.source.entities().iter().take(20) {
        for target_entity in dataset.target.entities().iter().take(20) {
            let score = rule.evaluate(&EntityPair::new(source_entity, target_entity));
            assert!((0.0..=1.0).contains(&score), "score {score} out of range");
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The DSL grammar accepts what the printer produces for a variety of
    /// hand-built rules (weights, nesting, every function name).
    #[test]
    fn printed_rules_parse_back(
        threshold in 0.0f64..10.0,
        weight in 1u32..9,
        distance_index in 0usize..9,
        transform_index in 0usize..9,
        aggregation_index in 0usize..3,
    ) {
        use linkdisc_rule::{aggregation, compare, property, transform,
                            AggregationFunction, DistanceFunction, TransformFunction, LinkageRule};
        let distance = DistanceFunction::ALL[distance_index];
        let transformation = TransformFunction::ALL[transform_index];
        let aggregation_function = AggregationFunction::ALL[aggregation_index];
        let mut comparison = compare(
            transform(transformation, vec![property("source property")]),
            property("target:property"),
            distance,
            threshold,
        );
        comparison.set_weight(weight);
        let rule: LinkageRule = aggregation(aggregation_function, vec![comparison]).into();
        let text = print_rule(&rule);
        let parsed = parse_rule(&text).unwrap();
        prop_assert_eq!(parsed, rule);
    }
}
