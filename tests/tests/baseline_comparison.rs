//! Cross-crate comparison of GenLink against the Carvalho-style baseline on a
//! transformation-hungry data set (the paper's central claim on Cora).

use genlink::{GenLink, GenLinkConfig};
use linkdisc_baseline::{CarvalhoConfig, CarvalhoLearner};
use linkdisc_datasets::DatasetKind;
use linkdisc_evaluation::evaluate_rule_on_links;
use rand::rngs::StdRng;
use rand::SeedableRng;

#[test]
fn genlink_is_competitive_with_the_carvalho_baseline_on_cora() {
    let dataset = DatasetKind::Cora.generate(0.05, 41);
    let mut rng = StdRng::seed_from_u64(41);
    let (train, validation) = dataset.links.split_train_validation(0.5, &mut rng);

    let mut genlink_config = GenLinkConfig::fast();
    genlink_config.gp.population_size = 80;
    genlink_config.gp.max_iterations = 12;
    let genlink = GenLink::new(genlink_config).learn(&dataset.source, &dataset.target, &train, 41);
    let genlink_f1 =
        evaluate_rule_on_links(&genlink.rule, &validation, &dataset.source, &dataset.target)
            .f_measure();

    let mut carvalho_config = CarvalhoConfig::fast();
    carvalho_config.gp.population_size = 80;
    carvalho_config.gp.max_iterations = 12;
    let carvalho =
        CarvalhoLearner::new(carvalho_config).learn(&dataset.source, &dataset.target, &train, 41);
    let carvalho_f1 = carvalho
        .evaluate_on_links(&validation, &dataset.source, &dataset.target)
        .f_measure();

    // the paper's claim is that GenLink outperforms the expression-tree GP;
    // with the reduced search budget of a unit test we only require GenLink
    // not to be clearly worse, and both to produce usable rules
    assert!(genlink_f1 > 0.7, "GenLink F1 was {genlink_f1}");
    assert!(
        genlink_f1 + 0.10 >= carvalho_f1,
        "GenLink ({genlink_f1}) should not be clearly worse than Carvalho ({carvalho_f1})"
    );
}

#[test]
fn both_learners_are_deterministic_under_a_fixed_seed() {
    let dataset = DatasetKind::Restaurant.generate(0.2, 43);
    let mut config = GenLinkConfig::fast();
    config.gp.population_size = 40;
    config.gp.max_iterations = 5;
    let a = GenLink::new(config.clone()).learn(&dataset.source, &dataset.target, &dataset.links, 1);
    let b = GenLink::new(config).learn(&dataset.source, &dataset.target, &dataset.links, 1);
    assert_eq!(a.rule, b.rule);

    let mut carvalho_config = CarvalhoConfig::fast();
    carvalho_config.gp.population_size = 40;
    carvalho_config.gp.max_iterations = 5;
    let ca = CarvalhoLearner::new(carvalho_config.clone()).learn(
        &dataset.source,
        &dataset.target,
        &dataset.links,
        1,
    );
    let cb = CarvalhoLearner::new(carvalho_config).learn(
        &dataset.source,
        &dataset.target,
        &dataset.links,
        1,
    );
    assert_eq!(ca.expression, cb.expression);
}
