//! Property test: a multi-rule `LinkService` is observationally identical
//! to independent single-rule services — the shared leaf pool and the
//! one-store registry are pure optimisations.
//!
//! For random GP-generated rules over noisy datasets:
//!
//! 1. **N-rule == N singles** — an N-rule service fed by a seed-driven
//!    churn script answers `query_rule` for every registered name with
//!    exactly (bit-identical scores) the links of a single-rule service
//!    fed the same script, and `query_committee` merges those per-rule
//!    answers exactly,
//! 2. **Snapshots round-trip** — saving the multi-rule service and
//!    restoring it against a shuffled catalog reproduces every answer,
//!    and re-saving reproduces the bytes,
//! 3. **Register → deregister → re-register** is equivalent to never
//!    having dropped the rule: the re-registered rule answers like a
//!    service batch-built from the final entity set, and the leaf pool
//!    returns to its pre-drop footprint.

use genlink::random::RandomRuleGenerator;
use genlink::seeding::SeedingConfig;
use genlink::{find_compatible_properties, RepresentationMode};
use linkdisc_datasets::DatasetKind;
use linkdisc_matching::{CommitteeLink, LinkService, ScoredLink, ServiceOptions, DEFAULT_RULE};
use linkdisc_rule::LinkageRule;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeMap;

struct RuleWorkload {
    dataset: linkdisc_datasets::Dataset,
    rules: Vec<LinkageRule>,
}

fn random_rules(kind: DatasetKind, scale: f64, seed: u64, count: usize) -> RuleWorkload {
    let dataset = kind.generate(scale, seed);
    let pairs = find_compatible_properties(
        &dataset.source,
        &dataset.target,
        &dataset.links,
        &SeedingConfig::default(),
    );
    assert!(!pairs.is_empty(), "seeding found no compatible properties");
    let generator = RandomRuleGenerator::new(pairs, RepresentationMode::Full);
    let mut rng = StdRng::seed_from_u64(seed.wrapping_add(9341));
    let rules = (0..count).map(|_| generator.generate(&mut rng)).collect();
    RuleWorkload { dataset, rules }
}

/// A replayable churn script: the same ops drive the multi-rule service
/// and every independent single-rule shadow.
#[derive(Clone)]
enum ChurnOp {
    Ingest(usize, usize),
    Remove(usize),
    Insert(usize),
}

fn churn_script(target_len: usize, seed: u64) -> Vec<ChurnOp> {
    let mut rng = StdRng::seed_from_u64(seed.wrapping_add(613));
    let mut ops = Vec::new();
    let mut pending = Vec::new();
    let mut cursor = 0;
    while cursor < target_len {
        let span = rng.gen_range(1..=16).min(target_len - cursor);
        ops.push(ChurnOp::Ingest(cursor, cursor + span));
        cursor += span;
        if rng.gen_bool(0.4) {
            let victim = rng.gen_range(0..cursor);
            if !pending.contains(&victim) {
                ops.push(ChurnOp::Remove(victim));
                pending.push(victim);
            }
        }
    }
    for victim in pending {
        ops.push(ChurnOp::Insert(victim));
    }
    ops
}

fn apply_churn(service: &mut LinkService, target: &linkdisc_entity::DataSource, ops: &[ChurnOp]) {
    for op in ops {
        match op {
            ChurnOp::Ingest(from, to) => {
                service.ingest(&target.entities()[*from..*to]).unwrap();
            }
            ChurnOp::Remove(i) => {
                assert!(service.remove(target.entities()[*i].id()));
            }
            ChurnOp::Insert(i) => {
                service.insert(&target.entities()[*i]).unwrap();
            }
        }
    }
}

/// Registry names: the construction rule keeps `DEFAULT_RULE`, the rest
/// are registered under `rule-<i>`.
fn names(count: usize) -> Vec<String> {
    (0..count)
        .map(|i| {
            if i == 0 {
                DEFAULT_RULE.to_string()
            } else {
                format!("rule-{i}")
            }
        })
        .collect()
}

/// The committee answer recomputed from per-rule results, accumulating
/// score sums in registration order exactly as the service does — so the
/// mean is bit-identical, not merely close.
fn expected_committee(
    source: &linkdisc_entity::Entity,
    per_rule: &[Vec<ScoredLink>],
) -> Vec<CommitteeLink> {
    let mut tally: BTreeMap<&str, (usize, f64)> = BTreeMap::new();
    for links in per_rule {
        for link in links {
            let entry = tally.entry(link.target.as_str()).or_insert((0, 0.0));
            entry.0 += 1;
            entry.1 += link.score;
        }
    }
    let committee = per_rule.len();
    let mut links: Vec<CommitteeLink> = tally
        .into_iter()
        .map(|(target, (votes, score_sum))| CommitteeLink {
            source: source.id().to_string(),
            target: target.to_string(),
            votes,
            committee,
            mean_score: score_sum / votes as f64,
        })
        .collect();
    links.sort_by(|a, b| {
        b.votes
            .cmp(&a.votes)
            .then_with(|| b.mean_score.total_cmp(&a.mean_score))
            .then_with(|| a.target.cmp(&b.target))
    });
    links
}

fn snapshot_bytes(service: &LinkService) -> Vec<u8> {
    let mut bytes = Vec::new();
    service.save_snapshot(&mut bytes).unwrap();
    bytes
}

fn assert_multi_matches_singles(workload: &RuleWorkload, seed: u64) {
    let source = &workload.dataset.source;
    let target = &workload.dataset.target;
    let names = names(workload.rules.len());
    let ops = churn_script(target.len(), seed);

    let mut multi = LinkService::empty(
        workload.rules[0].clone(),
        source.schema(),
        target.schema(),
        ServiceOptions::default(),
    );
    for (name, rule) in names.iter().zip(&workload.rules).skip(1) {
        multi.register_rule(name, rule.clone()).unwrap();
    }
    let mut singles: Vec<LinkService> = workload
        .rules
        .iter()
        .map(|rule| {
            LinkService::empty(
                rule.clone(),
                source.schema(),
                target.schema(),
                ServiceOptions::default(),
            )
        })
        .collect();

    apply_churn(&mut multi, target, &ops);
    for single in &mut singles {
        apply_churn(single, target, &ops);
    }
    assert_eq!(multi.len(), target.len());

    for entity in source.entities() {
        let per_rule: Vec<Vec<ScoredLink>> =
            singles.iter().map(|single| single.query(entity)).collect();
        for (i, name) in names.iter().enumerate() {
            assert_eq!(
                multi.query_rule(name, entity).as_ref(),
                Some(&per_rule[i]),
                "rule {name} diverges from its single-rule service on query {}",
                entity.id(),
            );
        }
        assert_eq!(
            multi.query(entity),
            per_rule[0],
            "the default-rule path diverges on query {}",
            entity.id(),
        );
        assert_eq!(
            multi.query_committee(entity),
            expected_committee(entity, &per_rule),
            "the committee merge diverges on query {}",
            entity.id(),
        );
    }

    // snapshots: restore against a *reversed* catalog (resolution is by
    // canonical hash, order and naming of the catalog must not matter),
    // then re-save — the bytes must round-trip exactly
    let bytes = snapshot_bytes(&multi);
    let catalog: Vec<(String, LinkageRule)> = names
        .iter()
        .zip(&workload.rules)
        .rev()
        .map(|(name, rule)| (format!("catalog-{name}"), rule.clone()))
        .collect();
    let restored = LinkService::restore_with_rules(&catalog, source.schema(), &bytes[..]).unwrap();
    assert_eq!(restored.rule_names(), names);
    for entity in source.entities() {
        for name in &names {
            assert_eq!(
                restored.query_rule(name, entity),
                multi.query_rule(name, entity),
                "restored service diverges for rule {name} on query {}",
                entity.id(),
            );
        }
    }
    assert_eq!(
        snapshot_bytes(&restored),
        bytes,
        "snapshot bytes must round-trip bit-identically"
    );
}

fn assert_reregistration_is_lossless(workload: &RuleWorkload, seed: u64) {
    let source = &workload.dataset.source;
    let target = &workload.dataset.target;
    let extra = &workload.rules[1];
    let ops = churn_script(target.len(), seed);

    let mut service = LinkService::empty(
        workload.rules[0].clone(),
        source.schema(),
        target.schema(),
        ServiceOptions::default(),
    );
    apply_churn(&mut service, target, &ops);
    service.register_rule("extra", extra.clone()).unwrap();
    let footprint = service.leaf_pool_stats();

    let before: Vec<Vec<ScoredLink>> = source
        .entities()
        .iter()
        .map(|entity| service.query_rule("extra", entity).unwrap())
        .collect();

    service.deregister_rule("extra").unwrap();
    assert!(service.query_rule("extra", &source.entities()[0]).is_none());
    assert!(
        service.leaf_pool_stats().refs <= footprint.refs,
        "deregistration must release the rule's leaf references"
    );

    service.register_rule("extra", extra.clone()).unwrap();
    let rebuilt = service.leaf_pool_stats();
    assert_eq!(
        (rebuilt.entries, rebuilt.refs),
        (footprint.entries, footprint.refs),
        "re-registration must restore the exact leaf-pool footprint"
    );
    for (entity, expected) in source.entities().iter().zip(&before) {
        assert_eq!(
            service.query_rule("extra", entity).as_ref(),
            Some(expected),
            "re-registered rule diverges on query {}",
            entity.id(),
        );
    }

    // ... and the re-registered service still answers like a batch build
    let batch = LinkService::build(
        extra.clone(),
        source.schema(),
        target,
        ServiceOptions::default(),
    )
    .unwrap();
    for entity in source.entities() {
        assert_eq!(
            service.query_rule("extra", entity).unwrap(),
            batch.query(entity),
            "re-registered rule diverges from a batch build on query {}",
            entity.id(),
        );
    }
}

#[test]
fn multi_rule_service_matches_independent_single_rule_services() {
    for seed in 0..3 {
        let workload = random_rules(DatasetKind::Restaurant, 0.08, seed, 4);
        assert_multi_matches_singles(&workload, seed);
    }
    let workload = random_rules(DatasetKind::Cora, 0.04, 5, 3);
    assert_multi_matches_singles(&workload, 5);
}

#[test]
fn reregistering_a_rule_is_lossless() {
    for seed in 0..2 {
        let workload = random_rules(DatasetKind::Restaurant, 0.08, seed, 2);
        assert_reregistration_is_lossless(&workload, seed);
    }
    let workload = random_rules(DatasetKind::Cora, 0.04, 7, 2);
    assert_reregistration_is_lossless(&workload, 7);
}
