//! End-to-end integration tests: dataset generation → learning → evaluation.

use genlink::{CrossoverOperator, GenLink, GenLinkConfig, RepresentationMode, SeedingStrategy};
use linkdisc_datasets::DatasetKind;
use linkdisc_entity::ReferenceLinks;
use linkdisc_evaluation::evaluate_rule_on_links;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn test_config() -> GenLinkConfig {
    let mut config = GenLinkConfig::fast();
    config.gp.population_size = 80;
    config.gp.max_iterations = 12;
    config
}

fn split(dataset: &linkdisc_datasets::Dataset, seed: u64) -> (ReferenceLinks, ReferenceLinks) {
    let mut rng = StdRng::seed_from_u64(seed);
    dataset.links.split_train_validation(0.5, &mut rng)
}

#[test]
fn learns_accurate_rules_on_the_restaurant_dataset() {
    let dataset = DatasetKind::Restaurant.generate(0.4, 11);
    let (train, validation) = split(&dataset, 11);
    let outcome = GenLink::new(test_config()).learn(&dataset.source, &dataset.target, &train, 11);
    let matrix =
        evaluate_rule_on_links(&outcome.rule, &validation, &dataset.source, &dataset.target);
    assert!(
        matrix.f_measure() > 0.85,
        "Restaurant validation F1 was {}",
        matrix.f_measure()
    );
}

#[test]
fn learns_accurate_rules_on_the_cora_dataset() {
    let dataset = DatasetKind::Cora.generate(0.06, 13);
    let (train, validation) = split(&dataset, 13);
    let outcome = GenLink::new(test_config()).learn(&dataset.source, &dataset.target, &train, 13);
    let matrix =
        evaluate_rule_on_links(&outcome.rule, &validation, &dataset.source, &dataset.target);
    assert!(
        matrix.f_measure() > 0.8,
        "Cora validation F1 was {}",
        matrix.f_measure()
    );
}

#[test]
fn learns_on_a_wide_sparse_linked_data_dataset() {
    let dataset = DatasetKind::LinkedMdb.generate(0.6, 17);
    let (train, validation) = split(&dataset, 17);
    let outcome = GenLink::new(test_config()).learn(&dataset.source, &dataset.target, &train, 17);
    let matrix =
        evaluate_rule_on_links(&outcome.rule, &validation, &dataset.source, &dataset.target);
    assert!(
        matrix.f_measure() > 0.75,
        "LinkedMDB validation F1 was {}",
        matrix.f_measure()
    );
    // the learned rule only references properties that exist
    let (source_props, target_props) = outcome.rule.root().unwrap().properties();
    for p in source_props {
        assert!(dataset.source.schema().contains(p));
    }
    for p in target_props {
        assert!(dataset.target.schema().contains(p));
    }
}

#[test]
fn full_representation_beats_boolean_on_case_noisy_data() {
    // the Cora-style generator injects case noise and abbreviations, so the
    // transformation-free boolean representation should not be better than
    // the full representation (the paper's Table 13 claim)
    let dataset = DatasetKind::Cora.generate(0.05, 23);
    let (train, validation) = split(&dataset, 23);
    let full = GenLink::new(test_config()).learn(&dataset.source, &dataset.target, &train, 23);
    let boolean = GenLink::new(test_config().with_representation(RepresentationMode::Boolean))
        .learn(&dataset.source, &dataset.target, &train, 23);
    let full_f1 = evaluate_rule_on_links(&full.rule, &validation, &dataset.source, &dataset.target)
        .f_measure();
    let boolean_f1 =
        evaluate_rule_on_links(&boolean.rule, &validation, &dataset.source, &dataset.target)
            .f_measure();
    assert!(
        full_f1 + 0.02 >= boolean_f1,
        "full {full_f1} should not be clearly worse than boolean {boolean_f1}"
    );
}

#[test]
fn seeded_initial_population_is_better_on_many_property_data() {
    let dataset = DatasetKind::LinkedMdb.generate(0.4, 29);
    let mut config = test_config();
    config.gp.max_iterations = 0;
    let seeded = GenLink::new(config.clone().with_seeding(SeedingStrategy::Seeded)).learn(
        &dataset.source,
        &dataset.target,
        &dataset.links,
        29,
    );
    let random = GenLink::new(config.with_seeding(SeedingStrategy::Random)).learn(
        &dataset.source,
        &dataset.target,
        &dataset.links,
        29,
    );
    assert!(
        seeded.initial_mean_f_measure > random.initial_mean_f_measure,
        "seeded {} should beat random {}",
        seeded.initial_mean_f_measure,
        random.initial_mean_f_measure
    );
}

#[test]
fn specialized_operators_are_not_worse_than_subtree_crossover() {
    let dataset = DatasetKind::Restaurant.generate(0.3, 31);
    let (train, validation) = split(&dataset, 31);
    let specialized =
        GenLink::new(test_config()).learn(&dataset.source, &dataset.target, &train, 31);
    let subtree = GenLink::new(
        test_config().with_crossover_operators(CrossoverOperator::SUBTREE_ONLY.to_vec()),
    )
    .learn(&dataset.source, &dataset.target, &train, 31);
    let specialized_f1 = evaluate_rule_on_links(
        &specialized.rule,
        &validation,
        &dataset.source,
        &dataset.target,
    )
    .f_measure();
    let subtree_f1 =
        evaluate_rule_on_links(&subtree.rule, &validation, &dataset.source, &dataset.target)
            .f_measure();
    assert!(
        specialized_f1 + 0.05 >= subtree_f1,
        "specialized {specialized_f1} should not be clearly worse than subtree {subtree_f1}"
    );
}
