//! Stress and property tests for the concurrent, persistent serving layer.
//!
//! 1. **Linearizable-to-epochs reads** — reader threads query while a
//!    `ServiceWriter` churns inserts and removes.  The op sequence is first
//!    replayed sequentially to record, per published epoch version, the
//!    expected result of every probe query; the concurrent run then asserts
//!    that *every* observed `(version, result)` pair matches the recorded
//!    expectation — i.e. each read equals the result against some epoch the
//!    writer actually published, never a torn in-between state.
//! 2. **Restore == rebuild** — for random rules (the GP generator) over
//!    Restaurant and Cora, a snapshot round-trip reproduces the service
//!    bit-identically: stats, free-list discipline, every query result, and
//!    equal behaviour under further mutation.
//! 3. **Cross-shard linearizability replay** — one writer thread per shard
//!    churns concurrently with reader threads querying through a
//!    `ShardedReader`.  Routing is a pure function of the id, so each
//!    shard's op subsequence (and hence its epoch chain) is identical to a
//!    sequential replay; every observed per-shard `(version, result)` pair
//!    must equal the sequentially recorded expectation, and each reader's
//!    pinned version per shard never goes backwards — mutations become
//!    visible in acknowledgement order within a shard.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};

use genlink::random::RandomRuleGenerator;
use genlink::seeding::SeedingConfig;
use genlink::{find_compatible_properties, RepresentationMode};
use linkdisc_datasets::DatasetKind;
use linkdisc_entity::Entity;
use linkdisc_matching::{
    CandidateScratch, LinkService, ServiceOptions, ServiceWriter, ShardSlot, ShardedScratch,
    ShardedService,
};
use linkdisc_rule::{
    aggregation, compare, property, transform, AggregationFunction, DistanceFunction, LinkageRule,
    TransformFunction,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn restaurant_rule() -> LinkageRule {
    aggregation(
        AggregationFunction::Min,
        vec![
            compare(
                transform(TransformFunction::LowerCase, vec![property("name")]),
                transform(TransformFunction::LowerCase, vec![property("name")]),
                DistanceFunction::Levenshtein,
                2.0,
            ),
            compare(
                transform(TransformFunction::DigitsOnly, vec![property("phone")]),
                transform(TransformFunction::DigitsOnly, vec![property("phone")]),
                DistanceFunction::Levenshtein,
                1.0,
            ),
        ],
    )
    .into()
}

/// One writer op of the churn script: remove an entity or re-insert it.
#[derive(Debug, Clone, Copy)]
enum Op {
    Remove(usize),
    Insert(usize),
}

/// A deterministic remove/re-insert script over the target entities.
fn churn_script(target_len: usize, ops: usize, seed: u64) -> Vec<Op> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut removed: Vec<usize> = Vec::new();
    let mut script = Vec::with_capacity(ops);
    for _ in 0..ops {
        let reinsert = !removed.is_empty() && (removed.len() > target_len / 3 || rng.gen_bool(0.5));
        if reinsert {
            let at = rng.gen_range(0..removed.len());
            script.push(Op::Insert(removed.swap_remove(at)));
        } else {
            let entity = rng.gen_range(0..target_len);
            if removed.contains(&entity) {
                script.push(Op::Insert(
                    removed.swap_remove(removed.iter().position(|&e| e == entity).unwrap()),
                ));
            } else {
                removed.push(entity);
                script.push(Op::Remove(entity));
            }
        }
    }
    script
}

fn apply(writer: &mut ServiceWriter, target: &[Entity], op: Op) {
    match op {
        Op::Remove(at) => {
            assert!(writer.remove(target[at].id()));
        }
        Op::Insert(at) => {
            writer.insert(&target[at]).unwrap();
        }
    }
}

/// The probe fingerprint of one epoch: sorted `(position, score bits)` per
/// probe entity.
fn fingerprint(
    reader: &linkdisc_matching::ServiceReader,
    probes: &[&Entity],
    scratch: &mut CandidateScratch,
) -> (u64, Vec<Vec<(u32, u64)>>) {
    let mut results = Vec::with_capacity(probes.len());
    let mut version = None;
    let mut hits: Vec<(u32, f64)> = Vec::new();
    for probe in probes {
        let seen = reader.query_with(probe, scratch, &mut hits);
        // all probes of one fingerprint must run against one epoch; retry
        // handled by the caller comparing versions
        version.get_or_insert(seen);
        assert_eq!(version, Some(seen), "caller must re-probe on epoch change");
        let mut sorted: Vec<(u32, u64)> = hits
            .iter()
            .map(|&(position, score)| (position, score.to_bits()))
            .collect();
        sorted.sort_unstable();
        results.push(sorted);
    }
    (version.unwrap(), results)
}

#[test]
fn concurrent_reads_always_equal_some_published_epoch() {
    let dataset = DatasetKind::Restaurant.generate(0.25, 9);
    let rule = restaurant_rule();
    let target = dataset.target.entities().to_vec();
    let script = churn_script(target.len(), 120, 77);
    let probes: Vec<&Entity> = dataset.source.entities().iter().take(12).collect();

    // pass 1 — sequential replay: record the expected probe results per
    // epoch version (version v is published by op v; version 0 is the build)
    let mut expected: HashMap<u64, Vec<Vec<(u32, u64)>>> = HashMap::new();
    {
        let (mut writer, reader) = LinkService::build(
            rule.clone(),
            dataset.source.schema(),
            &dataset.target,
            ServiceOptions::default(),
        )
        .unwrap()
        .split();
        let mut scratch = CandidateScratch::new();
        let (version, results) = fingerprint(&reader, &probes, &mut scratch);
        expected.insert(version, results);
        for &op in &script {
            apply(&mut writer, &target, op);
            let (version, results) = fingerprint(&reader, &probes, &mut scratch);
            assert_eq!(version as usize, expected.len());
            expected.insert(version, results);
        }
    }
    assert_eq!(expected.len(), script.len() + 1);

    // pass 2 — the same script under concurrent readers: every observed
    // (version, results) pair must equal the sequential expectation
    let (mut writer, reader) = LinkService::build(
        rule,
        dataset.source.schema(),
        &dataset.target,
        ServiceOptions::default(),
    )
    .unwrap()
    .split();
    let stop = AtomicBool::new(false);
    std::thread::scope(|scope| {
        for reader_index in 0..3 {
            let reader = reader.clone();
            let stop = &stop;
            let expected = &expected;
            let probes = &probes;
            scope.spawn(move || {
                let mut scratch = CandidateScratch::new();
                let mut hits: Vec<(u32, f64)> = Vec::new();
                let mut observations = 0u64;
                while !stop.load(Ordering::Relaxed) || observations == 0 {
                    for probe in probes.iter() {
                        // version is (re-)read per query: each individual
                        // result must match that query's epoch
                        let version = reader.query_with(probe, &mut scratch, &mut hits);
                        let mut sorted: Vec<(u32, u64)> = hits
                            .iter()
                            .map(|&(position, score)| (position, score.to_bits()))
                            .collect();
                        sorted.sort_unstable();
                        let epoch = expected.get(&version).unwrap_or_else(|| {
                            panic!("reader {reader_index} saw unpublished version {version}")
                        });
                        let probe_at = probes.iter().position(|p| p.id() == probe.id()).unwrap();
                        assert_eq!(
                            sorted,
                            epoch[probe_at],
                            "reader {reader_index} diverged from epoch {version} on {}",
                            probe.id()
                        );
                        observations += 1;
                    }
                }
            });
        }
        for &op in &script {
            apply(&mut writer, &target, op);
        }
        stop.store(true, Ordering::Relaxed);
    });
    assert_eq!(writer.version(), script.len() as u64);
}

#[test]
fn cross_shard_reads_always_equal_that_shards_published_epochs() {
    const SHARDS: usize = 3;
    let dataset = DatasetKind::Restaurant.generate(0.25, 9);
    let rule = restaurant_rule();
    let target = dataset.target.entities().to_vec();
    let script = churn_script(target.len(), 120, 4242);
    let probes: Vec<&Entity> = dataset.source.entities().iter().take(12).collect();
    let op_index = |op: Op| match op {
        Op::Remove(at) | Op::Insert(at) => at,
    };

    // pass 1 — sequential replay: per shard, record the expected per-probe
    // fingerprint at every epoch version that shard will ever publish.
    // Each op touches exactly one shard and bumps only that shard's version.
    // per shard: epoch version -> per-probe (position, score bits) fingerprints
    type EpochFingerprints = HashMap<u64, Vec<Vec<(u32, u64)>>>;
    let mut expected: Vec<EpochFingerprints> = vec![HashMap::new(); SHARDS];
    let router = {
        let service = ShardedService::build(
            rule.clone(),
            dataset.source.schema(),
            &dataset.target,
            SHARDS,
            ServiceOptions::default(),
        )
        .unwrap();
        let router = service.router();
        let (mut writers, reader) = service.split();
        let mut scratch = CandidateScratch::new();
        for (shard, slot) in expected.iter_mut().enumerate() {
            let (version, results) = fingerprint(reader.shard(shard), &probes, &mut scratch);
            assert_eq!(version, 0, "a fresh shard starts at version 0");
            slot.insert(version, results);
        }
        for &op in &script {
            let shard = router.route(target[op_index(op)].id());
            apply(&mut writers[shard], &target, op);
            let (version, results) = fingerprint(reader.shard(shard), &probes, &mut scratch);
            assert_eq!(
                version as usize,
                expected[shard].len(),
                "one publication per op on the routed shard"
            );
            expected[shard].insert(version, results);
        }
        router
    };
    assert_eq!(
        expected.iter().map(HashMap::len).sum::<usize>(),
        script.len() + SHARDS
    );

    // pass 2 — the same script with one writer thread per shard, racing
    // reader threads.  Per-shard op subsequences are identical to pass 1
    // (routing is a pure function of the id), so each shard steps through
    // exactly the recorded epochs — in whatever global interleaving.
    let service = ShardedService::build(
        rule,
        dataset.source.schema(),
        &dataset.target,
        SHARDS,
        ServiceOptions::default(),
    )
    .unwrap();
    let (writers, reader) = service.split();
    let mut per_shard_ops: Vec<Vec<Op>> = vec![Vec::new(); SHARDS];
    for &op in &script {
        per_shard_ops[router.route(target[op_index(op)].id())].push(op);
    }
    let per_shard_counts: Vec<usize> = per_shard_ops.iter().map(Vec::len).collect();
    let stop = AtomicBool::new(false);
    std::thread::scope(|scope| {
        for reader_index in 0..3 {
            let reader = reader.clone();
            let stop = &stop;
            let expected = &expected;
            let probes = &probes;
            scope.spawn(move || {
                let mut scratch = ShardedScratch::new();
                let mut hits: Vec<(ShardSlot, f64)> = Vec::new();
                let mut last_seen = [0u64; SHARDS];
                let mut observations = 0u64;
                while !stop.load(Ordering::Relaxed) || observations == 0 {
                    for (probe_at, probe) in probes.iter().enumerate() {
                        reader.query_with(probe, &mut scratch, &mut hits);
                        for shard in 0..SHARDS {
                            let version = scratch.versions()[shard];
                            assert!(
                                version >= last_seen[shard],
                                "reader {reader_index}: shard {shard} epoch went backwards \
                                 ({} then {version})",
                                last_seen[shard]
                            );
                            last_seen[shard] = version;
                            let mut sorted: Vec<(u32, u64)> = hits
                                .iter()
                                .filter(|(slot, _)| slot.shard as usize == shard)
                                .map(|&(slot, score)| (slot.position, score.to_bits()))
                                .collect();
                            sorted.sort_unstable();
                            let epoch = expected[shard].get(&version).unwrap_or_else(|| {
                                panic!(
                                    "reader {reader_index} saw unpublished version {version} \
                                     on shard {shard}"
                                )
                            });
                            assert_eq!(
                                sorted,
                                epoch[probe_at],
                                "reader {reader_index} diverged from shard {shard} \
                                 epoch {version} on {}",
                                probe.id()
                            );
                        }
                        observations += 1;
                    }
                }
            });
        }
        let writer_handles: Vec<_> = writers
            .into_iter()
            .zip(per_shard_ops)
            .map(|(mut writer, ops)| {
                let target = &target;
                scope.spawn(move || {
                    for &op in &ops {
                        apply(&mut writer, target, op);
                    }
                    writer.version()
                })
            })
            .collect();
        let final_versions: Vec<u64> = writer_handles
            .into_iter()
            .map(|handle| handle.join().unwrap())
            .collect();
        stop.store(true, Ordering::Relaxed);
        for (shard, version) in final_versions.iter().enumerate() {
            assert_eq!(
                *version as usize, per_shard_counts[shard],
                "shard {shard} must publish once per op"
            );
        }
    });
}

struct RuleWorkload {
    dataset: linkdisc_datasets::Dataset,
    rules: Vec<LinkageRule>,
}

fn random_rules(kind: DatasetKind, scale: f64, seed: u64, count: usize) -> RuleWorkload {
    let dataset = kind.generate(scale, seed);
    let pairs = find_compatible_properties(
        &dataset.source,
        &dataset.target,
        &dataset.links,
        &SeedingConfig::default(),
    );
    assert!(!pairs.is_empty(), "seeding found no compatible properties");
    let generator = RandomRuleGenerator::new(pairs, RepresentationMode::Full);
    let mut rng = StdRng::seed_from_u64(seed.wrapping_add(90210));
    let rules = (0..count).map(|_| generator.generate(&mut rng)).collect();
    RuleWorkload { dataset, rules }
}

/// Snapshot round-trips must reproduce the service bit-identically: stats,
/// slot discipline, every query, and identical behaviour under further
/// mutation.
fn assert_restore_equals_rebuild(workload: &RuleWorkload, churn_seed: u64) {
    let dataset = &workload.dataset;
    let target = dataset.target.entities().to_vec();
    for rule in &workload.rules {
        let mut service = LinkService::build(
            rule.clone(),
            dataset.source.schema(),
            &dataset.target,
            ServiceOptions::default(),
        )
        .unwrap();
        // churn before saving so tombstones and recycled slots are covered
        for &op in &churn_script(target.len(), 30, churn_seed) {
            match op {
                Op::Remove(at) => {
                    service.remove(target[at].id());
                }
                Op::Insert(at) => {
                    service.insert(&target[at]).unwrap();
                }
            }
        }
        let mut bytes = Vec::new();
        service.save_snapshot(&mut bytes).unwrap();
        let mut restored =
            LinkService::restore(rule.clone(), dataset.source.schema(), &bytes[..]).unwrap();
        let label = linkdisc_rule::print_rule(rule);
        assert_eq!(restored.len(), service.len(), "{label}");
        assert_eq!(restored.stats(), service.stats(), "{label}");
        assert_eq!(
            restored.store().free_slots(),
            service.store().free_slots(),
            "{label}"
        );
        for entity in dataset.source.entities() {
            assert_eq!(
                restored.query(entity),
                service.query(entity),
                "{label} on {}",
                entity.id()
            );
        }
        // the two services keep agreeing under identical further mutation
        for &op in &churn_script(target.len(), 12, churn_seed ^ 0xabcd) {
            let (a, b) = match op {
                Op::Remove(at) => {
                    let id = target[at].id();
                    (service.remove(id), restored.remove(id))
                }
                Op::Insert(at) => (
                    service.insert(&target[at]).is_ok(),
                    restored.insert(&target[at]).is_ok(),
                ),
            };
            assert_eq!(a, b, "{label}");
        }
        assert_eq!(restored.stats(), service.stats(), "{label}");
        for entity in dataset.source.entities().iter().take(20) {
            assert_eq!(restored.query(entity), service.query(entity), "{label}");
        }
    }
}

#[test]
fn restore_equals_rebuild_on_random_restaurant_rules() {
    for seed in 0..3u64 {
        let workload = random_rules(DatasetKind::Restaurant, 0.08, seed, 5);
        assert_restore_equals_rebuild(&workload, seed.wrapping_add(31));
    }
}

#[test]
fn restore_equals_rebuild_on_random_cora_rules() {
    let workload = random_rules(DatasetKind::Cora, 0.04, 5, 4);
    assert_restore_equals_rebuild(&workload, 47);
}
